"""Machine-readable benchmark reporting.

Benchmarks used to print their measured numbers into the pytest log, where
no tool could compare one run against the next.  :func:`record_run` appends
one JSON entry per verification run -- states explored, wall-clock, and
states/second, plus the run configuration -- to ``BENCH_results.json`` at
the repository root, so the perf trajectory across PRs (and across CI runs,
which upload the file as an artifact) is finally tracked in a form scripts
can diff.

Kept out of ``conftest.py`` on purpose (same reason as
``tests/verification/verification_helpers.py``): test modules import this
helper by its unique module name, and ``conftest`` resolves ambiguously once
several test roots sit on ``sys.path``.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

#: Default results file: ``<repo root>/BENCH_results.json`` (override with
#: the ``BENCH_RESULTS_PATH`` environment variable, e.g. in CI).
DEFAULT_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_results.json"


def results_path() -> Path:
    override = os.environ.get("BENCH_RESULTS_PATH")
    return Path(override) if override else DEFAULT_RESULTS_PATH


def load_results(path: Path | None = None) -> list[dict]:
    """The recorded entries (empty on a missing or unreadable file)."""
    target = path or results_path()
    try:
        data = json.loads(target.read_text())
    except (OSError, ValueError):
        return []
    return data if isinstance(data, list) else []


def record_run(
    bench_id: str,
    result,
    *,
    protocol: str,
    config: str,
    num_caches: int,
    accesses: int,
    symmetry: bool,
    processes: int | None = None,
    path: Path | None = None,
) -> dict:
    """Append one :class:`VerificationResult` measurement and return the entry."""
    elapsed = result.elapsed_seconds
    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "bench_id": bench_id,
        "protocol": protocol,
        "config": config,
        "num_caches": num_caches,
        "accesses_per_cache": accesses,
        "symmetry": symmetry,
        "strategy": result.strategy,
        "kernel": getattr(result, "kernel", None),
        "processes": processes,
        "ok": result.ok,
        "partial": result.truncated,
        "states_explored": result.states_explored,
        "transitions_explored": result.transitions_explored,
        "elapsed_seconds": round(elapsed, 3),
        "states_per_second": round(result.states_explored / elapsed) if elapsed > 0 else None,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
    }
    target = path or results_path()
    entries = load_results(target)
    entries.append(entry)
    target.write_text(json.dumps(entries, indent=2) + "\n")
    return entry
