"""Machine-readable benchmark reporting.

Benchmarks used to print their measured numbers into the pytest log, where
no tool could compare one run against the next.  :func:`record_run` appends
one JSON entry per verification run -- states explored, wall-clock, and
states/second, plus the run configuration -- to ``BENCH_results.json`` at
the repository root, so the perf trajectory across PRs (and across CI runs,
which upload the file as an artifact) is finally tracked in a form scripts
can diff.

Kept out of ``conftest.py`` on purpose (same reason as
``tests/verification/verification_helpers.py``): test modules import this
helper by its unique module name, and ``conftest`` resolves ambiguously once
several test roots sit on ``sys.path``.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

#: Default results file: ``<repo root>/BENCH_results.json`` (override with
#: the ``BENCH_RESULTS_PATH`` environment variable, e.g. in CI).
DEFAULT_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_results.json"


def results_path() -> Path:
    override = os.environ.get("BENCH_RESULTS_PATH")
    return Path(override) if override else DEFAULT_RESULTS_PATH


def load_results(path: Path | None = None) -> list[dict]:
    """The recorded entries (empty on a missing or unreadable file)."""
    target = path or results_path()
    try:
        data = json.loads(target.read_text())
    except (OSError, ValueError):
        return []
    return data if isinstance(data, list) else []


def record_run(
    bench_id: str,
    result,
    *,
    protocol: str,
    config: str,
    num_caches: int,
    accesses: int,
    symmetry: bool,
    processes: int | None = None,
    path: Path | None = None,
    extra: dict | None = None,
) -> dict:
    """Append one :class:`VerificationResult` measurement and return the entry.

    *extra* merges additional benchmark-specific fields into the entry (e.g.
    peak memory for the nightly full-space runs).  When the result carries
    the engine's measured ``stats`` (decode count, canonicalization vs
    expansion split), they are recorded under ``"stats"``.
    """
    elapsed = result.elapsed_seconds
    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "bench_id": bench_id,
        "protocol": protocol,
        "config": config,
        "num_caches": num_caches,
        "accesses_per_cache": accesses,
        "symmetry": symmetry,
        "strategy": result.strategy,
        "kernel": getattr(result, "kernel", None),
        "processes": processes,
        "ok": result.ok,
        "partial": result.truncated,
        "states_explored": result.states_explored,
        "transitions_explored": result.transitions_explored,
        "elapsed_seconds": round(elapsed, 3),
        "states_per_second": round(result.states_explored / elapsed) if elapsed > 0 else None,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
    }
    stats = getattr(result, "stats", None)
    if stats:
        entry["stats"] = stats
    if extra:
        entry.update(extra)
    target = path or results_path()
    entries = load_results(target)
    entries.append(entry)
    target.write_text(json.dumps(entries, indent=2) + "\n")
    return entry


def baseline_states_per_second(
    bench_id: str,
    *,
    kernel: str | None = None,
    symmetry: bool | None = None,
    path: Path | None = None,
) -> float | None:
    """Median ``states_per_second`` of the recorded trajectory for *bench_id*.

    Used by the perf-smoke regression gate: the committed
    ``BENCH_results.json`` carries the per-PR trajectory, so a fresh run can
    be compared against the typical historical throughput of the same
    benchmark configuration.  Entries recorded on a host with the *current*
    CPU count are preferred when any exist — a CI runner then compares
    against its own class of machine once it has contributed entries, and
    only falls back to the cross-host median (with whatever slack the
    caller's ratio provides) before that.  Returns ``None`` when no prior
    entry matches at all.
    """
    matching = [
        entry
        for entry in load_results(path)
        if entry.get("bench_id") == bench_id
        and entry.get("states_per_second")
        and (kernel is None or entry.get("kernel") == kernel)
        and (symmetry is None or entry.get("symmetry") == symmetry)
    ]
    if not matching:
        return None
    same_host_class = [
        entry for entry in matching if entry.get("cpu_count") == os.cpu_count()
    ]
    pool = sorted(
        entry["states_per_second"] for entry in (same_host_class or matching)
    )
    return float(pool[len(pool) // 2])
