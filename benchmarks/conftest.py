"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark module regenerates one artifact of the paper's evaluation
(a table, a figure, or a quantitative claim) and prints the corresponding
rows so the output can be compared against the paper side by side; the
pytest-benchmark timings measure the cost of the reproduction itself
(generation and verification runtimes).
"""

from __future__ import annotations

import pytest

from repro import protocols
from repro.core import GenerationConfig, generate


def banner(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)


@pytest.fixture(scope="session")
def generated():
    """Every bundled protocol generated in both configurations (cached)."""
    result = {}
    for name in protocols.available_protocols():
        spec = protocols.load(name)
        result[(name, "nonstalling")] = generate(spec, GenerationConfig.nonstalling())
        result[(name, "stalling")] = generate(spec, GenerationConfig.stalling())
    return result
