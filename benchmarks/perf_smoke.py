#!/usr/bin/env python
"""Perf-smoke runner: one budgeted verification, recorded to BENCH_results.json.

Used by the CI perf-smoke job (and handy locally) to keep a machine-readable
perf trajectory without running a full benchmark suite::

    PYTHONPATH=src python benchmarks/perf_smoke.py \
        --protocol MSI --config stalling --caches 3 --accesses 2 \
        --symmetry --max-states 20000

The ``--max-states`` budget exercises ``verify()``'s clean partial-result
abort: the run stops at the budget, reports the explored prefix, and still
records states/second.  Exit status is non-zero only when the search finds a
real violation/error -- a partial PASS is a successful smoke run.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_reporting import record_run, results_path

from repro import protocols
from repro.core import GenerationConfig, generate
from repro.system import System, Workload
from repro.verification import verify


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--protocol", default="MSI",
                        choices=protocols.available_protocols())
    parser.add_argument("--config", default="stalling",
                        choices=["stalling", "nonstalling"])
    parser.add_argument("--caches", type=int, default=3)
    parser.add_argument("--accesses", type=int, default=2)
    parser.add_argument("--symmetry", action="store_true")
    parser.add_argument("--strategy", default="bfs",
                        choices=["bfs", "dfs", "parallel"])
    parser.add_argument("--processes", type=int, default=None)
    parser.add_argument("--max-states", type=int, default=2_000_000,
                        help="state budget; the search aborts cleanly and "
                             "reports a partial result once reached")
    parser.add_argument("--kernel", default="compiled",
                        choices=["compiled", "object"],
                        help="transition backend: the compiled encoded-state "
                             "kernel (default) or the object executor")
    parser.add_argument("--compare-kernels", action="store_true",
                        help="run the same search once per kernel, record "
                             "both, and fail unless the compiled kernel's "
                             "throughput is at least the object kernel's")
    parser.add_argument("--bench-id", default="perf-smoke")
    args = parser.parse_args(argv)

    config = (
        GenerationConfig.stalling()
        if args.config == "stalling"
        else GenerationConfig.nonstalling()
    )
    generated = generate(protocols.load(args.protocol), config)
    system = System(generated, num_caches=args.caches,
                    workload=Workload(max_accesses_per_cache=args.accesses))

    def run(kernel: str):
        result = verify(
            system,
            symmetry=args.symmetry,
            strategy=args.strategy,
            processes=args.processes,
            max_states=args.max_states,
            kernel=kernel,
        )
        suffix = f"-{kernel}" if args.compare_kernels else ""
        entry = record_run(
            args.bench_id + suffix, result,
            protocol=args.protocol, config=args.config,
            num_caches=args.caches, accesses=args.accesses,
            symmetry=args.symmetry, processes=args.processes,
        )
        print(f"{args.protocol}/{args.config} {args.caches}c x {args.accesses}a "
              f"(symmetry={args.symmetry}, strategy={result.strategy}, "
              f"kernel={result.kernel}): {result.summary}")
        print(f"recorded {entry['states_per_second']} states/s "
              f"-> {results_path()}")
        return result, entry

    if not args.compare_kernels:
        result, _ = run(args.kernel)
        return 0 if result.ok else 1

    object_result, object_entry = run("object")
    compiled_result, compiled_entry = run("compiled")
    if not (object_result.ok and compiled_result.ok):
        return 1
    if compiled_result.kernel != "compiled":
        # The silent object fallback would turn the throughput gate below
        # into a comparison of two identical backends.
        print("FAIL: the compiled kernel fell back to the object backend "
              "on this configuration; the comparison is meaningless")
        return 1
    if compiled_result.states_explored != object_result.states_explored:
        print("FAIL: kernels disagree on the explored state count "
              f"({compiled_result.states_explored} vs "
              f"{object_result.states_explored})")
        return 1
    speedup = (compiled_entry["states_per_second"]
               / max(1, object_entry["states_per_second"]))
    print(f"compiled/object throughput: {speedup:.2f}x")
    if compiled_entry["states_per_second"] < object_entry["states_per_second"]:
        print("FAIL: the compiled kernel must not be slower than the "
              "object executor")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
