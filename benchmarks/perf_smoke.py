#!/usr/bin/env python
"""Perf-smoke runner: one budgeted verification, recorded to BENCH_results.json.

Used by the CI perf-smoke job (and handy locally) to keep a machine-readable
perf trajectory without running a full benchmark suite::

    PYTHONPATH=src python benchmarks/perf_smoke.py \
        --protocol MSI --config stalling --caches 3 --accesses 2 \
        --symmetry on --max-states 20000 --fail-on-regression 0.5

The ``--max-states`` budget exercises ``verify()``'s clean partial-result
abort: the run stops at the budget, reports the explored prefix, and still
records states/second.  ``--checkpoint PATH`` makes the budgeted run
resumable (a later invocation with the same configuration continues it),
``--workers N`` sizes the parallel engine's fleet and ``--spill-dir DIR``
lets its worker shards spill cold visited-set partitions to disk; worker
telemetry (states per worker, chunk steals, spill bytes, resume level)
rides in the recorded ``stats``.  ``--symmetry {on,off}`` sweeps the reduction axis
(bare ``--symmetry`` keeps meaning ``on``), the measured
``result.stats`` split (canonicalization vs expansion, decode count) is
printed and recorded with every entry, and ``--fail-on-regression RATIO``
gates the run's throughput against the committed trajectory median for the
same bench id / kernel / symmetry combination.  Exit status is non-zero
only when the search finds a real violation/error or a gate fails -- a
partial PASS is a successful smoke run.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_reporting import baseline_states_per_second, record_run, results_path

from repro import protocols
from repro.core import GenerationConfig, generate
from repro.system import FaultModel, System, Workload
from repro.verification import verify


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--protocol", default="MSI",
                        choices=protocols.available_protocols())
    parser.add_argument("--config", default="stalling",
                        choices=["stalling", "nonstalling"])
    parser.add_argument("--caches", type=int, default=3)
    parser.add_argument("--accesses", type=int, default=2)
    parser.add_argument("--symmetry", nargs="?", const="on", default="off",
                        choices=["on", "off"],
                        help="symmetry axis: 'on' runs the cache-ID-reduced "
                             "search, 'off' the full one (bare --symmetry "
                             "means 'on', preserving the old flag form)")
    parser.add_argument("--strategy", default="bfs",
                        choices=["bfs", "dfs", "parallel"])
    parser.add_argument("--processes", "--workers", dest="processes",
                        type=int, default=None,
                        help="worker count for the parallel strategy "
                             "(--workers is an alias)")
    parser.add_argument("--checkpoint", default=None, metavar="PATH",
                        help="resumable budget checkpoint: a run that stops "
                             "at --max-states saves its frontier here and a "
                             "later run with the same configuration resumes "
                             "it (the completed run deletes the file)")
    parser.add_argument("--spill-dir", default=None, metavar="DIR",
                        help="directory where the parallel engine's worker "
                             "shards may spill cold visited-set partitions "
                             "to disk (bounds resident memory)")
    parser.add_argument("--max-states", type=int, default=2_000_000,
                        help="state budget; the search aborts cleanly and "
                             "reports a partial result once reached")
    parser.add_argument("--kernel", default="compiled",
                        choices=["compiled", "vectorized", "object"],
                        help="transition backend: the compiled encoded-state "
                             "kernel (default), the batch-vectorized NumPy "
                             "frontier kernel, or the object executor")
    parser.add_argument("--faults", default="off",
                        choices=["off", "duplicate", "reorder", "both"],
                        help="fault-injection axes: message duplication, "
                             "bounded adjacent reordering (ordered networks), "
                             "or both")
    parser.add_argument("--fault-budget", type=int, default=1,
                        help="total injected faults allowed per execution")
    parser.add_argument("--addresses", type=int, default=1,
                        help="independent address planes the workload "
                             "interleaves (symmetry must be off for >1)")
    parser.add_argument("--harden", default="on", choices=["on", "off"],
                        help="generation-level fault hardening: 'on' (the "
                             "default) builds duplication-idempotent "
                             "protocols, 'off' reproduces the pre-hardening "
                             "builds for bug-finding smokes")
    parser.add_argument("--expect", default="pass", choices=["pass", "fail"],
                        help="expected verdict: 'fail' flips the exit logic "
                             "for bug-finding smokes (the un-hardened "
                             "protocols demonstrably break under "
                             "duplication), skipping the throughput gates")
    parser.add_argument("--compare-kernels", action="store_true",
                        help="run the same search per kernel (object, "
                             "compiled, vectorized), --repeats times each, "
                             "record the best run of each backend, and fail "
                             "unless each faster backend actually beats the "
                             "one below it (compiled >= object, vectorized "
                             ">= compiled)")
    parser.add_argument("--repeats", type=int, default=3, metavar="N",
                        help="measurement repeats per backend under "
                             "--compare-kernels (default 3); the gates and "
                             "the recorded entry use the best run of each "
                             "backend, so a one-off scheduler hiccup cannot "
                             "flip an ordering gate")
    parser.add_argument("--fail-on-regression", type=float, default=None,
                        metavar="RATIO",
                        help="fail when this run's states/second drops below "
                             "RATIO x the median of the recorded trajectory "
                             "for the same bench id, kernel and symmetry "
                             "axis (the appended BENCH_results.json baseline)")
    parser.add_argument("--bench-id", default="perf-smoke")
    args = parser.parse_args(argv)
    symmetry = args.symmetry == "on"

    harden = args.harden == "on"
    config = (
        GenerationConfig.stalling(harden=harden)
        if args.config == "stalling"
        else GenerationConfig.nonstalling(harden=harden)
    )
    generated = generate(protocols.load(args.protocol), config)
    faults = None
    if args.faults != "off":
        faults = FaultModel(
            duplicate=args.faults in ("duplicate", "both"),
            reorder=args.faults in ("reorder", "both"),
            budget=args.fault_budget,
        )
    system = System(generated, num_caches=args.caches,
                    workload=Workload(max_accesses_per_cache=args.accesses),
                    num_addresses=args.addresses if args.addresses > 1 else None,
                    faults=faults)

    def run(kernel: str, repeats: int = 1):
        bench_id = args.bench_id + (f"-{kernel}" if args.compare_kernels else "")
        # Baseline before recording, so the current run cannot skew its own
        # reference trajectory.
        baseline = baseline_states_per_second(
            bench_id, kernel=kernel, symmetry=symmetry
        )
        # A checkpoint makes consecutive runs *continue* each other, which
        # would wreck repeated measurement -- comparison mode ignores it.
        checkpoint = None if repeats > 1 else args.checkpoint
        best = None
        throughputs = []
        for _ in range(repeats):
            result = verify(
                system,
                symmetry=symmetry,
                strategy=args.strategy,
                processes=args.processes,
                max_states=args.max_states,
                kernel=kernel,
                checkpoint=checkpoint,
                spill_dir=args.spill_dir,
            )
            rate = (result.states_explored / result.elapsed_seconds
                    if result.elapsed_seconds > 0 else 0.0)
            throughputs.append(rate)
            if best is None or rate > best[1]:
                best = (result, rate)
        result = best[0]
        entry = record_run(
            bench_id, result,
            protocol=args.protocol, config=args.config,
            num_caches=args.caches, accesses=args.accesses,
            symmetry=symmetry, processes=args.processes,
            extra={
                "faults": args.faults,
                "fault_budget": args.fault_budget if faults else None,
                "addresses": args.addresses,
                "harden": harden,
                "checkpoint": bool(args.checkpoint),
                "spill_dir": bool(args.spill_dir),
                "repeats": repeats,
            },
        )
        stats = result.stats
        print(f"{args.protocol}/{args.config} {args.caches}c x {args.accesses}a "
              f"(symmetry={symmetry}, strategy={result.strategy}, "
              f"kernel={result.kernel}): {result.summary}")
        expansion = stats.get("expansion_seconds")
        print(f"  time split: canonicalization "
              f"{stats.get('canonicalization_seconds', 0.0):.3f}s"
              f"{' (worker CPU sum)' if expansion is None else ''}, expansion "
              f"{'n/a' if expansion is None else f'{expansion:.3f}s'}; decodes: "
              f"{stats.get('decode_count')}")
        if "worker_states" in stats:
            print(f"  workers: states/worker {stats['worker_states']}, "
                  f"chunk steals {stats['steal_count']}, spilled "
                  f"{stats['spill_bytes']} bytes")
        if stats.get("resume_level") is not None:
            print(f"  resumed from checkpoint at level {stats['resume_level']}")
        if repeats > 1:
            rates = ", ".join(f"{r:.0f}" for r in sorted(throughputs))
            print(f"  best of {repeats} runs ({rates} states/s)")
        print(f"recorded {entry['states_per_second']} states/s "
              f"-> {results_path()}")
        return result, entry, baseline

    def regressed(entry, baseline) -> bool:
        """Apply the --fail-on-regression gate to one recorded run."""
        if args.fail_on_regression is None:
            return False
        if baseline is None:
            print("no trajectory baseline for this configuration yet; "
                  "regression gate skipped")
            return False
        floor = args.fail_on_regression * baseline
        throughput = entry["states_per_second"] or 0
        print(f"throughput gate: {throughput} states/s vs floor "
              f"{floor:.0f} ({args.fail_on_regression} x median "
              f"{baseline:.0f})")
        if throughput < floor:
            print("FAIL: reduced-search throughput regressed versus the "
                  "recorded trajectory baseline")
            return True
        return False

    if not args.compare_kernels:
        result, entry, baseline = run(args.kernel)
        if args.expect == "fail":
            # Bug-finding smoke: the run succeeds when the search finds the
            # documented fault-induced failure (throughput gates don't apply
            # to a search that stops at its counterexample).
            if result.ok:
                print("FAIL: expected the fault-injected search to find the "
                      "documented failure, but it passed")
                return 1
            print("expected fault-induced failure found")
            return 0
        if not result.ok:
            return 1
        return 1 if regressed(entry, baseline) else 0

    repeats = max(1, args.repeats)
    object_result, object_entry, _ = run("object", repeats)
    compiled_result, compiled_entry, compiled_baseline = run("compiled", repeats)
    vectorized_result, vectorized_entry, _ = run("vectorized", repeats)
    if not (object_result.ok and compiled_result.ok and vectorized_result.ok):
        return 1
    for requested, result in (("compiled", compiled_result),
                              ("vectorized", vectorized_result)):
        if result.kernel != requested:
            # A silent fallback would turn the throughput gates below into
            # comparisons of identical backends.
            print(f"FAIL: the {requested} kernel fell back to the "
                  f"{result.kernel} backend on this configuration; the "
                  "comparison is meaningless")
            return 1
    counts = {r.states_explored
              for r in (object_result, compiled_result, vectorized_result)}
    if len(counts) != 1:
        print("FAIL: kernels disagree on the explored state count "
              f"({object_result.states_explored} object vs "
              f"{compiled_result.states_explored} compiled vs "
              f"{vectorized_result.states_explored} vectorized)")
        return 1
    speedup = (compiled_entry["states_per_second"]
               / max(1, object_entry["states_per_second"]))
    print(f"compiled/object throughput: {speedup:.2f}x")
    batch_speedup = (vectorized_entry["states_per_second"]
                     / max(1, compiled_entry["states_per_second"]))
    print(f"vectorized/compiled throughput: {batch_speedup:.2f}x")
    if compiled_entry["states_per_second"] < object_entry["states_per_second"]:
        print("FAIL: the compiled kernel must not be slower than the "
              "object executor")
        return 1
    if (vectorized_entry["states_per_second"]
            < compiled_entry["states_per_second"]):
        print("FAIL: the vectorized kernel must not be slower than the "
              "compiled kernel")
        return 1
    return 1 if regressed(compiled_entry, compiled_baseline) else 0


if __name__ == "__main__":
    raise SystemExit(main())
