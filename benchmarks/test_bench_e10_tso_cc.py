"""E10 -- Section VI-D: generating a TSO-CC-style protocol.

The point of the paper's experiment is that ProtoGen handles an
*unconventional* SSP -- one without sharer tracking or invalidations, which
deliberately gives up SWMR in physical time.  The benchmark generates the
protocol, verifies single-ownership / data-value / deadlock freedom, and
confirms that SWMR in physical time is indeed (and intentionally) violated.
"""

from conftest import banner

from repro.system import System, Workload
from repro.verification import single_owner_invariant, swmr_invariant, verify


def test_tso_cc_generation_and_verification(benchmark, generated):
    protocol = generated[("TSO-CC", "nonstalling")]

    def check():
        system = System(protocol, num_caches=2,
                        workload=Workload(max_accesses_per_cache=2))
        return verify(system, invariants=[single_owner_invariant])

    result = benchmark.pedantic(check, rounds=1, iterations=1)

    # SWMR in physical time is expected to fail: stale untracked readers can
    # coexist with a writer.  That is the protocol's design point, not a bug.
    swmr_result = verify(
        System(protocol, num_caches=2, workload=Workload(max_accesses_per_cache=2)),
        invariants=[swmr_invariant],
    )
    # The seed capped TSO-CC at two caches; with symmetry reduction the
    # three-cache configuration is comfortably in reach.
    three_reduced = verify(
        System(protocol, num_caches=3, workload=Workload(max_accesses_per_cache=2)),
        invariants=[single_owner_invariant],
        symmetry=True,
    )

    banner("E10 -- TSO-CC-style protocol")
    print(f"  cache states: {protocol.cache.num_states}, "
          f"directory states: {protocol.directory.num_states}")
    print(f"  ownership/data-value/deadlock check: {result.summary}")
    print(f"  same check, 3 caches x 2 accesses (symmetry): {three_reduced.summary}")
    print(f"  physical-time SWMR check (expected to FAIL by design): {swmr_result.summary}")

    assert result.ok
    assert three_reduced.ok and not three_reduced.truncated
    assert not swmr_result.ok and swmr_result.violation.name == "SWMR"
