"""E11 -- Section VI-E: generation runtime.

The paper reports that ProtoGen's runtime is "always well less than one
second on an Intel i5".  This benchmark times the full generation pipeline
(validation, preprocessing, cache and directory generation) for every bundled
protocol in the non-stalling configuration.
"""

import pytest
from conftest import banner

from repro import protocols
from repro.core import GenerationConfig, generate


@pytest.mark.parametrize("name", protocols.available_protocols())
def test_generation_runtime(benchmark, name):
    spec = protocols.load(name)
    generated = benchmark(lambda: generate(spec, GenerationConfig.nonstalling()))

    banner(f"E11 -- generation runtime for {name}")
    print(f"  cache states: {generated.cache.num_states}, "
          f"directory states: {generated.directory.num_states}")
    print("  paper: always well under one second; see the pytest-benchmark table")

    # The paper's claim, with a wide margin for the Python implementation.
    assert benchmark.stats.stats.mean < 1.0
