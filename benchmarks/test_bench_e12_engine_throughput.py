"""E12 -- engine throughput: serial vs shared-memory parallel BFS.

The paper's Murphi configuration (stalling MSI, 3 caches x 2 accesses,
symmetry-reduced: ~27k canonical states) is the reference workload for the
encoded-state core: the same search runs once on the serial strategy and
once on the shared-memory parallel engine, both are recorded to
``BENCH_results.json``, and the two must agree exactly on verdict and
counts.

Before the encoded core, parallel BFS only broke even past ~10^5-state
frontiers because every frontier level crossed the process boundary as
pickled object graphs.  The engine now writes each level's packed records
into a ``multiprocessing.shared_memory`` arena that workers claim
work-stealing chunks from (nothing is pickled but the per-round control
messages), and the visited set lives digest-sharded *inside* the workers,
so the IPC overhead at this size drops to a few percent and any machine
with two or more real cores comes out ahead.  The wall-clock comparison is
recorded, and asserted only on multi-core machines (a single-core container
time-shares the workers and cannot win).
"""

import os

import pytest
from conftest import banner

from bench_reporting import record_run
from repro.system import System, Workload
from repro.verification import verify

PROCESSES = 2

#: Measured parallel-vs-serial crossover on the reference workload.  The
#: work-stealing engine keeps the lazy spin-up contract the earlier worker
#: pool introduced: levels are expanded in-process until one exceeds
#: ``POOL_SPINUP_FRONTIER`` (2048 states), so searches whose every level
#: stays narrow pay nothing at all (re-measured: a 2c x 2a reduced search
#: runs the parallel strategy with zero overhead, fleet never forked), and
#: the reference 3c x 2a workload's fixed overhead stays around ~0.4 s
#: (fork deferred past the narrow early levels; the figure is time-sharing-
#: inflated on the 1-core reference container, true 2-core cost roughly
#: half).  With two real cores the fleet splits the post-spin-up compute
#: across shared-memory arenas, so it wins once the serial wall-clock
#: clears about twice the ~0.2-0.25 s true overhead.  Below this the
#: comparison is skipped with a recorded reason instead of flaking.
PARALLEL_CROSSOVER_SECONDS = 0.6


def _schedulable_cores() -> int:
    """Cores this process may actually run on (cgroup/affinity aware --
    ``os.cpu_count()`` reports the host's logical CPUs even in a 1-core
    container)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def test_engine_throughput_serial_vs_parallel(benchmark, generated):
    protocol = generated[("MSI", "stalling")]
    system = System(protocol, num_caches=3,
                    workload=Workload(max_accesses_per_cache=2))

    def serial():
        return verify(system, symmetry=True)

    serial_result = benchmark.pedantic(serial, rounds=1, iterations=1)
    object_result = verify(system, symmetry=True, kernel="object")
    parallel_result = verify(
        system, symmetry=True, strategy="parallel", processes=PROCESSES
    )

    for bench_id, result, procs in [
        ("e12-msi-3c2a-reduced-serial", serial_result, None),
        ("e12-msi-3c2a-reduced-serial-object", object_result, None),
        ("e12-msi-3c2a-reduced-parallel", parallel_result, PROCESSES),
    ]:
        record_run(
            bench_id, result,
            protocol="MSI", config="stalling",
            num_caches=3, accesses=2, symmetry=True, processes=procs,
        )

    cores = _schedulable_cores()
    speedup = serial_result.elapsed_seconds / parallel_result.elapsed_seconds
    kernel_speedup = object_result.elapsed_seconds / serial_result.elapsed_seconds
    banner("E12 -- engine throughput, stalling MSI 3c x 2a (symmetry-reduced)")
    print(f"  serial (compiled kernel) : {serial_result.summary}")
    print(f"  serial (object kernel)   : {object_result.summary}")
    print(f"  parallel (compiled)      : {parallel_result.summary} "
          f"({PROCESSES} workers)")
    print(f"  compiled/object speedup  : {kernel_speedup:.2f}x")
    print(f"  parallel/serial speedup  : {speedup:.2f}x "
          f"(schedulable cores: {cores})")
    if "worker_states" in parallel_result.stats:
        print(f"  states per worker        : "
              f"{parallel_result.stats['worker_states']} "
              f"(chunk steals: {parallel_result.stats['steal_count']})")

    assert serial_result.ok and object_result.ok and parallel_result.ok
    assert serial_result.kernel == "compiled" and object_result.kernel == "object"
    assert (serial_result.states_explored == object_result.states_explored
            == parallel_result.states_explored)
    assert (serial_result.transitions_explored
            == object_result.transitions_explored
            == parallel_result.transitions_explored)
    # The compiled kernel exists to beat the object executor on exactly this
    # workload; equality-or-better is the floor, >=2x the observed norm.
    assert serial_result.elapsed_seconds <= object_result.elapsed_seconds, (
        f"compiled kernel {serial_result.elapsed_seconds:.2f}s slower than "
        f"object executor {object_result.elapsed_seconds:.2f}s"
    )
    if cores < 2:
        pytest.skip(
            f"single schedulable core: the worker pool time-shares with the "
            f"parent, so parallel cannot win (speedup {speedup:.2f}x recorded "
            f"to BENCH_results.json)"
        )
    if serial_result.elapsed_seconds < PARALLEL_CROSSOVER_SECONDS:
        pytest.skip(
            f"serial finished in {serial_result.elapsed_seconds:.2f}s, under "
            f"the measured {PARALLEL_CROSSOVER_SECONDS}s multi-core "
            f"crossover (pool setup + IPC ~0.2s): parallel is not expected "
            f"to win (speedup {speedup:.2f}x recorded to BENCH_results.json)"
        )
    # Above the crossover with at least two schedulable cores, the
    # work-stealing fleet must beat the serial search on this ~27k-state
    # workload -- the zero-copy arenas and the owner-sharded dedup exist
    # exactly for this.
    assert parallel_result.elapsed_seconds < serial_result.elapsed_seconds, (
        f"parallel {parallel_result.elapsed_seconds:.2f}s did not beat "
        f"serial {serial_result.elapsed_seconds:.2f}s on {cores} cores"
    )
