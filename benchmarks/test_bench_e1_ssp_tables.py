"""E1 -- Tables I and II: the atomic MSI stable state protocol.

Regenerates the content of the paper's input tables from the bundled MSI SSP
and times SSP construction + validation (the "front end" of the tool).
"""

from conftest import banner

from repro import protocols
from repro.dsl.types import AccessKind, describe_action
from repro.dsl.validation import validate_protocol


def _build_and_validate():
    spec = protocols.load("MSI")
    validate_protocol(spec, strict=True)
    return spec


def test_table1_and_table2_msi_ssp(benchmark):
    spec = benchmark(_build_and_validate)

    banner("Table I -- specification of cache in atomic MSI protocol")
    cache = spec.cache
    for state in cache.state_names():
        row = [f"state {state}:"]
        for access in (AccessKind.LOAD, AccessKind.STORE, AccessKind.REPLACEMENT):
            transaction = cache.transaction_for(state, access)
            if transaction is not None and transaction.request is not None:
                row.append(f"{access}: send {transaction.request.message} "
                           f"-> {transaction.final_state}")
            elif cache.state(state).permission.allows(access):
                row.append(f"{access}: hit")
        for reaction in cache.reactions_in(state):
            actions = ", ".join(describe_action(a) for a in reaction.actions)
            row.append(f"{reaction.message}: {actions} -> {reaction.next_state}")
        print("  " + " | ".join(row))

    banner("Table II -- specification of directory in atomic MSI protocol")
    directory = spec.directory
    for state in directory.state_names():
        row = [f"state {state}:"]
        for reaction in directory.reactions_in(state):
            actions = ", ".join(describe_action(a) for a in reaction.actions)
            guard = f" [{reaction.guard}]" if reaction.guard else ""
            row.append(f"{reaction.message}{guard}: {actions} -> {reaction.next_state}")
        for transaction in directory.transactions_from(state):
            row.append(
                f"{transaction.initiator}: forward and wait -> {transaction.final_state}"
            )
        print("  " + " | ".join(row))

    # Shape checks mirroring the paper's tables.
    assert set(cache.state_names()) == {"I", "S", "M"}
    assert set(directory.state_names()) == {"I", "S", "M"}
    assert cache.request_for_access("I", AccessKind.LOAD) == "GetS"
    assert directory.transaction_for("M", "GetS") is not None
