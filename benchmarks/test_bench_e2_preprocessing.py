"""E2 -- Tables III and IV: MOSI preprocessing (forwarded-request renaming).

The paper's example: in a natural MOSI SSP, Fwd_GetS can arrive at a cache in
both M and O; ProtoGen renames the O-state arrival to O_Fwd_GetS so a cache
can deduce the serialization order at the directory.
"""

from conftest import banner

from repro import protocols
from repro.core.preprocess import forwarded_arrival_states, preprocess


def test_mosi_forwarded_request_renaming(benchmark):
    result = benchmark(lambda: preprocess(protocols.load("MOSI")))

    original = protocols.load("MOSI")
    banner("Table III -- MOSI SSP before preprocessing")
    for message, states in forwarded_arrival_states(original).items():
        print(f"  {message:12s} arrives in stable states: {states}")

    banner("Table IV -- MOSI SSP after preprocessing")
    for message, states in forwarded_arrival_states(result.spec).items():
        print(f"  {message:12s} arrives in stable states: {states}")
    print(f"  renamings applied: {result.renamings}")

    assert result.renamings["Fwd_GetS"] == ["Fwd_GetS", "O_Fwd_GetS"]
    assert forwarded_arrival_states(result.spec)["O_Fwd_GetS"] == ["O"]
    assert forwarded_arrival_states(result.spec)["Fwd_GetS"] == ["M"]
