"""E3 -- Table V: transient states added in the absence of concurrency.

Regenerates the I->M transaction's transient chain (IM_AD, IM_A) and the
Step-2 State Sets listed in Section V-C.
"""

from conftest import banner

from repro import protocols
from repro.core import GenerationConfig, generate
from repro.core.fsm import AccessEvent, MessageEvent
from repro.dsl.types import AccessKind, describe_action


def test_table5_transient_states_without_concurrency(benchmark):
    generated = benchmark(
        lambda: generate(protocols.load("MSI"), GenerationConfig.nonstalling())
    )
    cache = generated.cache

    banner("Table V -- adding transient states (no concurrency), I->M transaction")
    [store] = cache.candidates("I", AccessEvent(AccessKind.STORE))
    print(f"  I     store: {'; '.join(describe_action(a) for a in store.actions)} "
          f"/ {store.next_state}")
    for state in ("IM_AD", "IM_A"):
        for transition in cache.candidates(state, MessageEvent("Data")) + cache.candidates(
            state, MessageEvent("Inv_Ack")
        ):
            guard = f"[{transition.event.guard}]" if transition.event.guard else ""
            print(f"  {state:6s} {transition.event.message}{guard}: -> {transition.next_state}")

    banner("Step-2 State Sets (paper Section V-C)")
    stable = [s.name for s in cache.stable_states()]
    for stable_state in stable:
        members = sorted(
            s.name for s in cache.states()
            if stable_state in s.state_sets and not s.meta.get("chain") and not s.meta.get("stale")
        )
        print(f"  {stable_state} = {{{', '.join(members)}}}")

    assert store.next_state == "IM_AD"
    assert {t.next_state for t in cache.candidates("IM_AD", MessageEvent("Data"))} == {"M", "IM_A"}
    assert set(cache.state("IM_AD").state_sets) == {"I", "M"}
    assert set(cache.state("IM_A").state_sets) == {"M"}
