"""E4 -- Figure 1: the S->M transaction when the other transaction was
ordered earlier (Case 1): SM_AD + Inv responds immediately and restarts the
own transaction from IM_AD."""

from conftest import banner

from repro import protocols
from repro.core import GenerationConfig, generate
from repro.core.fsm import MessageEvent
from repro.dsl.types import describe_action


def test_figure1_case1_earlier_ordered_transaction(benchmark):
    generated = benchmark(
        lambda: generate(protocols.load("MSI"), GenerationConfig.nonstalling())
    )
    cache = generated.cache

    banner("Figure 1 -- cache S->M transaction with T_other -> T_own")
    for state in ("S", "SM_AD", "IM_AD", "IM_A", "M"):
        sets = ",".join(sorted(cache.state(state).state_sets))
        print(f"  state {state:7s} in State Sets {{{sets}}}")
    [inv] = cache.candidates("SM_AD", MessageEvent("Inv"))
    print(
        f"  SM_AD + Inv: {'; '.join(describe_action(a) for a in inv.actions)} "
        f"-> {inv.next_state}"
    )

    assert inv.next_state == "IM_AD"
    assert not inv.stall
    assert set(cache.state("SM_AD").state_sets) == {"S", "M"}
    assert set(cache.state("IM_AD").state_sets) == {"I", "M"}
