"""E5 -- Figure 2: the I->S transaction receiving an Invalidation (the ISI
situation): immediate Inv-Ack, one final load, then drop to I."""

from conftest import banner

from repro import protocols
from repro.core import GenerationConfig, generate
from repro.core.fsm import MessageEvent
from repro.dsl.types import PerformAccess, Send, describe_action


def test_figure2_isi_immediate_transition_and_response(benchmark):
    generated = benchmark(
        lambda: generate(protocols.load("MSI"), GenerationConfig.nonstalling())
    )
    cache = generated.cache

    banner("Figure 2 -- the I->S transition and the ISI state")
    print(f"  IS_D   State Sets: {sorted(cache.state('IS_D').state_sets)}")
    print(f"  IS_D_I State Sets: {sorted(cache.state('IS_D_I').state_sets)}")
    [inv] = cache.candidates("IS_D", MessageEvent("Inv"))
    print(f"  IS_D + Inv: {'; '.join(describe_action(a) for a in inv.actions)} "
          f"-> {inv.next_state}")
    for completion in cache.candidates("IS_D_I", MessageEvent("Data")):
        print(f"  IS_D_I + Data: {'; '.join(describe_action(a) for a in completion.actions)} "
              f"-> {completion.next_state}")

    assert inv.next_state == "IS_D_I"
    assert any(isinstance(a, Send) and a.message == "Inv_Ack" for a in inv.actions)
    assert set(cache.state("IS_D_I").state_sets) == {"I"}
    for completion in cache.candidates("IS_D_I", MessageEvent("Data")):
        assert completion.next_state == "I"
        assert any(isinstance(a, PerformAccess) for a in completion.actions)
