"""E6 -- Table VI: the generated non-stalling MSI cache controller versus the
primer's hand-written one.

The paper reports two qualitative differences: the generated protocol stalls
less (extra states IM_AD_S, IM_AD_I, IM_AD_SI, SM_AD_S replace stalls on
forwarded requests in IM_AD/SM_AD) and merges some states the primer keeps
separate (IM_A_I = SM_A_I etc.).  This benchmark prints the full generated
table plus the structural diff.
"""

from conftest import banner

from repro import protocols
from repro.analysis import compare_with_baseline
from repro.backends import render_table
from repro.core import GenerationConfig, generate
from repro.protocols import primer


def test_table6_nonstalling_msi_vs_primer(benchmark):
    generated = benchmark(
        lambda: generate(protocols.load("MSI"), GenerationConfig.nonstalling())
    )
    baseline = primer.nonstalling_msi_cache()
    report = compare_with_baseline(generated.cache, baseline)

    banner("Table VI -- generated non-stalling MSI cache controller")
    print(render_table(generated.cache))

    banner("Comparison against the primer's non-stalling MSI cache controller")
    for line in report.summary_lines():
        print("  " + line)
    print(f"  paper-reported extra states:      {sorted(primer.PROTOGEN_EXTRA_STATES)}")
    print(f"  paper-reported un-stalled cells:  {sorted(primer.PROTOGEN_UNSTALLED_CELLS)}")
    print(f"  paper-reported merged pairs:      {sorted(primer.PROTOGEN_MERGED_PAIRS)}")

    # The paper's qualitative findings must hold.
    assert primer.PROTOGEN_EXTRA_STATES <= report.extra_states
    assert primer.PROTOGEN_UNSTALLED_CELLS <= report.unstalled_cells
    assert report.newly_stalled_cells == set()
    merged_aliases = {a for aliases in report.merged_states.values() for a in aliases}
    assert {"SM_A_I", "SM_A_SI"} <= merged_aliases
    # 18 primer states; the paper's generated protocol has 19, ours 20
    # (SM_A_S stays separate because it can still serve load hits).
    assert baseline.num_states == 18
    assert 19 <= generated.cache.num_states <= 21
