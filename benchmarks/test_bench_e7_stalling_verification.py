"""E7 -- Section VI-A: stalling MSI / MESI / MOSI protocols.

The paper generates stalling versions of the primer's protocols and verifies
them with Murphi (SWMR + deadlock freedom, three caches).  Here the internal
model checker plays Murphi's role: each stalling protocol is generated and
exhaustively verified with two caches (the three-cache configuration is
exercised with a reduced workload to keep the Python search tractable).
"""

import pytest
from conftest import banner

from repro.dsl.types import AccessKind
from repro.system import System, Workload
from repro.verification import verify


@pytest.mark.parametrize("name", ["MSI", "MESI", "MOSI"])
def test_stalling_protocol_verification(benchmark, generated, name):
    protocol = generated[(name, "stalling")]

    def check():
        system = System(protocol, num_caches=2,
                        workload=Workload(max_accesses_per_cache=2))
        return verify(system)

    result = benchmark.pedantic(check, rounds=1, iterations=1)

    three_cache = verify(
        System(protocol, num_caches=3, workload=Workload(
            max_accesses_per_cache=1,
            access_kinds=(AccessKind.LOAD, AccessKind.STORE),
        ))
    )

    banner(f"E7 -- stalling {name}: safety and deadlock freedom")
    print(f"  cache states: {protocol.cache.num_states}, "
          f"directory states: {protocol.directory.num_states}")
    print(f"  2 caches, 2 accesses each : {result.summary}")
    print(f"  3 caches, 1 access  each : {three_cache.summary}")

    assert result.ok
    assert three_cache.ok
