"""E7 -- Section VI-A: stalling MSI / MESI / MOSI protocols.

The paper generates stalling versions of the primer's protocols and verifies
them with Murphi (SWMR + deadlock freedom, three caches).  Here the internal
model checker plays Murphi's role.  Murphi keeps the three-cache directory
state space tractable with scalarset symmetry reduction; the engine's
cache-ID canonicalization (``verify(..., symmetry=True)``) does the same,
which lets this benchmark run the paper's actual configuration -- three
caches with the full two-access workload -- instead of capping three-cache
runs at one access per cache as the seed did.
"""

import os
import resource
import time

import pytest
from conftest import banner

from bench_reporting import record_run
from repro.dsl.types import AccessKind
from repro.system import System, Workload
from repro.verification import verify


@pytest.mark.parametrize("name", ["MSI", "MESI", "MOSI"])
def test_stalling_protocol_verification(benchmark, generated, name):
    protocol = generated[(name, "stalling")]

    def check():
        system = System(protocol, num_caches=2,
                        workload=Workload(max_accesses_per_cache=2))
        return verify(system)

    result = benchmark.pedantic(check, rounds=1, iterations=1)

    three_system = System(protocol, num_caches=3, workload=Workload(
        max_accesses_per_cache=1,
        access_kinds=(AccessKind.LOAD, AccessKind.STORE),
    ))
    three_full = verify(three_system)
    three_reduced = verify(three_system, symmetry=True)

    banner(f"E7 -- stalling {name}: safety and deadlock freedom")
    print(f"  cache states: {protocol.cache.num_states}, "
          f"directory states: {protocol.directory.num_states}")
    print(f"  2 caches, 2 accesses each           : {result.summary}")
    print(f"  3 caches, 1 access  each (full)     : {three_full.summary}")
    print(f"  3 caches, 1 access  each (symmetry) : {three_reduced.summary}")
    print(f"  symmetry reduction factor           : "
          f"{three_full.states_explored / three_reduced.states_explored:.2f}x")

    assert result.ok
    assert three_full.ok
    assert three_reduced.ok
    assert three_reduced.states_explored < three_full.states_explored


def test_stalling_msi_three_caches_full_workload(benchmark, generated):
    """The paper's Murphi configuration: three caches, two accesses per
    cache, full access mix -- tractable thanks to symmetry reduction (the
    unreduced search is ~6x larger: 174k vs 29.5k states)."""
    protocol = generated[("MSI", "stalling")]

    def check():
        system = System(protocol, num_caches=3,
                        workload=Workload(max_accesses_per_cache=2))
        return verify(system, symmetry=True)

    result = benchmark.pedantic(check, rounds=1, iterations=1)
    record_run(
        "e7-msi-3c2a-reduced", result,
        protocol="MSI", config="stalling",
        num_caches=3, accesses=2, symmetry=True,
    )

    banner("E7 -- stalling MSI, 3 caches x 2 accesses (symmetry-reduced)")
    print(f"  {result.summary}")
    print(f"  complete (quiescent, workload-exhausted) states: "
          f"{result.complete_states}")

    assert result.ok
    assert result.symmetry_reduced
    assert not result.truncated


@pytest.mark.slow
def test_stalling_msi_three_caches_full_unreduced_kernel_axis(generated):
    """The full (unreduced) 174 189-state Murphi configuration, run once per
    transition kernel: the reference workload for the backend ladder.
    (The count moved from the 158 007 pinned at compiled-kernel time when
    fault hardening grew the generated protocols.)  All
    three runs are recorded to BENCH_results.json; each backend must
    reproduce the object executor's exploration exactly, the compiled kernel
    at least 2x faster than the object executor (typically 3-4x), and the
    batch-vectorized frontier kernel no slower than the compiled one
    (typically ~2x on this unreduced workload, where canonicalization does
    not dilute the batch win)."""
    protocol = generated[("MSI", "stalling")]
    system = System(protocol, num_caches=3,
                    workload=Workload(max_accesses_per_cache=2))

    compiled = verify(system)
    objected = verify(system, kernel="object")
    vectorized = verify(system, kernel="vectorized")
    for bench_id, result in [
        ("e7-msi-3c2a-full-compiled", compiled),
        ("e7-msi-3c2a-full-object", objected),
        ("e7-msi-3c2a-full-vectorized", vectorized),
    ]:
        record_run(
            bench_id, result,
            protocol="MSI", config="stalling",
            num_caches=3, accesses=2, symmetry=False,
        )

    banner("E7 -- stalling MSI, 3 caches x 2 accesses (full, kernel axis)")
    print(f"  compiled kernel   : {compiled.summary}")
    print(f"  object kernel     : {objected.summary}")
    print(f"  vectorized kernel : {vectorized.summary}")
    print(f"  compiled/object   : "
          f"{objected.elapsed_seconds / compiled.elapsed_seconds:.2f}x")
    print(f"  vectorized/compiled: "
          f"{compiled.elapsed_seconds / vectorized.elapsed_seconds:.2f}x")

    assert compiled.ok and objected.ok and vectorized.ok
    assert vectorized.kernel == "vectorized"
    assert (compiled.states_explored == objected.states_explored
            == vectorized.states_explored == 174_189)
    assert (compiled.transitions_explored == objected.transitions_explored
            == vectorized.transitions_explored)
    assert vectorized.stats["fallback_transitions"] == 0
    assert compiled.elapsed_seconds * 2 <= objected.elapsed_seconds, (
        f"compiled kernel {compiled.elapsed_seconds:.2f}s is not 2x faster "
        f"than the object executor {objected.elapsed_seconds:.2f}s"
    )
    assert vectorized.elapsed_seconds <= compiled.elapsed_seconds, (
        f"vectorized kernel {vectorized.elapsed_seconds:.2f}s is slower than "
        f"the compiled kernel {compiled.elapsed_seconds:.2f}s"
    )


#: Worker count of the nightly parallel run and the wall-clock the resumed
#: leg must finish within when the host actually has the cores for it.
NIGHTLY_WORKERS = 4
NIGHTLY_WALL_CLOCK_SECONDS = 300


def _schedulable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@pytest.mark.slow
def test_stalling_msi_four_caches_full_budgeted_nightly(generated, tmp_path):
    """Nightly 4-cache x 2-access *full* (unreduced) MSI exploration, on the
    shared-memory parallel engine, in two legs.

    The space measures **24 579 648 states / 80 091 260 transitions**
    (23.4x the reduced space's 1 052 239 canonical states, right at the
    4! = 24 orbit bound).  The serial compiled kernel covered it in ~25 min
    at ~17 k states/s with 14.5 GB peak RSS; the parallel engine shards the
    visited set across ``NIGHTLY_WORKERS`` worker processes (the parent
    keeps no key dict at all) and is expected under
    ``NIGHTLY_WALL_CLOCK_SECONDS`` wall-clock on a host with enough
    schedulable cores -- the gate is skipped, with the measurement still
    recorded, on smaller machines where the processes would just time-slice
    one core.

    Leg 1 is the **resume smoke**: a 2M-state budgeted run stops at a round
    boundary and persists the sharded checkpoint (store links + worker
    digest dumps).  Leg 2 resumes from it under the full budget and must
    land on the exact uninterrupted totals -- checkpoint/resume at nightly
    scale, not just in the unit suite.  Throughput, peak memory and the
    engine's worker telemetry (states per worker, chunk steals, spill
    bytes) are recorded to ``BENCH_results.json``.
    """
    budget = 30_000_000
    protocol = generated[("MSI", "stalling")]
    system = System(protocol, num_caches=4,
                    workload=Workload(max_accesses_per_cache=2))
    checkpoint = str(tmp_path / "e7-nightly.ckpt")

    # Leg 1 -- budgeted prefix, checkpoint saved at a round boundary.
    partial = verify(system, max_states=2_000_000, strategy="parallel",
                     processes=NIGHTLY_WORKERS, hash_compaction=True,
                     checkpoint=checkpoint)
    assert partial.ok and partial.partial
    assert os.path.exists(checkpoint), "budgeted leg must persist a checkpoint"

    # Leg 2 -- resume under the full budget; head-room above the known size
    # keeps the clean partial-abort path as the backstop if the space ever
    # grows, while the assertions below demand full coverage.
    rss_before_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    start = time.perf_counter()
    result = verify(system, max_states=budget, strategy="parallel",
                    processes=NIGHTLY_WORKERS, hash_compaction=True,
                    checkpoint=checkpoint)
    elapsed = time.perf_counter() - start
    rss_after_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

    entry = record_run(
        "e7-msi-4c2a-full-nightly", result,
        protocol="MSI", config="stalling",
        num_caches=4, accesses=2, symmetry=False,
        processes=NIGHTLY_WORKERS,
        extra={
            "max_states": budget,
            "peak_rss_kb": rss_after_kb,
            "peak_rss_delta_kb": max(0, rss_after_kb - rss_before_kb),
            "resumed_leg_seconds": round(elapsed, 3),
        },
    )

    cores = _schedulable_cores()
    banner("E7 -- stalling MSI, 4 caches x 2 accesses (full, parallel nightly)")
    print(f"  {result.summary}")
    print(f"  resumed at level        : {result.stats['resume_level']}")
    print(f"  states/second           : {entry['states_per_second']}")
    print(f"  states per worker       : {result.stats['worker_states']}")
    print(f"  chunk steals            : {result.stats['steal_count']}")
    print(f"  peak RSS                : {rss_after_kb / 1024:.0f} MB "
          f"(+{entry['peak_rss_delta_kb'] / 1024:.0f} MB during the search)")
    print(f"  resumed leg wall-clock  : {elapsed:.0f}s "
          f"({cores} schedulable cores)")

    assert result.ok
    assert result.strategy == "parallel"
    assert result.stats["resume_level"] is not None, "leg 2 must resume leg 1"
    assert not os.path.exists(checkpoint), "a completed run consumes its checkpoint"
    # Resume parity at scale: the two-leg search must land on the exact
    # uninterrupted totals (cross-checked against the reduced
    # 1 052 239-state search: 23.4x, within the 4! orbit bound).
    assert not result.partial
    assert result.states_explored == 24_579_648
    assert result.transitions_explored == 80_091_260
    assert sum(result.stats["worker_states"]) > 0
    if cores > NIGHTLY_WORKERS:
        assert elapsed < NIGHTLY_WALL_CLOCK_SECONDS, (
            f"resumed nightly leg took {elapsed:.0f}s on {cores} cores "
            f"(gate: {NIGHTLY_WALL_CLOCK_SECONDS}s)"
        )
    else:
        print(f"  wall-clock gate skipped: {cores} schedulable cores <= "
              f"{NIGHTLY_WORKERS} workers")
