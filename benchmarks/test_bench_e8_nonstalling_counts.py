"""E8 -- Section VI-B: non-stalling MSI / MESI / MOSI protocols.

The paper reports that the generated non-stalling protocols are "fairly
non-trivial with 18-20 states and 46-60 transitions", verified for SWMR and
deadlock freedom.  This benchmark prints the state / transition counts and
verifies each protocol with the internal model checker.
"""

import pytest
from conftest import banner

from repro.analysis import protocol_metrics
from repro.system import System, Workload
from repro.verification import verify


@pytest.mark.parametrize("name", ["MSI", "MESI", "MOSI"])
def test_nonstalling_protocol_counts_and_verification(benchmark, generated, name):
    protocol = generated[(name, "nonstalling")]
    metrics = protocol_metrics(protocol)

    def check():
        system = System(protocol, num_caches=2,
                        workload=Workload(max_accesses_per_cache=2))
        return verify(system)

    result = benchmark.pedantic(check, rounds=1, iterations=1)

    reduced = verify(
        System(protocol, num_caches=2, workload=Workload(max_accesses_per_cache=2)),
        symmetry=True,
    )
    three_reduced = verify(
        System(protocol, num_caches=3, workload=Workload(max_accesses_per_cache=1)),
        symmetry=True,
    )

    banner(f"E8 -- non-stalling {name}: size and verification")
    print(f"  cache     : {metrics.cache.states} states, "
          f"{metrics.cache.protocol_transitions} transitions, {metrics.cache.stalls} stalls")
    print(f"  directory : {metrics.directory.states} states, "
          f"{metrics.directory.protocol_transitions} transitions")
    print(f"  total     : {metrics.total_states} states, "
          f"{metrics.total_protocol_transitions} transitions "
          f"(paper: 18-20 states, 46-60 transitions)")
    print(f"  verification (2 caches)           : {result.summary}")
    print(f"  verification (2 caches, symmetry) : {reduced.summary}")
    print(f"  verification (3 caches, symmetry) : {three_reduced.summary}")

    assert result.ok
    assert reduced.ok and reduced.states_explored <= result.states_explored
    assert three_reduced.ok
    # Shape check: same order of magnitude as the paper; MOSI uses the
    # directory-recall variant and is therefore larger.
    if name in ("MSI", "MESI"):
        assert 18 <= metrics.total_states <= 34
    assert metrics.total_protocol_transitions >= 46
