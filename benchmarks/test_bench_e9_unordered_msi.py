"""E9 -- Section VI-C: an MSI protocol for an interconnect without
point-to-point ordering.

The generated protocol is model-checked on the *unordered* network model, in
which any in-flight message may be delivered next.

PR 1's deeper search (3 caches x 2 accesses) exposed a latent hole in the
bundled spec: a cache redirected out of ``SM_AD`` had no transition for the
earlier-ordered ``Inv`` that the unordered network delivered late (the
repeated-invalidation race).  The generator now tracks such late arrivals
(``TransientDescriptor.late_absorbs``) and emits absorb transitions, so this
benchmark asserts the deep run *passes* -- in both search modes, with the
exact state counts -- instead of documenting the failure.
"""

from conftest import banner

from bench_reporting import record_run
from repro.dsl.types import AccessKind
from repro.system import System, Workload
from repro.verification import verify

#: Exact explored-state counts for the 3-cache x 2-access LOAD/STORE deep
#: run of the fixed spec.  The full/reduced ratio approaches 3! = 6.
DEEP_FULL_STATES = 449_102
DEEP_REDUCED_STATES = 75_148


def test_unordered_msi_verification(benchmark, generated):
    protocol = generated[("MSI-Unordered", "nonstalling")]

    def check():
        system = System(
            protocol,
            num_caches=2,
            workload=Workload(max_accesses_per_cache=2,
                              access_kinds=(AccessKind.LOAD, AccessKind.STORE)),
            ordered=False,
        )
        return verify(system)

    result = benchmark.pedantic(check, rounds=1, iterations=1)

    three_system = System(
        protocol,
        num_caches=3,
        workload=Workload(max_accesses_per_cache=1,
                          access_kinds=(AccessKind.LOAD, AccessKind.STORE)),
        ordered=False,
    )
    three_caches = verify(three_system)
    three_reduced = verify(three_system, symmetry=True)
    # The deep workload that used to expose the repeated-invalidation hole
    # (second Inv after a Case-2 redirect out of SM_AD).  With the
    # late-absorption transitions in the generated controller it now
    # verifies clean in both modes.
    deep_system = System(
        protocol,
        num_caches=3,
        workload=Workload(max_accesses_per_cache=2,
                          access_kinds=(AccessKind.LOAD, AccessKind.STORE)),
        ordered=False,
    )
    deep_full = verify(deep_system)
    deep_reduced = verify(deep_system, symmetry=True)
    # The batch-vectorized frontier kernel must land on the same pinned
    # counts on this unordered-network deep run (its hardest parity case:
    # unordered sections dedupe in-flight multiset permutations).
    deep_reduced_vec = verify(deep_system, symmetry=True, kernel="vectorized")
    record_run(
        "e9-msi-unordered-3c2a-full", deep_full,
        protocol="MSI-Unordered", config="nonstalling",
        num_caches=3, accesses=2, symmetry=False,
    )
    record_run(
        "e9-msi-unordered-3c2a-reduced", deep_reduced,
        protocol="MSI-Unordered", config="nonstalling",
        num_caches=3, accesses=2, symmetry=True,
    )
    record_run(
        "e9-msi-unordered-3c2a-reduced-vectorized", deep_reduced_vec,
        protocol="MSI-Unordered", config="nonstalling",
        num_caches=3, accesses=2, symmetry=True,
    )

    banner("E9 -- MSI for an unordered network")
    print(f"  cache states: {protocol.cache.num_states} "
          f"(ordered-network MSI: {generated[('MSI', 'nonstalling')].cache.num_states})")
    print(f"  2 caches, unordered delivery            : {result.summary}")
    print(f"  3 caches, unordered delivery            : {three_caches.summary}")
    print(f"  3 caches, unordered, symmetry           : {three_reduced.summary}")
    print(f"  3 caches x 2 accesses (repeated-invalidation deep run):")
    print(f"    full    : {deep_full.summary}")
    print(f"    symmetry: {deep_reduced.summary}")
    print(f"    symmetry, vectorized kernel: {deep_reduced_vec.summary}")

    assert result.ok
    assert three_caches.ok
    assert three_reduced.ok
    assert three_reduced.states_explored < three_caches.states_explored

    # The repeated-invalidation hole is fixed: both modes verify clean and
    # reproduce the recorded state counts exactly.
    assert deep_full.ok, deep_full.summary
    assert deep_reduced.ok, deep_reduced.summary
    assert deep_full.states_explored == DEEP_FULL_STATES
    assert deep_reduced.states_explored == DEEP_REDUCED_STATES
    assert deep_full.states_explored / deep_reduced.states_explored > 5.5
    assert deep_reduced_vec.ok, deep_reduced_vec.summary
    assert deep_reduced_vec.kernel == "vectorized"
    assert deep_reduced_vec.states_explored == DEEP_REDUCED_STATES
    assert (deep_reduced_vec.transitions_explored
            == deep_reduced.transitions_explored)
