"""E9 -- Section VI-C: an MSI protocol for an interconnect without
point-to-point ordering.

The generated protocol is model-checked on the *unordered* network model, in
which any in-flight message may be delivered next.
"""

from conftest import banner

from repro.dsl.types import AccessKind
from repro.system import System, Workload
from repro.verification import verify


def test_unordered_msi_verification(benchmark, generated):
    protocol = generated[("MSI-Unordered", "nonstalling")]

    def check():
        system = System(
            protocol,
            num_caches=2,
            workload=Workload(max_accesses_per_cache=2,
                              access_kinds=(AccessKind.LOAD, AccessKind.STORE)),
            ordered=False,
        )
        return verify(system)

    result = benchmark.pedantic(check, rounds=1, iterations=1)

    three_system = System(
        protocol,
        num_caches=3,
        workload=Workload(max_accesses_per_cache=1,
                          access_kinds=(AccessKind.LOAD, AccessKind.STORE)),
        ordered=False,
    )
    three_caches = verify(three_system)
    three_reduced = verify(three_system, symmetry=True)
    # The engine's extended reach (3 caches x 2 accesses) exposes a latent
    # hole in the bundled unordered-MSI spec that the seed's capped workloads
    # never hit: a cache that has already deferred one invalidation (IM_AD_I)
    # receives a second Inv.  Both search modes must agree on the verdict and
    # the symmetry-reduced counterexample must replay step-by-step.
    deep_system = System(
        protocol,
        num_caches=3,
        workload=Workload(max_accesses_per_cache=2,
                          access_kinds=(AccessKind.LOAD, AccessKind.STORE)),
        ordered=False,
    )
    deep_full = verify(deep_system)
    deep_reduced = verify(deep_system, symmetry=True)

    banner("E9 -- MSI for an unordered network")
    print(f"  cache states: {protocol.cache.num_states} "
          f"(ordered-network MSI: {generated[('MSI', 'nonstalling')].cache.num_states})")
    print(f"  2 caches, unordered delivery            : {result.summary}")
    print(f"  3 caches, unordered delivery            : {three_caches.summary}")
    print(f"  3 caches, unordered, symmetry           : {three_reduced.summary}")
    print(f"  3 caches x 2 accesses (beyond the spec's verified envelope):")
    print(f"    full    : {deep_full.summary}")
    print(f"    symmetry: {deep_reduced.summary}")

    assert result.ok
    assert three_caches.ok
    assert three_reduced.ok
    assert three_reduced.states_explored < three_caches.states_explored

    # Known limitation detected by the deeper search: both modes agree.
    assert not deep_full.ok and not deep_reduced.ok
    assert "IM_AD_I" in deep_full.error and "cannot handle message Inv" in deep_full.error
    assert "IM_AD_I" in deep_reduced.error and "cannot handle message Inv" in deep_reduced.error
    # The symmetry-reduced counterexample replays through System.apply.
    state = deep_system.initial_state()
    for step, event in enumerate(deep_reduced.trace_events):
        outcome = deep_system.apply(state, event)
        if step == len(deep_reduced.trace_events) - 1:
            assert outcome.error == deep_reduced.error
        else:
            assert outcome.error is None
            state = outcome.state
