"""E9 -- Section VI-C: an MSI protocol for an interconnect without
point-to-point ordering.

The generated protocol is model-checked on the *unordered* network model, in
which any in-flight message may be delivered next.
"""

from conftest import banner

from repro.dsl.types import AccessKind
from repro.system import System, Workload
from repro.verification import verify


def test_unordered_msi_verification(benchmark, generated):
    protocol = generated[("MSI-Unordered", "nonstalling")]

    def check():
        system = System(
            protocol,
            num_caches=2,
            workload=Workload(max_accesses_per_cache=2,
                              access_kinds=(AccessKind.LOAD, AccessKind.STORE)),
            ordered=False,
        )
        return verify(system)

    result = benchmark.pedantic(check, rounds=1, iterations=1)

    three_caches = verify(
        System(
            protocol,
            num_caches=3,
            workload=Workload(max_accesses_per_cache=1,
                              access_kinds=(AccessKind.LOAD, AccessKind.STORE)),
            ordered=False,
        )
    )

    banner("E9 -- MSI for an unordered network")
    print(f"  cache states: {protocol.cache.num_states} "
          f"(ordered-network MSI: {generated[('MSI', 'nonstalling')].cache.num_states})")
    print(f"  2 caches, unordered delivery: {result.summary}")
    print(f"  3 caches, unordered delivery: {three_caches.summary}")

    assert result.ok
    assert three_caches.ok
