#!/usr/bin/env python3
"""Export generated protocols to Murphi source and Graphviz dot.

The paper's tool emits the generated protocol in the language of the Murphi
model checker; this example does the same for every bundled protocol and also
writes a dot graph of each cache controller, under ``examples/output/``.

Run with::

    python examples/export_murphi_and_dot.py
"""

from pathlib import Path

from repro import GenerationConfig, generate
from repro import protocols
from repro.backends import emit_dot, emit_murphi


def main() -> None:
    output_dir = Path(__file__).parent / "output"
    output_dir.mkdir(exist_ok=True)

    for name in protocols.available_protocols():
        generated = generate(protocols.load(name), GenerationConfig.nonstalling())
        slug = name.lower().replace("-", "_")

        murphi_path = output_dir / f"{slug}.m"
        murphi_path.write_text(emit_murphi(generated, num_caches=3))

        dot_path = output_dir / f"{slug}_cache.dot"
        dot_path.write_text(emit_dot(generated.cache))

        print(f"{name:14s} -> {murphi_path.name:22s} "
              f"({len(murphi_path.read_text().splitlines())} lines), "
              f"{dot_path.name} ({generated.cache.num_states} states)")

    print(f"\nAll outputs written to {output_dir}/")


if __name__ == "__main__":
    main()
