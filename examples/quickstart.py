#!/usr/bin/env python3
"""Quickstart: generate a concurrent MSI protocol from its atomic specification.

This walks the paper's headline flow end to end:

1. load the stable state protocol (the textbook Tables I / II description);
2. run the generator to obtain the concurrent cache and directory controllers
   with all transient states;
3. print the generated controller tables (the Table VI view);
4. model-check the result for SWMR, the data-value invariant and deadlock
   freedom.

Run with::

    python examples/quickstart.py
"""

from repro import GenerationConfig, generate
from repro import protocols
from repro.backends import render_summary, render_table
from repro.system import System, Workload
from repro.verification import verify


def main() -> None:
    print("== 1. Load the MSI stable state protocol (atomic specification) ==")
    ssp = protocols.load("MSI")
    print(f"   stable cache states     : {ssp.cache.state_names()}")
    print(f"   stable directory states : {ssp.directory.state_names()}")
    print(f"   messages                : {ssp.messages.names()}")

    print("\n== 2. Generate the concurrent (non-stalling) protocol ==")
    generated = generate(ssp, GenerationConfig.nonstalling())
    print("   " + render_summary(generated.cache))
    print("   " + render_summary(generated.directory))

    print("\n== 3. Generated cache controller (Table VI view) ==")
    print(render_table(generated.cache))

    print("\n== 4. Generated directory controller ==")
    print(render_table(generated.directory))

    print("\n== 5. Model-check the generated protocol ==")
    system = System(generated, num_caches=2, workload=Workload(max_accesses_per_cache=2))
    result = verify(system)
    print(f"   {result.summary}")
    if not result.ok:
        print("   counterexample:")
        for event in result.trace:
            print(f"     {event}")
        raise SystemExit(1)
    print("   SWMR, data-value and deadlock freedom hold on every reachable state.")


if __name__ == "__main__":
    main()
