#!/usr/bin/env python3
"""Generate and verify the whole protocol family (the Section VI evaluation).

For every bundled SSP (MSI, MESI, MOSI, MSI+Upgrade, unordered MSI, TSO-CC)
and both generator configurations (stalling / non-stalling), this example:

* generates the concurrent protocol,
* reports its size (states / transitions / stalls),
* model-checks it exhaustively with two caches,
* model-checks it exhaustively with **three caches** using the engine's
  cache-ID symmetry reduction (the Murphi scalarset trick, which shrinks the
  three-cache search ~5x),
* additionally runs randomized deep schedules with three caches, reporting
  how many distinct canonical states the walks covered.

Run with::

    python examples/verify_protocol_family.py
"""

import time

from repro import GenerationConfig, generate
from repro import protocols
from repro.analysis import protocol_metrics
from repro.dsl.types import AccessKind
from repro.system import System, Workload
from repro.verification import random_walk, single_owner_invariant, verify


def workload_for(name: str, num_caches: int = 2) -> Workload:
    if num_caches >= 3:
        return Workload(max_accesses_per_cache=1,
                        access_kinds=(AccessKind.LOAD, AccessKind.STORE))
    if name == "MSI-Unordered":
        return Workload(max_accesses_per_cache=2,
                        access_kinds=(AccessKind.LOAD, AccessKind.STORE))
    return Workload(max_accesses_per_cache=2)


def invariants_for(name: str):
    # TSO-CC gives up SWMR in physical time by design.
    return [single_owner_invariant] if name == "TSO-CC" else None


def main() -> None:
    header = (f"{'protocol':14s} {'config':12s} {'cache':>6s} {'dir':>4s} "
              f"{'stalls':>6s} {'gen(s)':>7s}  exhaustive (2c)  3c full->reduced   random (3 caches)")
    print(header)
    print("-" * len(header))

    for name in protocols.available_protocols():
        for label, config in (
            ("nonstalling", GenerationConfig.nonstalling()),
            ("stalling", GenerationConfig.stalling()),
        ):
            start = time.perf_counter()
            generated = generate(protocols.load(name), config)
            elapsed = time.perf_counter() - start
            metrics = protocol_metrics(generated)

            exhaustive = verify(
                System(generated, num_caches=2, workload=workload_for(name)),
                invariants=invariants_for(name),
            )
            three_system = System(generated, num_caches=3,
                                  workload=workload_for(name, num_caches=3))
            three_full = verify(three_system, invariants=invariants_for(name))
            three_reduced = verify(three_system, invariants=invariants_for(name),
                                   symmetry=True)
            random_result = random_walk(
                System(generated, num_caches=3, workload=workload_for(name)),
                runs=20, max_steps=300, seed=1,
                invariants=invariants_for(name),
                track_coverage=True,
            )
            status = "PASS" if exhaustive.ok else "FAIL"
            print(
                f"{name:14s} {label:12s} {metrics.cache.states:6d} "
                f"{metrics.directory.states:4d} {metrics.cache.stalls:6d} {elapsed:7.3f}  "
                f"{status} {exhaustive.states_explored:6d} st  "
                f"{three_full.states_explored:5d}->{three_reduced.states_explored:<5d}     "
                f"{random_result.summary}"
            )
            ok = (exhaustive.ok and three_full.ok and three_reduced.ok
                  and random_result.ok)
            if not ok:
                raise SystemExit(f"verification failed for {name} ({label})")
            if three_reduced.states_explored > three_full.states_explored:
                raise SystemExit(f"symmetry reduction grew the search for {name}?!")

    print("\nAll generated protocols verified successfully "
          "(exhaustively at 2 and 3 caches, plus randomized deep schedules).")


if __name__ == "__main__":
    main()
