#!/usr/bin/env python3
"""Generate and verify the whole protocol family (the Section VI evaluation).

For every bundled SSP (MSI, MESI, MOSI, MSI+Upgrade, unordered MSI, TSO-CC)
and both generator configurations (stalling / non-stalling), this example:

* generates the concurrent protocol,
* reports its size (states / transitions / stalls),
* model-checks it exhaustively with two caches,
* additionally runs randomized deep schedules with three caches.

Run with::

    python examples/verify_protocol_family.py
"""

import time

from repro import GenerationConfig, generate
from repro import protocols
from repro.analysis import protocol_metrics
from repro.dsl.types import AccessKind
from repro.system import System, Workload
from repro.verification import random_walk, single_owner_invariant, verify


def workload_for(name: str) -> Workload:
    if name == "MSI-Unordered":
        return Workload(max_accesses_per_cache=2,
                        access_kinds=(AccessKind.LOAD, AccessKind.STORE))
    return Workload(max_accesses_per_cache=2)


def invariants_for(name: str):
    # TSO-CC gives up SWMR in physical time by design.
    return [single_owner_invariant] if name == "TSO-CC" else None


def main() -> None:
    header = (f"{'protocol':14s} {'config':12s} {'cache':>6s} {'dir':>4s} "
              f"{'stalls':>6s} {'gen(s)':>7s}  exhaustive (2 caches)            random (3 caches)")
    print(header)
    print("-" * len(header))

    for name in protocols.available_protocols():
        for label, config in (
            ("nonstalling", GenerationConfig.nonstalling()),
            ("stalling", GenerationConfig.stalling()),
        ):
            start = time.perf_counter()
            generated = generate(protocols.load(name), config)
            elapsed = time.perf_counter() - start
            metrics = protocol_metrics(generated)

            exhaustive = verify(
                System(generated, num_caches=2, workload=workload_for(name)),
                invariants=invariants_for(name),
            )
            random_result = random_walk(
                System(generated, num_caches=3, workload=workload_for(name)),
                runs=20, max_steps=300, seed=1,
                invariants=invariants_for(name),
            )
            print(
                f"{name:14s} {label:12s} {metrics.cache.states:6d} "
                f"{metrics.directory.states:4d} {metrics.cache.stalls:6d} {elapsed:7.3f}  "
                f"{exhaustive.summary:32s}  {random_result.summary}"
            )
            if not exhaustive.ok or not random_result.ok:
                raise SystemExit(f"verification failed for {name} ({label})")

    print("\nAll generated protocols verified successfully.")


if __name__ == "__main__":
    main()
