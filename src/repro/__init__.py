"""repro -- a reproduction of ProtoGen (ISCA 2018).

ProtoGen takes the *stable state protocol* (SSP) of a directory cache
coherence protocol -- the atomic, textbook description with only stable
states -- and automatically generates the complete concurrent protocol: the
cache-controller and directory-controller finite state machines with every
transient state needed when coherence transactions race.

Typical use::

    from repro import generate, GenerationConfig
    from repro import protocols
    from repro.system import System
    from repro.verification import verify

    ssp = protocols.load("MSI")
    generated = generate(ssp, GenerationConfig.nonstalling())
    print(generated.cache.num_states, "cache states")

    result = verify(System(generated, num_caches=2))
    assert result.ok

Package layout
--------------

``repro.dsl``
    The SSP specification layer (builders, validation, text parser).
``repro.core``
    The generator itself (preprocessing, State Sets, transient-state
    creation, concurrency accommodation, permission assignment).
``repro.protocols``
    Bundled SSPs (MSI, MESI, MOSI, MSI+Upgrade, unordered MSI, TSO-CC) and
    the hand-written primer baselines.
``repro.system`` / ``repro.verification``
    The execution substrate and the explicit-state model checker that stands
    in for Murphi.
``repro.backends`` / ``repro.analysis``
    Table / Murphi / dot outputs, metrics, and baseline comparison.
"""

from repro.core import ConcurrencyPolicy, GeneratedProtocol, GenerationConfig, generate
from repro.dsl import ProtocolSpec

__version__ = "1.0.0"

__all__ = [
    "ConcurrencyPolicy",
    "GeneratedProtocol",
    "GenerationConfig",
    "ProtocolSpec",
    "__version__",
    "generate",
]
