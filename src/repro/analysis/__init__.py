"""Analysis helpers: protocol metrics and generated-vs-baseline comparison."""

from repro.analysis.compare import ComparisonReport, compare_with_baseline
from repro.analysis.metrics import (
    ControllerMetrics,
    ProtocolMetrics,
    controller_metrics,
    protocol_metrics,
    protocol_transition_count,
)

__all__ = [
    "ComparisonReport",
    "ControllerMetrics",
    "ProtocolMetrics",
    "compare_with_baseline",
    "controller_metrics",
    "protocol_metrics",
    "protocol_transition_count",
]
