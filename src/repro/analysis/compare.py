"""Comparison of a generated controller against a hand-written baseline.

Used for the Table VI experiment: compare the generated non-stalling MSI
cache controller against the primer's controller and report

* states present in one but not the other (the paper: ProtoGen adds
  ``IM_AD_S``, ``IM_AD_I``, ``IM_AD_SI``, ``SM_AD_S``);
* states the generator merged that the baseline keeps separate (the paper:
  ``IM_A_S = SM_A_S`` and friends);
* (state, event) cells where the baseline stalls but the generated controller
  does not -- the "stalls less often" claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.fsm import AccessEvent, ControllerFsm, MessageEvent
from repro.dsl.types import AccessKind
from repro.protocols.primer import BaselineController, EVENTS


#: Mapping from the baseline's event-column names to generated-FSM stimuli.
_COLUMN_TO_EVENT = {
    "Load": AccessEvent(AccessKind.LOAD),
    "Store": AccessEvent(AccessKind.STORE),
    "Replacement": AccessEvent(AccessKind.REPLACEMENT),
    "Fwd_GetS": MessageEvent("Fwd_GetS"),
    "Fwd_GetM": MessageEvent("Fwd_GetM"),
    "Inv": MessageEvent("Inv"),
    "Put_Ack": MessageEvent("Put_Ack"),
    "Data_ack0": MessageEvent("Data"),
    "Data_acks": MessageEvent("Data"),
    "Inv_Ack": MessageEvent("Inv_Ack"),
    "Last_Inv_Ack": MessageEvent("Inv_Ack"),
}


@dataclass
class ComparisonReport:
    """Structural diff between a generated controller and a baseline."""

    generated_name: str
    baseline_name: str
    generated_states: set[str] = field(default_factory=set)
    baseline_states: set[str] = field(default_factory=set)
    extra_states: set[str] = field(default_factory=set)
    missing_states: set[str] = field(default_factory=set)
    merged_states: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: cells (state, column) stalled by the baseline but not by the generated FSM
    unstalled_cells: set[tuple[str, str]] = field(default_factory=set)
    #: cells stalled by the generated FSM but not by the baseline
    newly_stalled_cells: set[tuple[str, str]] = field(default_factory=set)

    @property
    def stalls_removed(self) -> int:
        return len(self.unstalled_cells)

    def summary_lines(self) -> list[str]:
        lines = [
            f"generated {self.generated_name}: {len(self.generated_states)} states",
            f"baseline  {self.baseline_name}: {len(self.baseline_states)} states",
            f"extra states in generated protocol: {sorted(self.extra_states)}",
            f"baseline states merged by the generator: "
            f"{ {k: list(v) for k, v in sorted(self.merged_states.items())} }",
            f"cells un-stalled relative to baseline: {sorted(self.unstalled_cells)}",
            f"cells newly stalled relative to baseline: {sorted(self.newly_stalled_cells)}",
        ]
        return lines


def _generated_names_with_aliases(fsm: ControllerFsm) -> dict[str, str]:
    """Map every generated name *and alias* to its canonical generated name."""
    names: dict[str, str] = {}
    for state in fsm.states():
        names[state.name] = state.name
        for alias in state.aliases:
            names[alias] = state.name
    return names


def _generated_cell_stalls(fsm: ControllerFsm, state: str, column: str) -> bool | None:
    """Whether the generated controller stalls in the cell; None if no entry."""
    event = _COLUMN_TO_EVENT.get(column)
    if event is None:
        return None
    candidates = fsm.candidates(state, event)
    if not candidates:
        return None
    return all(t.stall for t in candidates)


def compare_with_baseline(fsm: ControllerFsm, baseline: BaselineController) -> ComparisonReport:
    """Compare generated controller *fsm* against *baseline*."""
    alias_map = _generated_names_with_aliases(fsm)
    generated_states = {s.name for s in fsm.states()}
    baseline_states = set(baseline.states)

    report = ComparisonReport(
        generated_name=fsm.name,
        baseline_name=baseline.name,
        generated_states=generated_states,
        baseline_states=baseline_states,
    )

    # States the generator has that the baseline does not (matching by name or alias).
    for name in generated_states:
        state = fsm.state(name)
        known_names = {name, *state.aliases}
        if not (known_names & baseline_states):
            report.extra_states.add(name)

    # Baseline states that the generator covers only via a merge.
    for name in generated_states:
        state = fsm.state(name)
        merged = tuple(alias for alias in state.aliases if alias in baseline_states)
        if merged and name in baseline_states:
            report.merged_states[name] = merged

    # Baseline states with no counterpart at all.
    for name in baseline_states:
        if name not in alias_map:
            report.missing_states.add(name)

    # Stall-cell comparison over the baseline's grid.
    for state in baseline.states:
        generated_state = alias_map.get(state)
        if generated_state is None:
            continue
        for column in EVENTS:
            baseline_cell = baseline.cell(state, column)
            generated_stalls = _generated_cell_stalls(fsm, generated_state, column)
            if baseline_cell == "stall" and generated_stalls is False:
                report.unstalled_cells.add((state, column))
            if (
                baseline_cell is not None
                and baseline_cell != "stall"
                and generated_stalls is True
            ):
                report.newly_stalled_cells.add((state, column))
    return report
