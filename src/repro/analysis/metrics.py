"""Protocol metrics: state / transition / stall counts (paper Section VI-B).

The paper characterises the generated non-stalling protocols as "fairly
non-trivial with 18-20 states and 46-60 transitions".  Its transition count
refers to the *protocol* transitions (message-triggered behaviour plus the
access transitions that start or satisfy transactions), not the stall markers
or the purely administrative hit rows; :func:`protocol_transition_count`
reproduces that notion so the numbers are comparable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.fsm import AccessEvent, ControllerFsm, GeneratedProtocol


@dataclass(frozen=True)
class ControllerMetrics:
    name: str
    states: int
    stable_states: int
    transient_states: int
    transitions: int
    protocol_transitions: int
    stalls: int

    def as_dict(self) -> dict:
        return dict(self.__dict__)


def protocol_transition_count(fsm: ControllerFsm) -> int:
    """Transitions excluding stall markers, same-state access hits, and
    generated hardening absorptions (the paper's tables describe protocol
    behaviour under exactly-once delivery, with no fault tolerance)."""
    count = 0
    for transition in fsm.transitions():
        if transition.stall or transition.absorb:
            continue
        if (
            isinstance(transition.event, AccessEvent)
            and transition.next_state == transition.state
        ):
            # A hit that does not change state is not counted as a protocol
            # transition (it is the "hit" cell of the table).
            continue
        count += 1
    return count


def controller_metrics(fsm: ControllerFsm) -> ControllerMetrics:
    return ControllerMetrics(
        name=fsm.name,
        states=fsm.num_states,
        stable_states=len(fsm.stable_states()),
        transient_states=len(fsm.transient_states()),
        transitions=fsm.num_transitions,
        protocol_transitions=protocol_transition_count(fsm),
        stalls=fsm.num_stalls,
    )


@dataclass(frozen=True)
class ProtocolMetrics:
    protocol: str
    cache: ControllerMetrics
    directory: ControllerMetrics

    @property
    def total_states(self) -> int:
        return self.cache.states + self.directory.states

    @property
    def total_protocol_transitions(self) -> int:
        return self.cache.protocol_transitions + self.directory.protocol_transitions

    def as_dict(self) -> dict:
        return {
            "protocol": self.protocol,
            "cache": self.cache.as_dict(),
            "directory": self.directory.as_dict(),
            "total_states": self.total_states,
            "total_protocol_transitions": self.total_protocol_transitions,
        }


def protocol_metrics(generated: GeneratedProtocol) -> ProtocolMetrics:
    return ProtocolMetrics(
        protocol=generated.name,
        cache=controller_metrics(generated.cache),
        directory=controller_metrics(generated.directory),
    )
