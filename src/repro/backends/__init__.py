"""Output backends: controller tables, Murphi source, Graphviz dot."""

from repro.backends.dot import emit_dot
from repro.backends.murphi import emit_murphi
from repro.backends.table import render_summary, render_table

__all__ = ["emit_dot", "emit_murphi", "render_summary", "render_table"]
