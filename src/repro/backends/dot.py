"""Graphviz dot backend for visualising generated controllers."""

from __future__ import annotations

from repro.core.fsm import ControllerFsm


def emit_dot(fsm: ControllerFsm, *, include_stalls: bool = False) -> str:
    """Emit a Graphviz digraph of *fsm* (states as nodes, transitions as edges)."""
    lines = [f'digraph "{fsm.name}" {{', "  rankdir=LR;"]
    for state in fsm.states():
        shape = "doublecircle" if state.is_stable else "ellipse"
        label = state.name
        if state.aliases:
            label += "\\n(= " + ", ".join(state.aliases) + ")"
        lines.append(f'  "{state.name}" [shape={shape}, label="{label}"];')
    for transition in fsm.transitions():
        if transition.stall and not include_stalls:
            continue
        style = ' style=dashed color=gray label="stall: ' if transition.stall else ' label="'
        lines.append(
            f'  "{transition.state}" -> "{transition.next_state}"'
            f'[{style.strip()}{transition.event}"];'
        )
    lines.append("}")
    return "\n".join(lines)
