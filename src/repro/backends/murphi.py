"""Murphi backend: emit the generated protocol as Murphi model-checker source.

The paper verifies its generated protocols with the Murphi model checker; the
original ProtoGen implementation has a Murphi backend.  This module emits a
self-contained ``.m`` description of the generated protocol: constant and type
declarations, per-node state records, the network, and one rule per generated
transition.  The output follows the structure of the classic Murphi coherence
models (the ones distributed with the primer), so it can be fed to an external
``mu`` compiler when one is available; within this repository the *internal*
model checker (:mod:`repro.verification`) plays Murphi's role, and the tests
only check that the emitted source is well-formed and complete (every state,
message and transition appears).
"""

from __future__ import annotations

from repro.core.fsm import (
    AccessEvent,
    ControllerFsm,
    FsmTransition,
    GeneratedProtocol,
    MessageEvent,
)
from repro.dsl.types import (
    AccessKind,
    Action,
    AddOwnerToSharers,
    AddRequestorToSharers,
    ClearOwner,
    ClearSharers,
    CopyDataFromMessage,
    Dest,
    IncrementAcksReceived,
    PerformAccess,
    ResetAckCounters,
    SaveRequestor,
    Send,
    SetAcksExpectedFromMessage,
    SetOwnerToRequestor,
    RemoveRequestorFromSharers,
)


def _sanitize(name: str) -> str:
    return name.replace("-", "_").replace(" ", "_")


def _state_const(prefix: str, state: str) -> str:
    return f"{prefix}_{_sanitize(state)}"


def _emit_action(action: Action, *, cache_side: bool) -> list[str]:
    node = "cache[c]" if cache_side else "dir"
    if isinstance(action, Send):
        dest = {
            Dest.DIRECTORY: "Directory",
            Dest.REQUESTOR: "msg.requestor",
            Dest.OWNER: "dir.owner",
            Dest.SHARERS: "-- every sharer (expanded by SendToSharers)",
            Dest.SELF: "c",
        }[action.to]
        extra = []
        if action.with_data:
            extra.append("data")
        if action.with_ack_count:
            extra.append("ack_count")
        suffix = f" -- carries {', '.join(extra)}" if extra else ""
        if action.to is Dest.SHARERS:
            return [f"SendToSharers(Msg_{_sanitize(action.message)}, msg.requestor);{suffix}"]
        return [f"Send(Msg_{_sanitize(action.message)}, {dest}, {node}.data);{suffix}"]
    if isinstance(action, CopyDataFromMessage):
        return [f"{node}.data := msg.data;"]
    if isinstance(action, SetAcksExpectedFromMessage):
        return [f"{node}.acksExpected := msg.ackCount;"]
    if isinstance(action, IncrementAcksReceived):
        return [f"{node}.acksReceived := {node}.acksReceived + 1;"]
    if isinstance(action, ResetAckCounters):
        return [f"{node}.acksReceived := 0;", f"{node}.acksExpected := UNDEFINED;"]
    if isinstance(action, SaveRequestor):
        return [f"{node}.savedRequestor[{action.slot}] := msg.requestor;"]
    if isinstance(action, PerformAccess):
        return ["PerformPendingAccess(c);" if cache_side else "-- directory access"]
    if isinstance(action, SetOwnerToRequestor):
        return ["dir.owner := msg.requestor;"]
    if isinstance(action, ClearOwner):
        return ["undefine dir.owner;"]
    if isinstance(action, AddRequestorToSharers):
        return ["dir.sharers := union(dir.sharers, msg.requestor);"]
    if isinstance(action, AddOwnerToSharers):
        return ["dir.sharers := union(dir.sharers, dir.owner);"]
    if isinstance(action, RemoveRequestorFromSharers):
        return ["dir.sharers := remove(dir.sharers, msg.requestor);"]
    if isinstance(action, ClearSharers):
        return ["clear dir.sharers;"]
    return [f"-- {type(action).__name__}"]


def _emit_rules(fsm: ControllerFsm, *, cache_side: bool, prefix: str) -> list[str]:
    lines: list[str] = []
    for index, transition in enumerate(fsm.transitions()):
        event = transition.event
        if isinstance(event, AccessEvent):
            trigger = f"access = Access_{event.access.name}"
        else:
            guard = f" & {event.guard}" if event.guard else ""
            trigger = f"msg.mtype = Msg_{_sanitize(event.message)}{guard}"
        node = "cache[c]" if cache_side else "dir"
        rule_name = f"{prefix}_{_sanitize(transition.state)}_{index}"
        lines.append(f'rule "{rule_name}"')
        lines.append(
            f"  {node}.state = {_state_const(prefix, transition.state)} & {trigger}"
        )
        lines.append("==>")
        lines.append("begin")
        if transition.stall:
            lines.append("  -- stall: leave the message at the head of its queue")
            lines.append("  stall := true;")
        else:
            for action in transition.actions:
                for stmt in _emit_action(action, cache_side=cache_side):
                    lines.append(f"  {stmt}")
            lines.append(
                f"  {node}.state := {_state_const(prefix, transition.next_state)};"
            )
        lines.append("endrule;")
        lines.append("")
    return lines


def emit_murphi(protocol: GeneratedProtocol, *, num_caches: int = 3) -> str:
    """Emit the full Murphi source for *protocol*."""
    cache = protocol.cache
    directory = protocol.directory
    messages = sorted({m.name for m in protocol.messages})

    lines: list[str] = []
    lines.append(f"-- Murphi model for protocol {protocol.name}")
    lines.append(f"-- generated by repro (ProtoGen reproduction); config: {protocol.config}")
    lines.append("")
    lines.append("const")
    lines.append(f"  NumCaches: {num_caches};")
    lines.append("  NetMax: 8;")
    lines.append("")
    lines.append("type")
    lines.append("  CacheId: scalarset(NumCaches);")
    lines.append("  CacheState: enum {")
    lines.append(
        "    " + ",\n    ".join(_state_const("C", s) for s in cache.state_names())
    )
    lines.append("  };")
    lines.append("  DirState: enum {")
    lines.append(
        "    " + ",\n    ".join(_state_const("D", s) for s in directory.state_names())
    )
    lines.append("  };")
    lines.append("  MessageType: enum {")
    lines.append("    " + ",\n    ".join(f"Msg_{_sanitize(m)}" for m in messages))
    lines.append("  };")
    lines.append("  AccessType: enum { Access_LOAD, Access_STORE, Access_REPLACEMENT };")
    lines.append("")
    lines.append("  Message: record")
    lines.append("    mtype: MessageType;")
    lines.append("    src: CacheId;")
    lines.append("    requestor: CacheId;")
    lines.append("    data: Value;")
    lines.append("    ackCount: 0..NumCaches;")
    lines.append("  end;")
    lines.append("")
    lines.append("var")
    lines.append("  cache: array [CacheId] of record")
    lines.append("    state: CacheState;")
    lines.append("    data: Value;")
    lines.append("    acksExpected: 0..NumCaches;")
    lines.append("    acksReceived: 0..NumCaches;")
    lines.append("    savedRequestor: array [0..3] of CacheId;")
    lines.append("  end;")
    lines.append("  dir: record")
    lines.append("    state: DirState;")
    lines.append("    owner: CacheId;")
    lines.append("    sharers: multiset [NumCaches] of CacheId;")
    lines.append("    data: Value;")
    lines.append("  end;")
    lines.append("  net: array [Node] of multiset [NetMax] of Message;")
    lines.append("")
    lines.append("-- ======================= cache controller rules =======================")
    lines.extend(_emit_rules(cache, cache_side=True, prefix="C"))
    lines.append("-- ===================== directory controller rules =====================")
    lines.extend(_emit_rules(directory, cache_side=False, prefix="D"))
    lines.append("-- ============================ invariants ==============================")
    lines.append('invariant "SWMR"')
    lines.append("  forall c1: CacheId do forall c2: CacheId do")
    lines.append("    (c1 != c2 & CacheHasWritePermission(c1)) -> !CacheHasReadPermission(c2)")
    lines.append("  end end;")
    lines.append("")
    lines.append('invariant "DataValue"')
    lines.append("  forall c: CacheId do")
    lines.append("    CacheHasWritePermission(c) -> cache[c].data = LatestValue")
    lines.append("  end;")
    lines.append("")
    return "\n".join(lines)
