"""Render generated controllers as state/event tables (paper Table VI style).

The renderer produces plain-text (or GitHub markdown) tables with one row per
controller state and one column per stimulus, matching the layout used by the
paper and the primer so generated protocols can be inspected side by side
with the published tables.
"""

from __future__ import annotations

from repro.core.fsm import AccessEvent, ControllerFsm, FsmTransition, MessageEvent
from repro.dsl.types import AccessKind, describe_action


def _event_columns(fsm: ControllerFsm) -> list[str]:
    """Column order: accesses first, then message columns in first-use order."""
    columns: list[str] = []
    if any(isinstance(t.event, AccessEvent) for t in fsm.transitions()):
        columns.extend(["Load", "Store", "Replacement"])
    seen: list[str] = []
    for transition in fsm.transitions():
        if isinstance(transition.event, MessageEvent) and transition.event.message not in seen:
            seen.append(transition.event.message)
    columns.extend(seen)
    return columns


def _column_of(event) -> str:
    if isinstance(event, AccessEvent):
        return {
            AccessKind.LOAD: "Load",
            AccessKind.STORE: "Store",
            AccessKind.REPLACEMENT: "Replacement",
        }[event.access]
    return event.message


def _cell_text(transitions: list[FsmTransition], state_name: str) -> str:
    parts = []
    for transition in transitions:
        if transition.stall:
            parts.append("stall")
            continue
        actions = "; ".join(describe_action(a) for a in transition.actions) or "-"
        target = "" if transition.next_state == state_name else f" /{transition.next_state}"
        guard = f"[{transition.event.guard}] " if getattr(transition.event, "guard", None) else ""
        parts.append(f"{guard}{actions}{target}")
    return " || ".join(parts)


def render_table(fsm: ControllerFsm, *, markdown: bool = False) -> str:
    """Render *fsm* as a table; one row per state, one column per stimulus."""
    columns = _event_columns(fsm)
    rows: list[list[str]] = []
    for state in fsm.states():
        cells: dict[str, list[FsmTransition]] = {}
        for transition in fsm.transitions_from(state.name):
            cells.setdefault(_column_of(transition.event), []).append(transition)
        label = state.name
        if state.aliases:
            label += " = " + " = ".join(state.aliases)
        rows.append(
            [label] + [_cell_text(cells.get(column, []), state.name) for column in columns]
        )

    header = ["State"] + columns
    if markdown:
        lines = [
            "| " + " | ".join(header) + " |",
            "| " + " | ".join("---" for _ in header) + " |",
        ]
        lines += ["| " + " | ".join(cell or "" for cell in row) + " |" for row in rows]
        return "\n".join(lines)

    widths = [
        max(len(str(row[i])) for row in [header] + rows) for i in range(len(header))
    ]
    def fmt(row):
        return "  ".join(str(cell).ljust(width) for cell, width in zip(row, widths))

    lines = [fmt(header), fmt(["-" * w for w in widths])]
    lines += [fmt(row) for row in rows]
    return "\n".join(lines)


def render_summary(fsm: ControllerFsm) -> str:
    """One-paragraph summary: state count, transition count, stall count."""
    return (
        f"{fsm.name}: {fsm.num_states} states "
        f"({len(fsm.stable_states())} stable, {len(fsm.transient_states())} transient), "
        f"{fsm.num_transitions} transitions, {fsm.num_stalls} stalls"
    )
