"""The ProtoGen generator: from an atomic SSP to a concurrent directory protocol."""

from repro.core.config import ConcurrencyPolicy, DirectoryPolicy, GenerationConfig
from repro.core.fsm import (
    AccessEvent,
    ControllerFsm,
    FsmState,
    FsmTransition,
    GeneratedProtocol,
    MessageEvent,
    StateKind,
)
from repro.core.generator import generate
from repro.core.preprocess import PreprocessResult, forwarded_arrival_states, preprocess

__all__ = [
    "AccessEvent",
    "ConcurrencyPolicy",
    "ControllerFsm",
    "DirectoryPolicy",
    "FsmState",
    "FsmTransition",
    "GeneratedProtocol",
    "GenerationConfig",
    "MessageEvent",
    "PreprocessResult",
    "StateKind",
    "forwarded_arrival_states",
    "generate",
    "preprocess",
]
