"""Step 3: accommodating concurrency (paper Section V-D, Figures 1 and 2).

For every transient cache state and every forwarded request that can arrive
there, decide whether the forwarded request belongs to a transaction that was
serialized at the directory *before* (Case 1) or *after* (Case 2) the cache's
own transaction, and generate the corresponding behaviour:

* **Case 1 -- other transaction ordered earlier.**  The cache must respond
  immediately (stalling could deadlock) and logically restart its own
  transaction from the stable state the response leaves it in.  If the same
  access would issue the same request from that state, the cache simply moves
  to that transaction's first transient state; if the access needs a
  *different* request (the Upgrade example), the directory later reinterprets
  the stale request; if the access needs *no* transaction at all, the cache
  waits out its now-stale request in a ``II_A``-style state.

* **Case 2 -- other transaction ordered after.**  Depending on the
  configuration the cache stalls, or transitions immediately to a new
  transient state while deferring (some or all of) the responses until its
  own transaction completes.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.config import ConcurrencyPolicy, GenerationConfig
from repro.core.context import CacheGenContext, TransientDescriptor
from repro.core.fsm import FsmTransition, MessageEvent
from repro.core.transient import emit_wait_transitions
from repro.dsl.errors import GenerationError
from repro.dsl.ssp import Reaction
from repro.dsl.types import Action, PerformAccess, SaveRequestor, Send, Dest, is_data_send


def accommodate_concurrency(ctx: CacheGenContext) -> None:
    """Drain the worklist: for every transient state, emit wait transitions and
    handle every forwarded request that can arrive in it (to fixpoint)."""
    while ctx.worklist:
        name = ctx.worklist.popleft()
        descriptor = ctx.descriptors[name]
        emit_wait_transitions(ctx, name, descriptor)
        _handle_forwarded_requests(ctx, name, descriptor)


def _handle_forwarded_requests(
    ctx: CacheGenContext, name: str, descriptor: TransientDescriptor
) -> None:
    for message in ctx.spec.forwarded_messages():
        arrival_states = set(ctx.spec.cache_arrival_states(message))
        relevant = arrival_states & set(descriptor.membership)
        if not relevant:
            continue
        if ctx.fsm.has_transition(name, MessageEvent(message)):
            # Already handled (e.g. the forwarded request doubles as a trigger
            # of the own transaction in an unusual SSP).
            continue
        if (
            not descriptor.redirected
            and descriptor.start in relevant
            and descriptor.start not in descriptor.reachable_finals()
        ):
            _case1_other_ordered_earlier(ctx, name, descriptor, message, descriptor.start)
        else:
            arrival = _pick_case2_arrival_state(descriptor, relevant)
            _case2_other_ordered_after(ctx, name, descriptor, message, arrival)


def _pick_case2_arrival_state(descriptor: TransientDescriptor, relevant: set[str]) -> str:
    finals = descriptor.reachable_finals()
    for state in relevant:
        if state in finals:
            return state
    return sorted(relevant)[0]


def _single_reaction(ctx: CacheGenContext, state: str, message: str) -> Reaction:
    reactions = ctx.spec.cache.reactions_for(state, message)
    if not reactions:
        raise GenerationError(
            f"the SSP does not say how a cache in {state!r} handles {message!r}"
        )
    return reactions[0]


# ---------------------------------------------------------------------------
# Case 1
# ---------------------------------------------------------------------------


def _case1_other_ordered_earlier(
    ctx: CacheGenContext,
    name: str,
    descriptor: TransientDescriptor,
    message: str,
    arrival_state: str,
) -> None:
    reaction = _single_reaction(ctx, arrival_state, message)
    landing = reaction.next_state
    actions: list[Action] = list(reaction.actions)

    restart = ctx.spec.cache.transaction_for(landing, descriptor.access)
    if restart is not None and restart.stages:
        # Restart the own transaction from the landing state: move to that
        # transaction's first transient state.  No new request is issued; if
        # the landing state would have issued a different request, the
        # directory reinterprets the one already in flight (Section V-D1).
        if (
            restart.request is not None
            and descriptor.request is not None
            and restart.request.message != descriptor.request
        ):
            ctx.reinterpretations.add((descriptor.request, restart.request.message))
        target = ctx.ensure_state(ctx.descriptor_for_stage(restart, 0))
        ctx.fsm.add_transition(
            FsmTransition(
                state=name,
                event=MessageEvent(message, guard=reaction.guard),
                actions=tuple(actions),
                next_state=target,
            )
        )
        return

    # No restart transaction is needed (or it completes without waiting): the
    # access either already hits in the landing state or needs nothing (a
    # replacement of a block that is now invalid).  The original request is
    # still in flight, so wait it out in a stale-request state; the directory
    # will acknowledge it as stale (Section V-F).
    settled = restart.final_state if restart is not None else landing
    access_performed = descriptor.access_performed
    if not access_performed and ctx.spec.cache.state(settled).permission.allows(descriptor.access):
        actions.append(PerformAccess())
        access_performed = True

    stale = replace(
        descriptor,
        membership=frozenset({settled}),
        chain=(settled,),
        stale=True,
        access_performed=access_performed,
    )
    target = ctx.ensure_state(stale)
    ctx.fsm.add_transition(
        FsmTransition(
            state=name,
            event=MessageEvent(message, guard=reaction.guard),
            actions=tuple(actions),
            next_state=target,
        )
    )


# ---------------------------------------------------------------------------
# Case 2
# ---------------------------------------------------------------------------


def _case2_other_ordered_after(
    ctx: CacheGenContext,
    name: str,
    descriptor: TransientDescriptor,
    message: str,
    arrival_state: str,
) -> None:
    config = ctx.config
    reaction = _single_reaction(ctx, arrival_state, message)

    if config.policy is ConcurrencyPolicy.STALLING or (
        len(descriptor.chain) >= config.pending_transaction_limit
    ):
        ctx.fsm.add_transition(
            FsmTransition(
                state=name,
                event=MessageEvent(message, guard=reaction.guard),
                actions=(),
                next_state=name,
                stall=True,
            )
        )
        return

    immediate, deferred, save_slot = _partition_actions(
        config, reaction.actions, descriptor.slots_used
    )
    transition_actions: list[Action] = []
    slots_used = descriptor.slots_used
    if save_slot is not None:
        transition_actions.append(SaveRequestor(slot=save_slot))
        slots_used = save_slot + 1
    transition_actions.extend(immediate)

    redirected = replace(
        descriptor,
        membership=frozenset({reaction.next_state}),
        chain=descriptor.chain + (reaction.next_state,),
        deferred=descriptor.deferred + tuple(deferred),
        slots_used=slots_used,
    )
    target = ctx.ensure_state(redirected)
    ctx.fsm.add_transition(
        FsmTransition(
            state=name,
            event=MessageEvent(message, guard=reaction.guard),
            actions=tuple(transition_actions),
            next_state=target,
        )
    )


def _partition_actions(
    config: GenerationConfig, actions: tuple[Action, ...], slots_used: int
) -> tuple[list[Action], list[Action], int | None]:
    """Split reaction actions into (immediate, deferred, requestor slot).

    Data-carrying sends are always deferred: their contents depend on the own
    transaction completing (paper Section V-D2, "Immediate Transition and
    Responses").  Other sends are sent immediately under the
    NONSTALLING_IMMEDIATE policy and deferred under NONSTALLING_DEFERRED.
    Non-send bookkeeping is applied at completion time.
    """
    immediate: list[Action] = []
    deferred: list[Action] = []
    save_slot: int | None = None
    for action in actions:
        if isinstance(action, Send):
            must_defer = is_data_send(action) or (
                config.policy is ConcurrencyPolicy.NONSTALLING_DEFERRED
            )
            if must_defer:
                if action.to is Dest.REQUESTOR:
                    if save_slot is None:
                        save_slot = slots_used
                    action = replace(action, requestor_slot=save_slot)
                deferred.append(action)
            else:
                immediate.append(action)
        else:
            deferred.append(action)
    return immediate, deferred, save_slot
