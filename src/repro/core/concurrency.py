"""Step 3: accommodating concurrency (paper Section V-D, Figures 1 and 2).

For every transient cache state and every forwarded request that can arrive
there, decide whether the forwarded request belongs to a transaction that was
serialized at the directory *before* (Case 1) or *after* (Case 2) the cache's
own transaction, and generate the corresponding behaviour:

* **Case 1 -- other transaction ordered earlier.**  The cache must respond
  immediately (stalling could deadlock) and logically restart its own
  transaction from the stable state the response leaves it in.  If the same
  access would issue the same request from that state, the cache simply moves
  to that transaction's first transient state; if the access needs a
  *different* request (the Upgrade example), the directory later reinterprets
  the stale request; if the access needs *no* transaction at all, the cache
  waits out its now-stale request in a ``II_A``-style state.

* **Case 2 -- other transaction ordered after.**  Depending on the
  configuration the cache stalls, or transitions immediately to a new
  transient state while deferring (some or all of) the responses until its
  own transaction completes.

On an interconnect *without* point-to-point ordering one more situation
arises: a message of an **earlier**-ordered transaction (Case 1) can be
overtaken by messages of **later**-ordered ones (Case 2) and arrive only
after the cache has already been redirected.  The classic instance is a
repeated invalidation: a cache in ``SM_AD`` whose Case-2 redirect moved it
to ``IM_AD_I`` can still receive the ``Inv`` that was sent while its own
``GetM`` was unserialized.  Every Case-2 redirect therefore records which
messages the pre-redirect state would have routed through Case 1
(``TransientDescriptor.late_absorbs``); the redirected state -- and every
state its transaction advances through -- acknowledges such a late arrival
in place (the response never carries data, so it can always be sent
immediately; deferring it could deadlock the earlier transaction, which is
what makes this the unordered-network analogue of the Case-1 "respond
immediately" rule).
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.config import ConcurrencyPolicy
from repro.core.context import CacheGenContext, TransientDescriptor
from repro.core.fsm import FsmTransition, MessageEvent
from repro.core.transient import emit_wait_transitions
from repro.dsl.errors import GenerationError
from repro.dsl.ssp import Reaction
from repro.dsl.types import (
    Action,
    AddRequestorToSharers,
    Dest,
    PerformAccess,
    RemoveRequestorFromSharers,
    SaveRequestor,
    Send,
    SetOwnerToRequestor,
    is_data_send,
)


def accommodate_concurrency(ctx: CacheGenContext) -> None:
    """Drain the worklist: for every transient state, emit wait transitions and
    handle every forwarded request that can arrive in it (to fixpoint)."""
    while ctx.worklist:
        name = ctx.worklist.popleft()
        descriptor = ctx.descriptors[name]
        emit_wait_transitions(ctx, name, descriptor)
        _handle_forwarded_requests(ctx, name, descriptor)


def _handle_forwarded_requests(
    ctx: CacheGenContext, name: str, descriptor: TransientDescriptor
) -> None:
    for message in ctx.spec.forwarded_messages():
        arrival_states = set(ctx.spec.cache_arrival_states(message))
        if ctx.fsm.has_transition(name, MessageEvent(message)):
            # Already handled (e.g. the forwarded request doubles as a trigger
            # of the own transaction in an unusual SSP).
            continue
        if descriptor.late_absorb_for(message) is not None:
            # A message of an earlier-ordered transaction arriving late on an
            # unordered network: acknowledge it in place (see module docs).
            _absorb_late_arrival(ctx, name, descriptor, message)
            continue
        relevant = arrival_states & set(descriptor.membership)
        if not relevant:
            continue
        if (
            not descriptor.redirected
            and descriptor.start in relevant
            and descriptor.start not in descriptor.reachable_finals()
        ):
            _case1_other_ordered_earlier(ctx, name, descriptor, message, descriptor.start)
        else:
            arrival = _pick_case2_arrival_state(descriptor, relevant)
            _case2_other_ordered_after(ctx, name, descriptor, message, arrival)


def _pick_case2_arrival_state(descriptor: TransientDescriptor, relevant: set[str]) -> str:
    finals = descriptor.reachable_finals()
    for state in relevant:
        if state in finals:
            return state
    return sorted(relevant)[0]


def _single_reaction(ctx: CacheGenContext, state: str, message: str) -> Reaction:
    reactions = ctx.spec.cache.reactions_for(state, message)
    if not reactions:
        raise GenerationError(
            f"the SSP does not say how a cache in {state!r} handles {message!r}"
        )
    return reactions[0]


# ---------------------------------------------------------------------------
# Late arrivals of earlier-ordered messages (unordered networks)
# ---------------------------------------------------------------------------


def _case1_messages(
    ctx: CacheGenContext, descriptor: TransientDescriptor
) -> frozenset[tuple[str, str]]:
    """``(message, reacting_state)`` pairs *descriptor* routes through Case 1.

    Mirrors the dispatch of :func:`_handle_forwarded_requests`, including its
    already-handled guard: a forwarded request that doubles as a trigger of
    the own transaction's current stage is consumed by the transaction, never
    by Case 1.  (The dispatch expresses that guard as ``has_transition``,
    which is equivalent only at the message's own loop iteration; here the
    trigger set is consulted directly so the answer is independent of how
    much of the forwarded loop has already run.)  The remaining condition:
    the message can arrive in the transaction's start state and the start
    state is not one the transaction can already complete in.  These are
    exactly the messages that may still be in flight -- and, on an unordered
    network, arrive late -- once a Case-2 redirect proves the own transaction
    was serialized at the directory.
    """
    own_triggers = {t.message for t in descriptor.current_stage.triggers}
    pairs = set()
    for message in ctx.spec.forwarded_messages():
        if message in own_triggers:
            continue
        relevant = set(ctx.spec.cache_arrival_states(message)) & set(descriptor.membership)
        if (
            not descriptor.redirected
            and descriptor.start in relevant
            and descriptor.start not in descriptor.reachable_finals()
        ):
            pairs.add((message, descriptor.start))
    return frozenset(pairs)


def _absorb_late_arrival(
    ctx: CacheGenContext, name: str, descriptor: TransientDescriptor, message: str
) -> None:
    """Acknowledge a late earlier-ordered *message* and drop the dead copy.

    The cache already logically gave up the copy the message targets (its own
    transaction was serialized after the message's transaction), so the only
    obligation left is the protocol-level acknowledgment -- e.g. the
    ``Inv_Ack`` the invalidating requestor is counting on.  The response is
    sent immediately regardless of the concurrency policy: the earlier
    transaction cannot complete without it, and the own transaction's data
    response is (transitively) deferred behind that completion, so deferring
    the acknowledgment would deadlock.

    The target state re-bases the transaction on the reaction's landing state
    (``SM_AD_S`` absorbing the late ``Inv`` lands in ``IM_AD_S``): the
    original copy no longer contributes access permission, which is what
    keeps SWMR intact once the invalidating writer completes.
    """
    pair = descriptor.late_absorb_for(message)
    assert pair is not None
    _, reacting_state = pair
    reaction = _single_reaction(ctx, reacting_state, message)
    sends: list[Action] = []
    for action in reaction.actions:
        if not isinstance(action, Send) or is_data_send(action):
            raise GenerationError(
                f"cannot absorb late {message!r} in transient state {name!r}: "
                f"the {reacting_state!r} reaction requires {action!r}, which "
                "cannot be performed after the copy was given up; extend the "
                "SSP to resolve this race explicitly"
            )
        sends.append(action)
    landed = replace(
        descriptor,
        start=reaction.next_state,
        late_absorbs=descriptor.late_absorbs - {pair},
    )
    target = ctx.ensure_state(landed)
    ctx.fsm.add_transition(
        FsmTransition(
            state=name,
            event=MessageEvent(message, guard=reaction.guard),
            actions=tuple(sends),
            next_state=target,
        )
    )


# ---------------------------------------------------------------------------
# Case 1
# ---------------------------------------------------------------------------


def _case1_other_ordered_earlier(
    ctx: CacheGenContext,
    name: str,
    descriptor: TransientDescriptor,
    message: str,
    arrival_state: str,
) -> None:
    reaction = _single_reaction(ctx, arrival_state, message)
    landing = reaction.next_state
    actions: list[Action] = list(reaction.actions)

    restart = ctx.spec.cache.transaction_for(landing, descriptor.access)
    if restart is not None and restart.stages:
        # Restart the own transaction from the landing state: move to that
        # transaction's first transient state.  No new request is issued; if
        # the landing state would have issued a different request, the
        # directory reinterprets the one already in flight (Section V-D1).
        if (
            restart.request is not None
            and descriptor.request is not None
            and restart.request.message != descriptor.request
        ):
            ctx.reinterpretations.add((descriptor.request, restart.request.message))
        target = ctx.ensure_state(ctx.descriptor_for_stage(restart, 0))
        ctx.fsm.add_transition(
            FsmTransition(
                state=name,
                event=MessageEvent(message, guard=reaction.guard),
                actions=tuple(actions),
                next_state=target,
            )
        )
        return

    # No restart transaction is needed (or it completes without waiting): the
    # access either already hits in the landing state or needs nothing (a
    # replacement of a block that is now invalid).  The original request is
    # still in flight, so wait it out in a stale-request state; the directory
    # will acknowledge it as stale (Section V-F).
    settled = restart.final_state if restart is not None else landing
    access_performed = descriptor.access_performed
    if not access_performed and ctx.spec.cache.state(settled).permission.allows(descriptor.access):
        actions.append(PerformAccess())
        access_performed = True

    stale = replace(
        descriptor,
        membership=frozenset({settled}),
        chain=(settled,),
        stale=True,
        access_performed=access_performed,
    )
    target = ctx.ensure_state(stale)
    ctx.fsm.add_transition(
        FsmTransition(
            state=name,
            event=MessageEvent(message, guard=reaction.guard),
            actions=tuple(actions),
            next_state=target,
        )
    )


# ---------------------------------------------------------------------------
# Case 2
# ---------------------------------------------------------------------------


def _case2_other_ordered_after(
    ctx: CacheGenContext,
    name: str,
    descriptor: TransientDescriptor,
    message: str,
    arrival_state: str,
) -> None:
    config = ctx.config
    reaction = _single_reaction(ctx, arrival_state, message)

    if config.policy is ConcurrencyPolicy.STALLING or (
        len(descriptor.chain) >= config.pending_transaction_limit
    ):
        ctx.fsm.add_transition(
            FsmTransition(
                state=name,
                event=MessageEvent(message, guard=reaction.guard),
                actions=(),
                next_state=name,
                stall=True,
            )
        )
        return

    immediate, deferred, save_slot = _partition_actions(
        ctx, reaction.actions, descriptor.slots_used
    )
    transition_actions: list[Action] = []
    slots_used = descriptor.slots_used
    if save_slot is not None:
        transition_actions.append(SaveRequestor(slot=save_slot))
        slots_used = save_slot + 1
    transition_actions.extend(immediate)

    late_absorbs = descriptor.late_absorbs
    if not ctx.spec.ordered_network:
        # The redirect proves the own transaction was serialized: every
        # Case-1 message of the pre-redirect state may now arrive late.
        late_absorbs = late_absorbs | _case1_messages(ctx, descriptor)
    redirected = replace(
        descriptor,
        membership=frozenset({reaction.next_state}),
        chain=descriptor.chain + (reaction.next_state,),
        deferred=descriptor.deferred + tuple(deferred),
        slots_used=slots_used,
        late_absorbs=late_absorbs,
    )
    target = ctx.ensure_state(redirected)
    ctx.fsm.add_transition(
        FsmTransition(
            state=name,
            event=MessageEvent(message, guard=reaction.guard),
            actions=tuple(transition_actions),
            next_state=target,
        )
    )


def _directory_reads_requestor(ctx: CacheGenContext, message: str) -> bool:
    """Does any directory handler for *message* observe its requestor field?

    A deferred cache response executes when the *own* transaction completes,
    at which point the triggering message's requestor is whoever answered
    the own request -- not the cache the redirecting forward was sent for.
    If the directory merely banks the data (MSI's ``Fwd_GetS`` writeback),
    the stale requestor field is inert and the generated messages can stay
    bit-identical to the seed's; but when any directory reaction or
    transaction trigger for *message* answers / records the requestor (the
    MOSI owner-recall completes with ``Data -> requestor`` plus
    ``SetOwnerToRequestor``), the original requestor must be preserved
    through a saved slot or the directory responds to the wrong cache.
    """

    def reads(actions) -> bool:
        for action in actions:
            if isinstance(
                action,
                (SetOwnerToRequestor, AddRequestorToSharers, RemoveRequestorFromSharers),
            ):
                return True
            if isinstance(action, Send) and (
                action.to is Dest.REQUESTOR
                or action.to is Dest.SHARERS  # targets exclude the requestor
                or action.with_ack_count  # counts sharers minus the requestor
            ):
                return True
        return False

    directory = ctx.spec.directory
    for reaction in directory.reactions:
        if reaction.message == message and reads(reaction.actions):
            return True
    for transaction in directory.transactions:
        if transaction.initiator == message and reads(transaction.issue_actions):
            # Directory transactions are initiated by an incoming message;
            # its requestor flows into the issue actions.
            return True
        for stage in transaction.stages:
            for trigger in stage.triggers:
                if trigger.message != message:
                    continue
                if reads(trigger.actions):
                    return True
                if trigger.completes and reads(transaction.completion_actions):
                    return True
    return False


def _partition_actions(
    ctx: CacheGenContext, actions: tuple[Action, ...], slots_used: int
) -> tuple[list[Action], list[Action], int | None]:
    """Split reaction actions into (immediate, deferred, requestor slot).

    Data-carrying sends are always deferred: their contents depend on the own
    transaction completing (paper Section V-D2, "Immediate Transition and
    Responses").  Other sends are sent immediately under the
    NONSTALLING_IMMEDIATE policy and deferred under NONSTALLING_DEFERRED.
    Non-send bookkeeping is applied at completion time.

    Deferred sends lose the redirecting message by the time they execute, so
    any requestor information they need is banked in a saved slot:
    responses *to* the requestor address it through ``requestor_slot``, and
    responses to the directory whose requestor field the directory actually
    reads (:func:`_directory_reads_requestor`) carry it through
    ``requestor_from_slot``.
    """
    config = ctx.config
    immediate: list[Action] = []
    deferred: list[Action] = []
    save_slot: int | None = None
    for action in actions:
        if isinstance(action, Send):
            must_defer = is_data_send(action) or (
                config.policy is ConcurrencyPolicy.NONSTALLING_DEFERRED
            )
            if must_defer:
                if action.to is Dest.REQUESTOR:
                    if save_slot is None:
                        save_slot = slots_used
                    action = replace(action, requestor_slot=save_slot)
                elif action.to is Dest.DIRECTORY and _directory_reads_requestor(
                    ctx, action.message
                ):
                    if save_slot is None:
                        save_slot = slots_used
                    action = replace(action, requestor_from_slot=save_slot)
                deferred.append(action)
            else:
                immediate.append(action)
        else:
            deferred.append(action)
    return immediate, deferred, save_slot
