"""Generation configuration (paper Section IV-A, "Configuration parameters")."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ConcurrencyPolicy(enum.Enum):
    """How the generated cache controller handles later-ordered forwarded
    requests that arrive while the cache is in a transient state
    (paper Section V-D2)."""

    #: Stall the forwarded request until the own transaction completes.
    STALLING = "stalling"
    #: Transition immediately to a new transient state but defer *all*
    #: responses until the own transaction completes (preserves SWMR in
    #: physical time).
    NONSTALLING_DEFERRED = "nonstalling-deferred"
    #: Transition immediately and respond immediately whenever the response
    #: does not depend on data the cache has not yet received (preserves
    #: per-location sequential consistency).
    NONSTALLING_IMMEDIATE = "nonstalling-immediate"

    @property
    def is_stalling(self) -> bool:
        return self is ConcurrencyPolicy.STALLING


class DirectoryPolicy(enum.Enum):
    """How the generated directory handles requests arriving in a transient
    directory state.  The directory always orders such requests after the
    in-flight one (it is the serialization point), so the only question is
    whether it stalls them or absorbs them."""

    STALLING = "stalling"


@dataclass(frozen=True)
class GenerationConfig:
    """All knobs of the generator.

    Attributes
    ----------
    policy:
        Cache-controller concurrency policy (stalling / non-stalling).
    directory_policy:
        Directory-controller policy for requests hitting transient directory
        states.
    allow_transient_accesses:
        If True, loads and stores whose permission is granted by *both* the
        initial and final stable state of a transaction may be performed while
        the block is in a transient state (paper Step 4).  This can break
        SWMR in physical time but preserves per-location SC.
    pending_transaction_limit:
        Maximum number of later-ordered transactions a cache absorbs while its
        own transaction is outstanding before it falls back to stalling
        (the paper's limit ``L``).
    merge_equivalent_states:
        Merge structurally identical transient states created while
        accommodating concurrency (paper Section VI-B observed merges such as
        ``IM_A_S = SM_A_S``).
    generate_stale_put_handling:
        Add the directory's "acknowledge any stale Put" transitions
        (paper Section V-F).
    harden:
        Add the fault-tolerance hardening pass
        (:mod:`repro.core.harden`): absorption reactions that consume
        re-delivered responses/forwards idempotently instead of raising
        "cannot handle message" (re-acknowledging ack-only forwards such
        as a late ``Inv``, reporting missed data-serving forwards back to
        the directory), stale-Put data capture with captured-state
        splitting, directory-side miss recovery, and absorption of
        duplicated ownership requests from the current owner.  ``False``
        reproduces the un-hardened protocols, which fail under message
        duplication and deadlock under reordering.
    """

    policy: ConcurrencyPolicy = ConcurrencyPolicy.NONSTALLING_IMMEDIATE
    directory_policy: DirectoryPolicy = DirectoryPolicy.STALLING
    allow_transient_accesses: bool = True
    pending_transaction_limit: int = 3
    merge_equivalent_states: bool = True
    generate_stale_put_handling: bool = True
    harden: bool = True

    @classmethod
    def stalling(cls, **overrides) -> "GenerationConfig":
        """Convenience constructor for the stalling configuration."""
        defaults = dict(policy=ConcurrencyPolicy.STALLING)
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def nonstalling(cls, *, immediate: bool = True, **overrides) -> "GenerationConfig":
        """Convenience constructor for the non-stalling configurations."""
        policy = (
            ConcurrencyPolicy.NONSTALLING_IMMEDIATE
            if immediate
            else ConcurrencyPolicy.NONSTALLING_DEFERRED
        )
        defaults = dict(policy=policy)
        defaults.update(overrides)
        return cls(**defaults)

    @property
    def is_stalling(self) -> bool:
        return self.policy.is_stalling
