"""Shared mutable context for cache-controller generation.

The generator passes a single :class:`CacheGenContext` between Steps 1-4.
It owns the output FSM, the Step-1 State Sets, the registry of transient
state descriptors, and the worklist of descriptors whose concurrency handling
(Step 3) is still pending.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace

from repro.core.config import GenerationConfig
from repro.core.fsm import ControllerFsm, FsmState, StateKind
from repro.core.naming import redirected_name, stale_request_name, transient_name
from repro.core.state_sets import StateSets
from repro.dsl.ssp import AwaitStage, ProtocolSpec, Transaction
from repro.dsl.types import AccessKind, Action, Permission


@dataclass(frozen=True)
class TransientDescriptor:
    """Structural description of one generated cache transient state.

    A descriptor captures everything the generator needs to know about a
    transient state: the transaction it belongs to (start / final stable
    states, outstanding request, remaining waiting stages), the State Sets it
    belongs to, the chain of later-ordered targets it has observed (Case 2),
    and the responses it has deferred.
    """

    start: str
    access: AccessKind
    request: str | None
    final: str
    all_stages: tuple[AwaitStage, ...]
    stage_index: int
    membership: frozenset[str]
    chain: tuple[str, ...] = ()
    deferred: tuple[Action, ...] = ()
    slots_used: int = 0
    access_performed: bool = False
    completion_actions: tuple[Action, ...] = ()
    stale: bool = False
    #: ``(message, reacting_state)`` pairs for forwarded messages that belong
    #: to transactions ordered *before* the own transaction and may still
    #: arrive late (unordered networks only): once a Case-2 redirect proves
    #: the own transaction was serialized, any message the pre-redirect state
    #: would have routed through Case 1 can still be in flight.  The reacting
    #: state is the stable state whose SSP reaction supplies the required
    #: acknowledgment (Section V-D, extended to interconnects without
    #: point-to-point ordering).
    late_absorbs: frozenset[tuple[str, str]] = frozenset()

    def late_absorb_for(self, message: str) -> tuple[str, str] | None:
        for pair in self.late_absorbs:
            if pair[0] == message:
                return pair
        return None

    # -- derived --------------------------------------------------------------
    @property
    def current_stage(self) -> AwaitStage:
        return self.all_stages[self.stage_index]

    @property
    def remaining_stages(self) -> tuple[AwaitStage, ...]:
        return self.all_stages[self.stage_index:]

    @property
    def redirected(self) -> bool:
        return bool(self.chain) or self.stale

    @property
    def logical_target(self) -> str:
        """The stable state the cache will settle in when its transaction completes."""
        if self.chain:
            return self.chain[-1]
        return self.final

    def reachable_finals(self) -> frozenset[str]:
        """Stable states in which the own transaction can complete from here."""
        if self.chain:
            return frozenset({self.chain[-1]})
        finals = set()
        for stage in self.remaining_stages:
            for trigger in stage.triggers:
                if trigger.completes:
                    finals.add(trigger.final_state or self.final)
        return frozenset(finals or {self.final})

    @property
    def base_name(self) -> str:
        if self.stale:
            return stale_request_name(self.logical_target, self.current_stage.name)
        return transient_name(self.start, self.final, self.current_stage.name)

    @property
    def name(self) -> str:
        if self.stale:
            return self.base_name
        return redirected_name(self.base_name, self.chain)

    @property
    def structural_key(self) -> tuple:
        """Key used to merge structurally identical redirected states.

        The outstanding request is deliberately *not* part of the key: once a
        transaction is in flight, the cache's behaviour depends only on the
        responses it still awaits (the remaining stages), not on which request
        message started it -- this is what lets, e.g., the stale-wait states of
        a PutS and a PutM collapse into a single ``II_A``.
        """
        return (
            self.membership,
            self.access,
            self.remaining_stages,
            self.logical_target,
            self.deferred,
            self.completion_actions,
            self.access_performed,
            self.stale,
            # States that must absorb different late (earlier-ordered)
            # messages behave differently and must not merge: SM_AD_I still
            # owes an Inv_Ack for its original S copy, IM_AD_I does not.
            self.late_absorbs,
        )


class CacheGenContext:
    """Mutable state threaded through the cache-generation steps."""

    def __init__(self, spec: ProtocolSpec, config: GenerationConfig):
        self.spec = spec
        self.config = config
        self.fsm = ControllerFsm(
            name=f"{spec.name}-cache",
            kind=spec.cache.kind,
            initial_state=spec.cache.initial_state,
        )
        self.state_sets = StateSets(stable_states=spec.cache.state_names())
        #: FSM state name -> descriptor
        self.descriptors: dict[str, TransientDescriptor] = {}
        #: structural key -> canonical FSM state name (redirected / stale states only)
        self._merge_index: dict[tuple, str] = {}
        #: (derived name, structural key) -> registered FSM state name
        self._name_index: dict[tuple, str] = {}
        #: descriptors waiting for wait-transition emission and Step-3 handling
        self.worklist: deque[str] = deque()
        #: (original request, reinterpreted request) pairs discovered during Case 1
        self.reinterpretations: set[tuple[str, str]] = set()
        #: arrival classes (stable states reachable from each other by silent
        #: transactions); forwarded requests arriving anywhere within a class
        #: are exempt from renaming and treated uniformly
        self.silent_classes: list[frozenset[str]] = compute_silent_classes(spec)

    # -- stable states ---------------------------------------------------------
    def add_stable_states(self) -> None:
        for state in self.spec.cache.states.values():
            self.fsm.add_state(
                FsmState(
                    name=state.name,
                    kind=StateKind.STABLE,
                    permission=state.permission,
                    state_sets=frozenset({state.name}),
                )
            )

    # -- transient states ------------------------------------------------------
    def ensure_state(self, descriptor: TransientDescriptor) -> str:
        """Register *descriptor* (or find its merge target) and return the FSM name."""
        permission = self._transient_permission(descriptor)
        merge_eligible = descriptor.redirected and self.config.merge_equivalent_states
        # The access permission is part of the merge key: two structurally
        # identical states are kept apart if one of them can still serve hits
        # (e.g. the paper's SM_AD_S allows load hits while IM_AD_S does not).
        merge_key = descriptor.structural_key + (permission,)
        # Exact duplicate (same derived name and same structure): reuse it.
        registered = self._name_index.get((descriptor.name, merge_key))
        if registered is not None:
            return registered
        if merge_eligible:
            existing = self._merge_index.get(merge_key)
            if existing is not None:
                self._record_alias(existing, descriptor.name)
                return existing

        name = descriptor.name
        if self.fsm.has_state(name):
            # Two structurally different transient states derived the same
            # name (e.g. two different forwarded requests both redirect the
            # transaction to the same stable target).  Disambiguate with a
            # numeric suffix; the provenance stays available in the metadata.
            suffix = 2
            while self.fsm.has_state(f"{name}_v{suffix}"):
                suffix += 1
            name = f"{name}_v{suffix}"

        state = FsmState(
            name=name,
            kind=StateKind.TRANSIENT,
            permission=permission,
            state_sets=descriptor.membership,
            meta={
                "start": descriptor.start,
                "final": descriptor.final,
                "stage": descriptor.current_stage.name,
                "chain": descriptor.chain,
                "stale": descriptor.stale,
                "deferred": len(descriptor.deferred),
            },
        )
        self.fsm.add_state(state)
        self.state_sets.add(name, descriptor.membership)
        self.descriptors[name] = descriptor
        self._name_index[(descriptor.name, merge_key)] = name
        if merge_eligible:
            self._merge_index[merge_key] = name
        self.worklist.append(name)
        return name

    def _record_alias(self, canonical: str, alias: str) -> None:
        if alias == canonical:
            return
        state = self.fsm.state(canonical)
        if alias not in state.aliases:
            state.aliases = state.aliases + (alias,)

    def _transient_permission(self, descriptor: TransientDescriptor) -> Permission:
        """Paper Step 4: a transient state's permission is the meet of its
        transaction's initial and final stable-state permissions."""
        if not self.config.allow_transient_accesses:
            return Permission.NONE
        start_perm = self.spec.cache.state(descriptor.start).permission
        target_perm = self.spec.cache.state(descriptor.logical_target).permission
        return min(start_perm, target_perm)

    # -- helpers ----------------------------------------------------------------
    def descriptor_for_stage(
        self, transaction: Transaction, stage_index: int
    ) -> TransientDescriptor:
        """Build the Step-2 descriptor for *transaction*'s *stage_index*-th stage."""
        access = transaction.initiator
        if not isinstance(access, AccessKind):
            raise TypeError("cache transactions must be initiated by a core access")
        descriptor = TransientDescriptor(
            start=transaction.start_state,
            access=access,
            request=transaction.request.message if transaction.request else None,
            final=transaction.final_state,
            all_stages=transaction.stages,
            stage_index=stage_index,
            membership=frozenset(),
            completion_actions=transaction.completion_actions,
        )
        membership = descriptor.reachable_finals()
        if stage_index == 0:
            membership = membership | {transaction.start_state}
        return replace(descriptor, membership=frozenset(membership))

    def advanced(self, descriptor: TransientDescriptor, stage_name: str) -> TransientDescriptor:
        """Descriptor after the own transaction advances to *stage_name*."""
        index = next(
            i for i, stage in enumerate(descriptor.all_stages) if stage.name == stage_name
        )
        if index == descriptor.stage_index:
            # A trigger that merely absorbs a message (e.g. an early Inv_Ack)
            # stays in the same state.
            return descriptor
        advanced = replace(descriptor, stage_index=index)
        if descriptor.chain or descriptor.stale:
            return advanced
        return replace(advanced, membership=advanced.reachable_finals())

    def arrival_class(self, stable_state: str) -> frozenset[str]:
        for cls in self.silent_classes:
            if stable_state in cls:
                return cls
        return frozenset({stable_state})


def compute_silent_classes(spec: ProtocolSpec) -> list[frozenset[str]]:
    """Group stable cache states connected by silent transactions.

    A silent transaction (no request message, no waiting -- e.g. MESI's E->M
    upgrade on a store) cannot race with anything, so forwarded requests that
    can arrive in any state of the group carry the same ordering information.
    The preprocessing renaming treats such a group as a single arrival state.
    """
    parent: dict[str, str] = {name: name for name in spec.cache.state_names()}

    def find(x: str) -> str:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    for transaction in spec.cache.transactions:
        if transaction.is_silent:
            union(transaction.start_state, transaction.final_state)

    groups: dict[str, set[str]] = {}
    for name in spec.cache.state_names():
        groups.setdefault(find(name), set()).add(name)
    return [frozenset(group) for group in groups.values()]
