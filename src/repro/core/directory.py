"""Directory-controller generation (paper Section V-F).

Generating the directory is simpler than generating the cache controller: the
directory is the serialization point, so any request that arrives while a
directory entry is in a transient state is by definition ordered *after* the
in-flight transaction -- the generated directory simply stalls it (the
configuration hook :class:`repro.core.config.DirectoryPolicy` exists so a
non-stalling directory could be added without touching callers).

Two things are unique to the directory:

* **Stale Put requests.**  With a non-stalling cache protocol a Put request
  can "lose" its race to the directory and arrive in a state that the atomic
  SSP says is impossible (e.g. a PutS arriving while the directory is in M).
  The issuer's epoch was already ended by an earlier transaction, so the
  correct behaviour for MOESIF-style protocols is simply to acknowledge the
  Put so the issuer can finish its stale transaction.
* **Request reinterpretation.**  When the same access issues different
  requests from different stable states (the Upgrade example of Section
  V-D1), a request can arrive at the directory from a cache whose state has
  changed since it issued it.  The directory reinterprets the request as the
  one the access would have issued from the state the directory sees.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.config import GenerationConfig
from repro.core.fsm import ControllerFsm, FsmState, FsmTransition, MessageEvent, StateKind
from repro.core.naming import directory_transient_name
from repro.core.transient import implicit_trigger_actions
from repro.dsl.errors import GenerationError
from repro.dsl.ssp import ProtocolSpec, Transaction
from repro.dsl.types import (
    AccessKind,
    Action,
    Dest,
    MessageClass,
    Permission,
    Send,
)


def generate_directory(spec: ProtocolSpec, config: GenerationConfig) -> ControllerFsm:
    fsm = ControllerFsm(
        name=f"{spec.name}-directory",
        kind=spec.directory.kind,
        initial_state=spec.directory.initial_state,
    )
    _add_stable_states(spec, fsm)
    _emit_transactions(spec, fsm)
    _emit_reactions(spec, fsm)
    _reinterpret_requests(spec, fsm)
    if config.generate_stale_put_handling:
        _generate_stale_put_handling(spec, fsm)
    _stall_requests_in_transient_states(spec, fsm)
    return fsm


# ---------------------------------------------------------------------------


def _add_stable_states(spec: ProtocolSpec, fsm: ControllerFsm) -> None:
    for state in spec.directory.states.values():
        fsm.add_state(
            FsmState(
                name=state.name,
                kind=StateKind.STABLE,
                permission=Permission.NONE,
                state_sets=frozenset({state.name}),
                meta={"owner_view": state.owner_view},
            )
        )


def _emit_transactions(spec: ProtocolSpec, fsm: ControllerFsm) -> None:
    for transaction in spec.directory.transactions:
        initiator = transaction.initiator
        if isinstance(initiator, AccessKind):
            raise GenerationError("directory transactions must be initiated by requests")
        if not transaction.stages:
            actions = transaction.issue_actions + transaction.completion_actions
            fsm.add_transition(
                FsmTransition(
                    state=transaction.start_state,
                    event=MessageEvent(initiator),
                    actions=actions,
                    next_state=transaction.final_state,
                )
            )
            continue
        _emit_waiting_transaction(spec, fsm, transaction)


def _emit_waiting_transaction(
    spec: ProtocolSpec, fsm: ControllerFsm, transaction: Transaction
) -> None:
    stage_names = {
        stage.name: directory_transient_name(
            transaction.start_state, transaction.final_state, stage.name
        )
        for stage in transaction.stages
    }
    for stage in transaction.stages:
        name = stage_names[stage.name]
        if not fsm.has_state(name):
            fsm.add_state(
                FsmState(
                    name=name,
                    kind=StateKind.TRANSIENT,
                    permission=Permission.NONE,
                    state_sets=frozenset({transaction.start_state, transaction.final_state}),
                    meta={
                        "start": transaction.start_state,
                        "final": transaction.final_state,
                        "stage": stage.name,
                    },
                )
            )

    first = stage_names[transaction.stages[0].name]
    fsm.add_transition(
        FsmTransition(
            state=transaction.start_state,
            event=MessageEvent(str(transaction.initiator)),
            actions=transaction.issue_actions,
            next_state=first,
        )
    )
    for stage in transaction.stages:
        name = stage_names[stage.name]
        for trigger in stage.triggers:
            actions: list[Action] = implicit_trigger_actions(trigger) + list(trigger.actions)
            if trigger.next_stage is not None:
                next_state = stage_names[trigger.next_stage]
            else:
                next_state = trigger.final_state or transaction.final_state
                actions.extend(transaction.completion_actions)
            fsm.add_transition(
                FsmTransition(
                    state=name,
                    event=MessageEvent(trigger.message, guard=trigger.condition),
                    actions=tuple(actions),
                    next_state=next_state,
                )
            )


def _emit_reactions(spec: ProtocolSpec, fsm: ControllerFsm) -> None:
    for reaction in spec.directory.reactions:
        fsm.add_transition(
            FsmTransition(
                state=reaction.state,
                event=MessageEvent(reaction.message, guard=reaction.guard),
                actions=reaction.actions,
                next_state=reaction.next_state,
            )
        )


# ---------------------------------------------------------------------------
# Request reinterpretation (the Upgrade situation)
# ---------------------------------------------------------------------------


def _requests_by_access(spec: ProtocolSpec) -> dict[AccessKind, set[str]]:
    by_access: dict[AccessKind, set[str]] = {}
    for transaction in spec.cache.transactions:
        if isinstance(transaction.initiator, AccessKind) and transaction.request is not None:
            by_access.setdefault(transaction.initiator, set()).add(transaction.request.message)
    return by_access


def _reinterpret_requests(spec: ProtocolSpec, fsm: ControllerFsm) -> None:
    by_access = _requests_by_access(spec)
    put_requests = _put_requests(spec)
    for access, requests in by_access.items():
        if len(requests) < 2:
            continue
        for request in sorted(requests):
            alternatives = requests - {request}
            is_put = request in put_requests
            for state in list(fsm.state_names()):
                if not fsm.state(state).is_stable:
                    continue
                if fsm.candidates(state, MessageEvent(request)):
                    continue
                if is_put:
                    _reinterpret_put(spec, fsm, state, request, alternatives)
                    continue
                handled = [
                    alt for alt in sorted(alternatives)
                    if fsm.candidates(state, MessageEvent(alt))
                ]
                if len(handled) != 1:
                    continue
                for transition in fsm.candidates(state, MessageEvent(handled[0])):
                    fsm.add_transition(
                        replace(
                            transition,
                            event=MessageEvent(request, guard=transition.event.guard),
                        )
                    )


def _reinterpret_put(
    spec: ProtocolSpec,
    fsm: ControllerFsm,
    state: str,
    request: str,
    alternatives: set[str],
) -> None:
    """Reinterpret a Put from the *current owner* as the downgrade the owner's
    actual state would have issued.

    Example (MOSI): the owner in M is downgraded to O by a forwarded GetS
    while its PutM is in flight.  The directory, now in O, receives a PutM
    from its current owner; the correct handling is the one specified for
    PutO -- write back the data, acknowledge, and surrender ownership.  Puts
    from non-owners are covered by the stale-Put handling instead.
    """
    carries_data = spec.messages[request].carries_data
    for alternative in sorted(alternatives):
        if spec.messages[alternative].carries_data != carries_data:
            continue
        owner_guarded = [
            t for t in fsm.candidates(state, MessageEvent(alternative))
            if t.event.guard == "from_owner"
        ]
        for transition in owner_guarded:
            fsm.add_transition(
                replace(transition, event=MessageEvent(request, guard="from_owner"))
            )
        if owner_guarded:
            return


# ---------------------------------------------------------------------------
# Stale Put handling
# ---------------------------------------------------------------------------


def _put_requests(spec: ProtocolSpec) -> set[str]:
    """Requests issued by replacement transactions ("Put"-style downgrades)."""
    puts: set[str] = set()
    for transaction in spec.cache.transactions:
        if transaction.initiator is AccessKind.REPLACEMENT and transaction.request is not None:
            puts.add(transaction.request.message)
    return puts


def _put_ack_template(spec: ProtocolSpec, put_request: str) -> Send | None:
    """Find the acknowledgment the SSP directory sends for *put_request*."""
    def sends_of(actions: tuple[Action, ...]):
        for action in actions:
            if isinstance(action, Send) and action.to is Dest.REQUESTOR and not action.with_data:
                if spec.messages[action.message].message_class is MessageClass.RESPONSE:
                    yield action

    for reaction in spec.directory.reactions:
        if reaction.message == put_request:
            for send in sends_of(reaction.actions):
                return Send(message=send.message, to=Dest.REQUESTOR)
    for transaction in spec.directory.transactions:
        if transaction.initiator == put_request:
            for send in sends_of(transaction.issue_actions + transaction.completion_actions):
                return Send(message=send.message, to=Dest.REQUESTOR)
    return None


def _generate_stale_put_handling(spec: ProtocolSpec, fsm: ControllerFsm) -> None:
    # A stale Put is acknowledged in *every* state -- including transient
    # directory states -- so the issuer can finish its stale transaction.
    # We also drop the issuer from the sharer list (a no-op when it is not a
    # sharer); this keeps the directory's sharer list from accumulating caches
    # that have already given up the block, which would otherwise cause
    # spurious Invalidations to caches in I.
    from repro.dsl.types import RemoveRequestorFromSharers

    for put_request in sorted(_put_requests(spec)):
        ack = _put_ack_template(spec, put_request)
        if ack is None:
            continue
        stale_actions = (ack, RemoveRequestorFromSharers())
        for state in fsm.states():
            existing = fsm.candidates(state.name, MessageEvent(put_request))
            if not existing:
                fsm.add_transition(
                    FsmTransition(
                        state=state.name,
                        event=MessageEvent(put_request),
                        actions=stale_actions,
                        next_state=state.name,
                    )
                )
                continue
            guards = {t.event.guard for t in existing}
            if guards == {"from_owner"}:
                fsm.add_transition(
                    FsmTransition(
                        state=state.name,
                        event=MessageEvent(put_request, guard="not_from_owner"),
                        actions=stale_actions,
                        next_state=state.name,
                    )
                )


# ---------------------------------------------------------------------------
# Stalling in transient directory states
# ---------------------------------------------------------------------------


def _stall_requests_in_transient_states(spec: ProtocolSpec, fsm: ControllerFsm) -> None:
    request_names = [m.name for m in spec.messages.requests]
    for state in fsm.transient_states():
        for request in request_names:
            if fsm.candidates(state.name, MessageEvent(request)):
                continue
            fsm.add_transition(
                FsmTransition(
                    state=state.name,
                    event=MessageEvent(request),
                    actions=(),
                    next_state=state.name,
                    stall=True,
                )
            )
