"""Generated finite-state-machine representation.

The generator's output is one :class:`ControllerFsm` per controller (cache
and directory).  The FSM is a flat table: for every state and every event
(core access or incoming message, possibly guarded) it gives the actions to
perform and the next state -- exactly the information in the paper's
Table VI.  The same structure is interpreted directly by the execution
substrate in :mod:`repro.system` and rendered by the backends.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator

from repro.dsl.errors import GenerationError
from repro.dsl.types import AccessKind, Action, ControllerKind, Permission


class StateKind(enum.Enum):
    STABLE = "stable"
    TRANSIENT = "transient"


# ---------------------------------------------------------------------------
# Events
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Event:
    """Base event class (marker)."""


@dataclass(frozen=True)
class AccessEvent(Event):
    """A core access (load / store / replacement) presented to the cache."""

    access: AccessKind

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return str(self.access)


@dataclass(frozen=True)
class MessageEvent(Event):
    """An incoming coherence message, with an optional guard.

    Guard values are the trigger conditions from the SSP layer
    (``ack_count_zero``, ``acks_complete``, ...) plus the sender guards used
    by the directory (``from_owner``, ``last_sharer``, ...).
    """

    message: str
    guard: str | None = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.guard:
            return f"{self.message}[{self.guard}]"
        return self.message


def event_key(event: Event) -> tuple:
    """Key used to group transitions that compete for the same stimulus."""
    if isinstance(event, AccessEvent):
        return ("access", event.access)
    if isinstance(event, MessageEvent):
        return ("message", event.message)
    raise GenerationError(f"unknown event type {event!r}")


# ---------------------------------------------------------------------------
# States and transitions
# ---------------------------------------------------------------------------


@dataclass
class FsmState:
    """One state of a generated controller.

    ``state_sets`` is the set of *stable* state names whose State Set this
    state belongs to (paper Step 1); for a stable state it is the singleton
    of its own name.  ``aliases`` records alternative names for states merged
    by the generator (e.g. ``IM_A_S`` / ``SM_A_S``).
    """

    name: str
    kind: StateKind
    permission: Permission = Permission.NONE
    state_sets: frozenset[str] = frozenset()
    aliases: tuple[str, ...] = ()
    # Free-form provenance used by analysis / table rendering.
    meta: dict = field(default_factory=dict)

    @property
    def is_stable(self) -> bool:
        return self.kind is StateKind.STABLE


@dataclass(frozen=True)
class FsmTransition:
    """One row-cell of the controller table."""

    state: str
    event: Event
    actions: tuple[Action, ...]
    next_state: str
    stall: bool = False

    def with_actions(self, actions: Iterable[Action]) -> "FsmTransition":
        return replace(self, actions=tuple(actions))


class ControllerFsm:
    """A complete generated controller."""

    def __init__(self, name: str, kind: ControllerKind, initial_state: str):
        self.name = name
        self.kind = kind
        self.initial_state = initial_state
        self._states: dict[str, FsmState] = {}
        self._transitions: list[FsmTransition] = []
        self._index: dict[tuple, list[FsmTransition]] = {}

    # -- states ---------------------------------------------------------------
    def add_state(self, state: FsmState) -> FsmState:
        if state.name in self._states:
            raise GenerationError(f"duplicate FSM state {state.name!r}")
        self._states[state.name] = state
        return state

    def has_state(self, name: str) -> bool:
        return name in self._states

    def state(self, name: str) -> FsmState:
        try:
            return self._states[name]
        except KeyError:
            raise GenerationError(f"unknown FSM state {name!r}") from None

    def states(self) -> list[FsmState]:
        return list(self._states.values())

    def state_names(self) -> list[str]:
        return list(self._states)

    def stable_states(self) -> list[FsmState]:
        return [s for s in self._states.values() if s.is_stable]

    def transient_states(self) -> list[FsmState]:
        return [s for s in self._states.values() if not s.is_stable]

    def resolve_state(self, name: str) -> str:
        """Resolve *name*, accepting aliases of merged states."""
        if name in self._states:
            return name
        for state in self._states.values():
            if name in state.aliases:
                return state.name
        raise GenerationError(f"unknown FSM state or alias {name!r}")

    # -- transitions ----------------------------------------------------------
    def add_transition(self, transition: FsmTransition) -> FsmTransition:
        if transition.state not in self._states:
            raise GenerationError(
                f"transition from unknown state {transition.state!r}"
            )
        if not transition.stall and transition.next_state not in self._states:
            raise GenerationError(
                f"transition from {transition.state!r} to unknown state "
                f"{transition.next_state!r}"
            )
        key = (transition.state, event_key(transition.event))
        existing = self._index.setdefault(key, [])
        for other in existing:
            if other.event == transition.event:
                raise GenerationError(
                    f"duplicate transition for {transition.event} in state "
                    f"{transition.state!r}"
                )
        existing.append(transition)
        self._transitions.append(transition)
        return transition

    def has_transition(self, state: str, event: Event) -> bool:
        key = (state, event_key(event))
        return any(t.event == event for t in self._index.get(key, []))

    def transitions(self) -> list[FsmTransition]:
        return list(self._transitions)

    def transitions_from(self, state: str) -> list[FsmTransition]:
        return [t for t in self._transitions if t.state == state]

    def candidates(self, state: str, event: Event) -> list[FsmTransition]:
        """All transitions in *state* that compete for *event*'s stimulus.

        For a :class:`MessageEvent` the returned list contains every guarded
        variant for the same message; the caller (the execution substrate)
        evaluates the guards against the concrete message and controller
        state.
        """
        key = (state, event_key(event))
        return list(self._index.get(key, []))

    def events_handled_in(self, state: str) -> set[Event]:
        return {t.event for t in self.transitions_from(state)}

    def messages_handled_in(self, state: str) -> set[str]:
        return {
            t.event.message
            for t in self.transitions_from(state)
            if isinstance(t.event, MessageEvent)
        }

    # -- metrics --------------------------------------------------------------
    @property
    def num_states(self) -> int:
        return len(self._states)

    @property
    def num_transitions(self) -> int:
        return len(self._transitions)

    @property
    def num_stalls(self) -> int:
        return sum(1 for t in self._transitions if t.stall)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ControllerFsm {self.name} ({self.kind.value}): "
            f"{self.num_states} states, {self.num_transitions} transitions>"
        )


@dataclass
class GeneratedProtocol:
    """The full output of the generator for one input SSP."""

    name: str
    cache: ControllerFsm
    directory: ControllerFsm
    messages: "object"  # MessageCatalog; typed loosely to avoid an import cycle
    config: "object"    # GenerationConfig
    source_spec: "object"  # the (preprocessed) ProtocolSpec
    renamings: dict[str, list[str]] = field(default_factory=dict)

    def controller(self, kind: ControllerKind) -> ControllerFsm:
        return self.cache if kind is ControllerKind.CACHE else self.directory

    def summary(self) -> dict:
        return {
            "protocol": self.name,
            "cache_states": self.cache.num_states,
            "cache_transitions": self.cache.num_transitions,
            "cache_stalls": self.cache.num_stalls,
            "directory_states": self.directory.num_states,
            "directory_transitions": self.directory.num_transitions,
            "directory_stalls": self.directory.num_stalls,
            "total_states": self.cache.num_states + self.directory.num_states,
            "total_transitions": self.cache.num_transitions + self.directory.num_transitions,
        }
