"""Generated finite-state-machine representation.

The generator's output is one :class:`ControllerFsm` per controller (cache
and directory).  The FSM is a flat table: for every state and every event
(core access or incoming message, possibly guarded) it gives the actions to
perform and the next state -- exactly the information in the paper's
Table VI.  The same structure is interpreted directly by the execution
substrate in :mod:`repro.system` and rendered by the backends.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator

from repro.dsl.errors import GenerationError
from repro.dsl.types import (
    AccessKind,
    Action,
    AddOwnerToSharers,
    AddRequestorToSharers,
    ClearOwner,
    ClearSharers,
    ControllerKind,
    CopyDataFromMessage,
    Dest,
    IncrementAcksReceived,
    InvalidateData,
    Permission,
    PerformAccess,
    RemoveRequestorFromSharers,
    ResetAckCounters,
    SaveRequestor,
    Send,
    SetAcksExpectedFromMessage,
    SetOwnerToRequestor,
    WriteDataToMemory,
)


class StateKind(enum.Enum):
    STABLE = "stable"
    TRANSIENT = "transient"


# ---------------------------------------------------------------------------
# Events
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Event:
    """Base event class (marker)."""


@dataclass(frozen=True)
class AccessEvent(Event):
    """A core access (load / store / replacement) presented to the cache."""

    access: AccessKind

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return str(self.access)


@dataclass(frozen=True)
class MessageEvent(Event):
    """An incoming coherence message, with an optional guard.

    Guard values are the trigger conditions from the SSP layer
    (``ack_count_zero``, ``acks_complete``, ...) plus the sender guards used
    by the directory (``from_owner``, ``last_sharer``, ...).
    """

    message: str
    guard: str | None = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.guard:
            return f"{self.message}[{self.guard}]"
        return self.message


def event_key(event: Event) -> tuple:
    """Key used to group transitions that compete for the same stimulus."""
    if isinstance(event, AccessEvent):
        return ("access", event.access)
    if isinstance(event, MessageEvent):
        return ("message", event.message)
    raise GenerationError(f"unknown event type {event!r}")


# ---------------------------------------------------------------------------
# States and transitions
# ---------------------------------------------------------------------------


@dataclass
class FsmState:
    """One state of a generated controller.

    ``state_sets`` is the set of *stable* state names whose State Set this
    state belongs to (paper Step 1); for a stable state it is the singleton
    of its own name.  ``aliases`` records alternative names for states merged
    by the generator (e.g. ``IM_A_S`` / ``SM_A_S``).
    """

    name: str
    kind: StateKind
    permission: Permission = Permission.NONE
    state_sets: frozenset[str] = frozenset()
    aliases: tuple[str, ...] = ()
    # Free-form provenance used by analysis / table rendering.
    meta: dict = field(default_factory=dict)

    @property
    def is_stable(self) -> bool:
        return self.kind is StateKind.STABLE


@dataclass(frozen=True)
class FsmTransition:
    """One row-cell of the controller table.

    ``absorb`` marks transitions added by the hardening pass
    (:mod:`repro.core.harden`): idempotent consumption of a re-delivered
    message.  It does not change execution semantics -- absorption is just a
    (possibly re-acknowledging) self-loop -- but lets renderers and tests
    distinguish generated fault tolerance from SSP-specified behaviour.
    """

    state: str
    event: Event
    actions: tuple[Action, ...]
    next_state: str
    stall: bool = False
    absorb: bool = False

    def with_actions(self, actions: Iterable[Action]) -> "FsmTransition":
        return replace(self, actions=tuple(actions))


class ControllerFsm:
    """A complete generated controller."""

    def __init__(self, name: str, kind: ControllerKind, initial_state: str):
        self.name = name
        self.kind = kind
        self.initial_state = initial_state
        self._states: dict[str, FsmState] = {}
        self._transitions: list[FsmTransition] = []
        self._index: dict[tuple, list[FsmTransition]] = {}

    # -- states ---------------------------------------------------------------
    def add_state(self, state: FsmState) -> FsmState:
        if state.name in self._states:
            raise GenerationError(f"duplicate FSM state {state.name!r}")
        self._states[state.name] = state
        return state

    def has_state(self, name: str) -> bool:
        return name in self._states

    def state(self, name: str) -> FsmState:
        try:
            return self._states[name]
        except KeyError:
            raise GenerationError(f"unknown FSM state {name!r}") from None

    def states(self) -> list[FsmState]:
        return list(self._states.values())

    def state_names(self) -> list[str]:
        return list(self._states)

    def stable_states(self) -> list[FsmState]:
        return [s for s in self._states.values() if s.is_stable]

    def transient_states(self) -> list[FsmState]:
        return [s for s in self._states.values() if not s.is_stable]

    def resolve_state(self, name: str) -> str:
        """Resolve *name*, accepting aliases of merged states."""
        if name in self._states:
            return name
        for state in self._states.values():
            if name in state.aliases:
                return state.name
        raise GenerationError(f"unknown FSM state or alias {name!r}")

    # -- transitions ----------------------------------------------------------
    def add_transition(self, transition: FsmTransition) -> FsmTransition:
        if transition.state not in self._states:
            raise GenerationError(
                f"transition from unknown state {transition.state!r}"
            )
        if not transition.stall and transition.next_state not in self._states:
            raise GenerationError(
                f"transition from {transition.state!r} to unknown state "
                f"{transition.next_state!r}"
            )
        key = (transition.state, event_key(transition.event))
        existing = self._index.setdefault(key, [])
        for other in existing:
            if other.event == transition.event:
                raise GenerationError(
                    f"duplicate transition for {transition.event} in state "
                    f"{transition.state!r}"
                )
        existing.append(transition)
        self._transitions.append(transition)
        return transition

    def replace_transition(self, old: FsmTransition, new: FsmTransition) -> FsmTransition:
        """Swap *old* for *new* in place (used by the hardening pass to
        rewrite a generated transition's actions).  Both must share the same
        (state, event) slot."""
        if (old.state, event_key(old.event)) != (new.state, event_key(new.event)):
            raise GenerationError(
                "replace_transition requires matching (state, event) slots"
            )
        self._transitions[self._transitions.index(old)] = new
        bucket = self._index[(old.state, event_key(old.event))]
        bucket[bucket.index(old)] = new
        return new

    def has_transition(self, state: str, event: Event) -> bool:
        key = (state, event_key(event))
        return any(t.event == event for t in self._index.get(key, []))

    def transitions(self) -> list[FsmTransition]:
        return list(self._transitions)

    def transitions_from(self, state: str) -> list[FsmTransition]:
        return [t for t in self._transitions if t.state == state]

    def candidates(self, state: str, event: Event) -> list[FsmTransition]:
        """All transitions in *state* that compete for *event*'s stimulus.

        For a :class:`MessageEvent` the returned list contains every guarded
        variant for the same message; the caller (the execution substrate)
        evaluates the guards against the concrete message and controller
        state.
        """
        key = (state, event_key(event))
        return list(self._index.get(key, []))

    def events_handled_in(self, state: str) -> set[Event]:
        return {t.event for t in self.transitions_from(state)}

    def messages_handled_in(self, state: str) -> set[str]:
        return {
            t.event.message
            for t in self.transitions_from(state)
            if isinstance(t.event, MessageEvent)
        }

    # -- metrics --------------------------------------------------------------
    @property
    def num_states(self) -> int:
        return len(self._states)

    @property
    def num_transitions(self) -> int:
        return len(self._transitions)

    @property
    def num_stalls(self) -> int:
        return sum(1 for t in self._transitions if t.stall)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ControllerFsm {self.name} ({self.kind.value}): "
            f"{self.num_states} states, {self.num_transitions} transitions>"
        )


@dataclass
class GeneratedProtocol:
    """The full output of the generator for one input SSP."""

    name: str
    cache: ControllerFsm
    directory: ControllerFsm
    messages: "object"  # MessageCatalog; typed loosely to avoid an import cycle
    config: "object"    # GenerationConfig
    source_spec: "object"  # the (preprocessed) ProtocolSpec
    renamings: dict[str, list[str]] = field(default_factory=dict)

    def controller(self, kind: ControllerKind) -> ControllerFsm:
        return self.cache if kind is ControllerKind.CACHE else self.directory

    def compiled(self) -> "CompiledSpec":
        """The integer-indexed table form of this protocol.

        Compiled fresh on every call -- test mutants edit controller tables
        in place, so a cached spec could go stale; the consumers that care
        (:class:`repro.system.kernel.TransitionKernel` via
        :meth:`repro.system.System.kernel`) cache at the system level, where
        the codec tables are snapshotted at the same time.  Raises
        :class:`CompilationUnsupported` when the protocol uses an action or
        guard the table form cannot express; callers treat that as
        "interpret the object FSM instead".
        """
        return compile_spec(self)

    def summary(self) -> dict:
        return {
            "protocol": self.name,
            "cache_states": self.cache.num_states,
            "cache_transitions": self.cache.num_transitions,
            "cache_stalls": self.cache.num_stalls,
            "directory_states": self.directory.num_states,
            "directory_transitions": self.directory.num_transitions,
            "directory_stalls": self.directory.num_stalls,
            "total_states": self.cache.num_states + self.directory.num_states,
            "total_transitions": self.cache.num_transitions + self.directory.num_transitions,
        }


# ---------------------------------------------------------------------------
# Compiled (table-form) spec
# ---------------------------------------------------------------------------
#
# The execution substrate interprets `ControllerFsm` objects: string-keyed
# state lookups, dataclass events, isinstance chains over action objects.
# That is the right representation for generation and for rendering, but the
# model checker executes millions of transitions per search, where every
# string hash and every `isinstance` shows up.  `compile_spec` lowers a
# generated protocol into flat integer-indexed tables -- the same lowering
# Murphi performs when it compiles a model to C -- which the encoded-state
# kernel (`repro.system.kernel`) interprets directly over packed states.
#
# Index conventions (shared with `repro.system.codec.StateCodec`): FSM states
# and message types are indexed through their *sorted* name lists, access
# kinds through `AccessKind` sorted by value.  The object executor
# (`repro.system.executor`) consumes the same guard vocabulary below, so the
# two backends cannot drift on what a guard means.

#: Guard codes (message-event trigger conditions).  The object executor and
#: the compiled kernel both dispatch on these; an unknown guard string fails
#: compilation here and raises at execution time there.
GUARD_CODES: dict[str, int] = {
    "ack_count_zero": 1,
    "ack_count_nonzero": 2,
    "acks_complete": 3,
    "acks_incomplete": 4,
    "from_owner": 5,
    "not_from_owner": 6,
    "last_sharer": 7,
    "not_last_sharer": 8,
    "from_sharer": 9,
    "not_from_sharer": 10,
    # Requestor-relative guards (hardening pass): unlike from_owner, which
    # tests the *sender* of the message, these test the message's carried
    # requestor identity against the directory's owner field.
    "owner_is_requestor": 11,
    "owner_not_requestor": 12,
}

# Action opcodes (cache controller).
OP_SEND = 1
OP_COPY_DATA = 2
OP_INVALIDATE_DATA = 3
OP_SET_ACKS_FROM_MSG = 4
OP_INC_ACKS = 5
OP_RESET_ACKS = 6
OP_SAVE_REQUESTOR = 7
OP_PERFORM_ACCESS = 8
# Action opcodes (directory controller).
OP_DIR_SEND = 9
OP_WRITE_MEMORY = 10
OP_SET_OWNER_REQ = 11
OP_CLEAR_OWNER = 12
OP_ADD_REQ_SHARER = 13
OP_ADD_OWNER_SHARER = 14
OP_RM_REQ_SHARER = 15
OP_CLEAR_SHARERS = 16

# Send destination codes (cache sends).
DEST_DIRECTORY = 0
DEST_REQUESTOR = 1
DEST_SELF = 2
DEST_SAVED_SLOT = 3
# Send destination codes (directory sends; REQUESTOR shared).
DEST_OWNER = 2
DEST_SHARERS = 3


class CompilationUnsupported(GenerationError):
    """The protocol uses a construct the table form cannot express."""


@dataclass(frozen=True)
class CompiledTransition:
    """One lowered `FsmTransition`: guard code, opcode list, next-state index."""

    guard: int          # 0 = unguarded, else a GUARD_CODES value
    next_state: int     # index into the controller's sorted state-name list
    ops: tuple[tuple, ...]
    stall: bool
    has_perform: bool   # any PerformAccess op (clears pending_access after)
    source: FsmTransition  # the object-form transition this was lowered from


@dataclass(frozen=True)
class CompiledController:
    """Integer-indexed dispatch tables for one controller FSM."""

    state_names: tuple[str, ...]           # sorted; index = state id
    initial_state: int
    stable: tuple[bool, ...]               # per state id
    permission: tuple[int, ...]            # per state id (Permission int value)
    #: per state id: tuple over access-kind index of CompiledTransition | None
    on_access: tuple[tuple, ...]
    #: per state id: dict message-type index -> tuple of candidate
    #: CompiledTransitions (same candidate order as `ControllerFsm.candidates`)
    on_message: tuple[dict, ...]


@dataclass(frozen=True)
class CompiledSpec:
    """Table form of a whole generated protocol."""

    cache: CompiledController
    directory: CompiledController
    mtype_names: tuple[str, ...]           # sorted; index = message-type id
    access_kinds: tuple[AccessKind, ...]   # sorted by value; index = access id
    #: per message-type id: the virtual network its sends travel on
    #: (0 for requests, 1 for forwards/responses -- the system model's tagging)
    mtype_vnet: tuple[int, ...]


# -- lane-op descriptors --------------------------------------------------------
#
# Symbolic lane fields a compiled transition may read or write, expressed in
# layout-independent terms (the codec/kernel map them to absolute lane
# offsets).  The batch-vectorized kernel uses these descriptors to *prove*
# that a transition's effect is confined to its own controller block plus the
# shared version lane -- the soundness condition for reusing one computed
# block delta across every frontier row that shares the (message, block)
# key.  A transition whose opcode list strays outside this catalog is
# reported rather than silently mis-batched.

#: Cache-block fields (relative to the cache block) plus the shared lanes.
FIELD_STATE = "state"
FIELD_ISSUED = "issued"
FIELD_DATA = "data"
FIELD_ACKS_EXPECTED = "acks_expected"
FIELD_ACKS_RECEIVED = "acks_received"
FIELD_SAVED = "saved"              # saved-requestor slots (arg = slot index)
FIELD_PENDING = "pending"
FIELD_LAST_OBSERVED = "last_observed"
FIELD_VERSION = "version"          # the shared latest_version lane
#: Directory-block fields.
FIELD_DIR_STATE = "dir_state"
FIELD_OWNER = "owner"
FIELD_SHARERS = "sharers"
FIELD_MEMORY = "memory"
#: Pseudo-field: the transition appends message records to the network.
FIELD_SENDS = "sends"


@dataclass(frozen=True)
class TransitionLaneOps:
    """Lane-level read/write footprint of one :class:`CompiledTransition`.

    ``reads``/``writes`` are frozensets of the ``FIELD_*`` names above;
    ``sends`` counts the maximum message records the transition can append
    (``-1`` for a sharer fan-out, whose width depends on the directory
    state); ``may_abort`` marks transitions with a data/requestor
    precondition that can route to the object-executor slow path.
    """

    reads: frozenset
    writes: frozenset
    sends: int
    may_abort: bool


#: Per-opcode (reads, writes, sends, may_abort) contributions, cache side.
_CACHE_OP_FOOTPRINT = {
    OP_COPY_DATA: ((), (FIELD_DATA,), 0, True),
    OP_INVALIDATE_DATA: ((), (FIELD_DATA,), 0, False),
    OP_SET_ACKS_FROM_MSG: ((), (FIELD_ACKS_EXPECTED,), 0, False),
    OP_INC_ACKS: ((FIELD_ACKS_RECEIVED,), (FIELD_ACKS_RECEIVED,), 0, False),
    OP_RESET_ACKS: ((), (FIELD_ACKS_EXPECTED, FIELD_ACKS_RECEIVED), 0, False),
    OP_SAVE_REQUESTOR: ((), (FIELD_SAVED,), 0, False),
    OP_PERFORM_ACCESS: (
        (FIELD_DATA, FIELD_LAST_OBSERVED, FIELD_VERSION),
        (FIELD_DATA, FIELD_LAST_OBSERVED, FIELD_VERSION),
        0,
        True,
    ),
}

#: Directory-side opcode footprints (sends handled separately).
_DIR_OP_FOOTPRINT = {
    OP_WRITE_MEMORY: ((), (FIELD_MEMORY,), 0, True),
    OP_SET_OWNER_REQ: ((), (FIELD_OWNER,), 0, False),
    OP_CLEAR_OWNER: ((), (FIELD_OWNER,), 0, False),
    OP_ADD_REQ_SHARER: ((FIELD_SHARERS,), (FIELD_SHARERS,), 0, True),
    OP_ADD_OWNER_SHARER: ((FIELD_OWNER, FIELD_SHARERS), (FIELD_SHARERS,), 0, False),
    OP_RM_REQ_SHARER: ((FIELD_SHARERS,), (FIELD_SHARERS,), 0, False),
    OP_CLEAR_SHARERS: ((), (FIELD_SHARERS,), 0, False),
}


def transition_lane_ops(ct: CompiledTransition, *, is_cache: bool) -> TransitionLaneOps:
    """The :class:`TransitionLaneOps` descriptor for *ct*.

    Derived from the opcode tuples alone; raises
    :class:`CompilationUnsupported` for an opcode outside the known catalog
    (so a future opcode cannot be silently treated as block-confined).
    """
    reads: set = set()
    writes: set = {FIELD_STATE if is_cache else FIELD_DIR_STATE}
    sends = 0
    may_abort = False
    for op in ct.ops:
        code = op[0]
        if is_cache and code == OP_SEND:
            _, _mt, _vnet, dest, _arg, from_slot, with_data = op
            if dest == DEST_SAVED_SLOT or from_slot is not None:
                reads.add(FIELD_SAVED)
                may_abort = True
            if dest == DEST_REQUESTOR:
                may_abort = True
            if with_data:
                reads.add(FIELD_DATA)
            sends += 1
            continue
        if not is_cache and code == OP_DIR_SEND:
            _, _mt, _vnet, dest, with_data, with_ack = op
            if with_data:
                reads.add(FIELD_MEMORY)
            if with_ack or dest == DEST_SHARERS:
                reads.add(FIELD_SHARERS)
            if dest == DEST_OWNER:
                reads.add(FIELD_OWNER)
                may_abort = True
            if dest == DEST_REQUESTOR:
                may_abort = True
            sends = -1 if (sends == -1 or dest == DEST_SHARERS) else sends + 1
            continue
        footprint = (_CACHE_OP_FOOTPRINT if is_cache else _DIR_OP_FOOTPRINT).get(code)
        if footprint is None:
            raise CompilationUnsupported(
                f"opcode {code} has no lane-op descriptor "
                f"({'cache' if is_cache else 'directory'} transition)"
            )
        op_reads, op_writes, op_sends, op_abort = footprint
        reads.update(op_reads)
        writes.update(op_writes)
        sends += op_sends
        may_abort = may_abort or op_abort
    if is_cache and ct.has_perform:
        writes.add(FIELD_PENDING)
    if sends:
        writes.add(FIELD_SENDS)
    return TransitionLaneOps(
        reads=frozenset(reads),
        writes=frozenset(writes),
        sends=sends,
        may_abort=may_abort,
    )


def _compile_actions(
    transition: FsmTransition,
    *,
    is_cache: bool,
    mtype_index: dict[str, int],
    mtype_vnet: tuple[int, ...],
) -> tuple[tuple, ...]:
    ops: list[tuple] = []
    for action in transition.actions:
        if isinstance(action, Send):
            try:
                mt = mtype_index[action.message]
            except KeyError:
                raise CompilationUnsupported(
                    f"send of unknown message type {action.message!r}"
                ) from None
            vnet = mtype_vnet[mt]
            if is_cache:
                if action.requestor_slot is not None:
                    dest, arg = DEST_SAVED_SLOT, action.requestor_slot
                elif action.to is Dest.DIRECTORY:
                    dest, arg = DEST_DIRECTORY, 0
                elif action.to is Dest.REQUESTOR:
                    dest, arg = DEST_REQUESTOR, 0
                elif action.to is Dest.SELF:
                    dest, arg = DEST_SELF, 0
                else:
                    raise CompilationUnsupported(
                        f"cache send destination {action.to!r}"
                    )
                ops.append((OP_SEND, mt, vnet, dest, arg,
                            action.requestor_from_slot, action.with_data))
            else:
                if action.to is Dest.REQUESTOR:
                    dest = DEST_REQUESTOR
                elif action.to is Dest.OWNER:
                    dest = DEST_OWNER
                elif action.to is Dest.SHARERS:
                    dest = DEST_SHARERS
                else:
                    raise CompilationUnsupported(
                        f"directory send destination {action.to!r}"
                    )
                ops.append((OP_DIR_SEND, mt, vnet, dest,
                            action.with_data, action.with_ack_count))
        elif isinstance(action, CopyDataFromMessage):
            ops.append((OP_COPY_DATA,) if is_cache else (OP_WRITE_MEMORY,))
        elif isinstance(action, WriteDataToMemory):
            if is_cache:
                raise CompilationUnsupported("WriteDataToMemory on a cache")
            ops.append((OP_WRITE_MEMORY,))
        elif isinstance(action, InvalidateData):
            ops.append((OP_INVALIDATE_DATA,))
        elif isinstance(action, SetAcksExpectedFromMessage):
            ops.append((OP_SET_ACKS_FROM_MSG,))
        elif isinstance(action, IncrementAcksReceived):
            ops.append((OP_INC_ACKS,))
        elif isinstance(action, ResetAckCounters):
            ops.append((OP_RESET_ACKS,))
        elif isinstance(action, SaveRequestor):
            ops.append((OP_SAVE_REQUESTOR, action.slot))
        elif isinstance(action, PerformAccess):
            ops.append((OP_PERFORM_ACCESS,))
        elif isinstance(action, SetOwnerToRequestor):
            ops.append((OP_SET_OWNER_REQ,))
        elif isinstance(action, ClearOwner):
            ops.append((OP_CLEAR_OWNER,))
        elif isinstance(action, AddRequestorToSharers):
            ops.append((OP_ADD_REQ_SHARER,))
        elif isinstance(action, AddOwnerToSharers):
            ops.append((OP_ADD_OWNER_SHARER,))
        elif isinstance(action, RemoveRequestorFromSharers):
            ops.append((OP_RM_REQ_SHARER,))
        elif isinstance(action, ClearSharers):
            ops.append((OP_CLEAR_SHARERS,))
        else:
            raise CompilationUnsupported(f"action {action!r}")
    return tuple(ops)


def _compile_controller(
    fsm: ControllerFsm,
    *,
    is_cache: bool,
    mtype_index: dict[str, int],
    mtype_vnet: tuple[int, ...],
    access_kinds: tuple[AccessKind, ...],
) -> CompiledController:
    state_names = tuple(sorted(fsm.state_names()))
    state_index = {name: i for i, name in enumerate(state_names)}

    def lower(transition: FsmTransition) -> CompiledTransition:
        guard = 0
        event = transition.event
        if isinstance(event, MessageEvent) and event.guard is not None:
            try:
                guard = GUARD_CODES[event.guard]
            except KeyError:
                raise CompilationUnsupported(
                    f"guard {event.guard!r}"
                ) from None
        if transition.stall:
            # Stalled cells never execute; next_state may be a placeholder.
            next_state = state_index.get(transition.next_state, 0)
            return CompiledTransition(guard, next_state, (), True, False, transition)
        return CompiledTransition(
            guard,
            state_index[transition.next_state],
            _compile_actions(transition, is_cache=is_cache,
                             mtype_index=mtype_index, mtype_vnet=mtype_vnet),
            False,
            any(isinstance(a, PerformAccess) for a in transition.actions),
            transition,
        )

    on_access: list[tuple] = []
    on_message: list[dict] = []
    for name in state_names:
        access_row: list[CompiledTransition | None] = [None] * len(access_kinds)
        message_row: dict[int, list[CompiledTransition]] = {}
        for transition in fsm.transitions_from(name):
            event = transition.event
            if isinstance(event, AccessEvent):
                access_row[access_kinds.index(event.access)] = lower(transition)
            elif isinstance(event, MessageEvent):
                try:
                    mt = mtype_index[event.message]
                except KeyError:
                    raise CompilationUnsupported(
                        f"handler for unknown message type {event.message!r}"
                    ) from None
                message_row.setdefault(mt, []).append(lower(transition))
            else:
                raise CompilationUnsupported(f"event {event!r}")
        on_access.append(tuple(access_row))
        on_message.append({mt: tuple(cands) for mt, cands in message_row.items()})

    return CompiledController(
        state_names=state_names,
        initial_state=state_index[fsm.initial_state],
        stable=tuple(fsm.state(n).is_stable for n in state_names),
        permission=tuple(int(fsm.state(n).permission) for n in state_names),
        on_access=tuple(on_access),
        on_message=tuple(on_message),
    )


def compile_spec(protocol: GeneratedProtocol) -> CompiledSpec:
    """Lower *protocol* into integer-indexed dispatch tables.

    The index conventions (sorted state / message-type names, value-sorted
    access kinds) are exactly those of
    :class:`repro.system.codec.StateCodec`, so a table lookup on an encoded
    field needs no translation.  Raises :class:`CompilationUnsupported` for
    constructs the tables cannot express (the caller then interprets the
    object FSM instead).
    """
    mtype_names = tuple(sorted(protocol.messages.names()))
    mtype_index = {name: i for i, name in enumerate(mtype_names)}
    try:
        request_names = {m.name for m in protocol.messages.requests}
    except AttributeError:  # pragma: no cover - untyped message catalogs
        request_names = set()
    mtype_vnet = tuple(0 if name in request_names else 1 for name in mtype_names)
    access_kinds = tuple(sorted(AccessKind, key=lambda a: a.value))
    return CompiledSpec(
        cache=_compile_controller(
            protocol.cache, is_cache=True, mtype_index=mtype_index,
            mtype_vnet=mtype_vnet, access_kinds=access_kinds,
        ),
        directory=_compile_controller(
            protocol.directory, is_cache=False, mtype_index=mtype_index,
            mtype_vnet=mtype_vnet, access_kinds=access_kinds,
        ),
        mtype_names=mtype_names,
        access_kinds=access_kinds,
        mtype_vnet=mtype_vnet,
    )
