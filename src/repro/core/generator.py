"""ProtoGen: putting it all together (paper Section V-G).

:func:`generate` is the public entry point of the library.  Given a stable
state protocol specification and a :class:`~repro.core.config.GenerationConfig`
it runs:

1. SSP validation and preprocessing (forwarded-request renaming);
2. Step 1 -- State-Set initialization;
3. Step 2 -- transient states in the absence of concurrency;
4. Step 3 -- concurrency accommodation, to fixpoint;
5. Step 4 -- access-permission assignment;
6. directory-controller generation;

and returns a :class:`~repro.core.fsm.GeneratedProtocol` containing the cache
and directory finite state machines.
"""

from __future__ import annotations

from repro.core.concurrency import accommodate_concurrency
from repro.core.config import GenerationConfig
from repro.core.context import CacheGenContext
from repro.core.directory import generate_directory
from repro.core.fsm import ControllerFsm, FsmTransition, GeneratedProtocol, MessageEvent
from repro.core.harden import harden_protocol
from repro.core.permissions import assign_access_permissions
from repro.core.preprocess import preprocess
from repro.core.transient import build_initial_transients
from repro.dsl.ssp import ProtocolSpec
from repro.dsl.validation import validate_protocol


def generate(
    spec: ProtocolSpec,
    config: GenerationConfig | None = None,
    *,
    validate: bool = True,
) -> GeneratedProtocol:
    """Generate the concurrent protocol for the stable state protocol *spec*."""
    config = config or GenerationConfig()
    if validate:
        validate_protocol(spec, strict=True)

    preprocessed = preprocess(spec)
    working = preprocessed.spec

    cache_fsm = _generate_cache(working, config)
    directory_fsm = generate_directory(working, config)
    if config.harden:
        harden_protocol(working, cache_fsm, directory_fsm)

    return GeneratedProtocol(
        name=working.name,
        cache=cache_fsm,
        directory=directory_fsm,
        messages=working.messages,
        config=config,
        source_spec=working,
        renamings=preprocessed.renamings,
    )


def _generate_cache(spec: ProtocolSpec, config: GenerationConfig) -> ControllerFsm:
    ctx = CacheGenContext(spec, config)
    ctx.add_stable_states()          # Step 1: State Sets start as {stable}
    _emit_stable_reactions(ctx)      # SSP behaviour at stable states
    build_initial_transients(ctx)    # Step 2
    accommodate_concurrency(ctx)     # Step 3 (drains the worklist to fixpoint)
    assign_access_permissions(ctx)   # Step 4
    return ctx.fsm


def _emit_stable_reactions(ctx: CacheGenContext) -> None:
    for reaction in ctx.spec.cache.reactions:
        ctx.fsm.add_transition(
            FsmTransition(
                state=reaction.state,
                event=MessageEvent(reaction.message, guard=reaction.guard),
                actions=reaction.actions,
                next_state=reaction.next_state,
            )
        )
