"""Fault-tolerance hardening pass (beyond the paper's network assumptions).

The paper generates controllers for networks with exactly-once, per-channel
ordered delivery.  The fault-injection axes measured that every bundled
protocol inherits two failure classes from that assumption: a single
duplicated response is an unhandled message ("cannot handle message"), and a
single adjacent reorder can land a late forward at a cache that no longer
holds the block -- losing the only copy of the data and starving both the
requestor and the directory.  This pass closes both classes at generation
level, the same place the late-invalidation and owner-recall holes were
fixed.  Five rules cooperate:

* **Cache absorption with miss notification.**  Every (state, forward /
  response) pair the generated cache controller leaves unhandled gets an
  *absorption* transition: the message is consumed idempotently and the
  state is unchanged.  Three flavours, chosen per forward:

  - a *data-serving* forward (one whose stable handlers supply a copy of
    the block: ``Fwd_GetS``/``Fwd_GetM``) cannot be served from a state
    without the block, so the absorption *notifies* the directory with a
    generated dataless ``<Fwd>_Miss`` response that preserves the original
    requestor -- the directory recovers (below) from its own memory, which
    the stale-Put capture keeps current;
  - an *ack-only* forward (``Inv``) is absorbed with its acknowledgment
    re-sent, because a real post-reorder ``Inv`` can reach a cache that
    already gave the block up while the invalidating requestor still counts
    the ``Inv_Ack``;
  - everything else (re-delivered responses: a duplicated ``Data``, a
    second ``Put_Ack``) is absorbed silently.

* **Stale-Put data capture with captured-state splitting.**  The generated
  stale-Put acknowledgment used to *drop* a data-carrying Put's payload.
  That is exactly how a reorder loses the only copy: the ``Put_Ack``
  overtakes an in-flight forward, the owner completes its eviction, and the
  late forward finds no data anywhere.  Hardening prepends
  ``CopyDataFromMessage`` to every generated stale acknowledgment of a
  data-carrying Put, so the payload lands in memory the moment the owner's
  epoch ends.  In *stable* forwarding states the capture additionally moves
  the directory to a generated ``<state>_cap`` sibling recording that
  memory is now current -- the fact the miss recovery below needs, and one
  the directory state could not otherwise express.  Any handler that
  re-installs an owner leaves the sibling for the plain (memory-stale)
  variant.  (Fault-free state spaces change under this rule: the capture is
  reachable in fault-free eviction races too, where it is benign -- the
  captured data is the same value a racing writeback would install.)

* **Directory miss recovery.**  A ``<Fwd>_Miss`` arriving at the directory
  is handled where the forward was issued:

  - in an awaiting-data transient, the miss completes the transaction from
    memory: the requestor is served a ``Data`` built from the (captured)
    memory copy unless the transaction's own completion actions already
    serve it, and the completion bookkeeping runs as usual;
  - in a stable state that forwards the original request to the owner, the
    miss is split on a generated guard pair: if the directory's current
    owner *is* the miss's requestor (``owner_is_requestor``), the plain
    variant absorbs the miss silently -- the only way to reach it is a
    duplicated forward whose real data response is already in flight to
    the requestor on another channel, and serving (stale) memory would
    race it -- while the ``_cap`` variant replays the forwarding handler
    with the forward replaced by a ``Data`` served from the captured
    memory (an evaporated owner's Put is always processed before the miss
    it causes, so the capture has provably run); otherwise
    (``owner_not_requestor``) the forwarding handler is replayed verbatim
    against the *current* owner;
  - in a stable state that serves the original request from memory, that
    memory-serving handler is replayed (bookkeeping included) -- the
    canonical case after an eviction race dissolved the ownership the
    forward was aimed at.

* **Directory-side duplicate-ownership absorption.**  A duplicated
  ownership request (``GetM``/``Upgrade``) arrives at the directory *after*
  the original installed its issuer as owner.  The un-hardened directory
  re-runs the handler and forwards the request to the owner -- the requestor
  itself, which then surrenders its own block to nobody.  In a stable
  directory state whose ``owner_view``'s *silent closure* (the cache states
  reachable from it through request-free transactions, e.g. MESI's silent
  E->M upgrade) issues no such request, an ownership request *from the
  current owner* can only be such an echo, so a ``from_owner``-guarded
  absorption shadows the unguarded handler.  The closure test keeps MOSI's
  legitimate ``O GetM`` owner upgrade live while covering MESI's dir-E
  state, whose owner may be in E *or* (silently) M.

* **Directory response absorption** (last, so the recovery rules above win
  their cells): re-delivered responses -- including ``*_Miss`` responses in
  states that need no recovery -- are absorbed silently.

Known residuals (documented, not hidden): a duplicated ``Inv_Ack`` arriving
while the requestor is still *counting* acknowledgments is counted twice,
and a stale-Put capture behind a newer writeback can transiently rewind
memory.  Both need three or more caches to matter (two-cache configurations
are decided before the duplicate/stale payload arrives); sequence-numbered
messages would be required beyond that, which is outside the paper's message
format.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.directory import _put_requests
from repro.core.fsm import (
    ControllerFsm,
    FsmState,
    FsmTransition,
    MessageEvent,
    StateKind,
)
from repro.core.naming import directory_transient_name
from repro.dsl.ssp import ProtocolSpec
from repro.dsl.types import (
    CopyDataFromMessage,
    Dest,
    MessageClass,
    Send,
    SetOwnerToRequestor,
    WriteDataToMemory,
)


def harden_protocol(
    spec: ProtocolSpec, cache_fsm: ControllerFsm, directory_fsm: ControllerFsm
) -> None:
    """Add the hardening transitions described in the module docstring.

    Mutates both FSMs in place (and declares the generated ``*_Miss``
    response messages in the spec's catalog); every *added* transition
    carries ``absorb=True`` so renderers and tests can tell generated fault
    tolerance from SSP-specified behaviour.
    """
    miss_names = _declare_miss_messages(spec)
    _harden_cache(spec, cache_fsm, miss_names)
    _capture_stale_put_data(spec, directory_fsm)
    _recover_missed_forwards(spec, directory_fsm, miss_names)
    _split_captured_states(spec, directory_fsm, miss_names)
    _absorb_duplicate_ownership(spec, directory_fsm)
    _absorb_directory_responses(spec, directory_fsm)


# ---------------------------------------------------------------------------
# Miss messages
# ---------------------------------------------------------------------------


def _cache_handler_actions(spec: ProtocolSpec, forward: str):
    """All action tuples the cache SSP runs when handling *forward*."""
    for reaction in spec.cache.reactions:
        if reaction.message == forward:
            yield reaction.actions
    for transaction in spec.cache.transactions:
        if transaction.initiator == forward:
            yield tuple(transaction.all_actions())


def _serve_send(spec: ProtocolSpec, forward: str) -> Send | None:
    """The data response the *owner* would have sent to the requestor when
    handling *forward* -- the exact message the requestor is waiting for --
    re-targeted so the directory can send it from memory instead."""
    for actions in _cache_handler_actions(spec, forward):
        for action in actions:
            if isinstance(action, Send) and action.with_data and action.to is Dest.REQUESTOR:
                return Send(
                    message=action.message,
                    to=Dest.REQUESTOR,
                    with_data=True,
                    with_ack_count=action.with_ack_count,
                )
    return None


def _declare_miss_messages(spec: ProtocolSpec) -> dict[str, str]:
    """Declare a dataless ``<Fwd>_Miss`` response per data-serving forward.

    A forward is data-serving when any cache handler for it sends a copy of
    the block (to the requestor *or* back to the directory -- MOSI's
    owner-recall forward does the latter).  Losing such a forward loses
    data, so its absorption must tell the directory.
    """
    miss_names: dict[str, str] = {}
    for forward in sorted(spec.forwarded_messages()):
        serves_data = any(
            isinstance(action, Send) and action.with_data
            for actions in _cache_handler_actions(spec, forward)
            for action in actions
        )
        if not serves_data:
            continue
        name = f"{forward}_Miss"
        if name not in spec.messages:
            spec.messages.declare(name, MessageClass.RESPONSE)
        miss_names[forward] = name
    return miss_names


# ---------------------------------------------------------------------------
# Cache side
# ---------------------------------------------------------------------------


def _reack_template(fsm: ControllerFsm, message: str) -> Send | None:
    """The response to re-send when absorbing *message*, or ``None``.

    A forward is *ack-only* when every stable-state handler for it sends
    nothing but one kind of dataless response to the requestor (the ``Inv``
    -> ``Inv_Ack`` shape).  Any data-carrying or differently-routed send
    disqualifies it.
    """
    ack_names: set[str] = set()
    seen_handler = False
    for state in fsm.stable_states():
        for transition in fsm.candidates(state.name, MessageEvent(message)):
            if transition.stall:
                continue
            seen_handler = True
            for action in transition.actions:
                if not isinstance(action, Send):
                    continue
                if (
                    action.to is not Dest.REQUESTOR
                    or action.with_data
                    or action.requestor_slot is not None
                    or action.requestor_from_slot is not None
                ):
                    return None
                ack_names.add(action.message)
    if not seen_handler or len(ack_names) != 1:
        return None
    return Send(message=ack_names.pop(), to=Dest.REQUESTOR)


def _harden_cache(
    spec: ProtocolSpec, fsm: ControllerFsm, miss_names: dict[str, str]
) -> None:
    forwards = sorted(spec.forwarded_messages())
    responses = sorted(
        m.name for m in spec.messages.responses if m.name not in miss_names.values()
    )
    templates: dict[str, Send | None] = {}
    for name in forwards:
        if name in miss_names:
            templates[name] = Send(message=miss_names[name], to=Dest.DIRECTORY)
        else:
            templates[name] = _reack_template(fsm, name)
    for state in fsm.states():
        for name in forwards + responses:
            if fsm.candidates(state.name, MessageEvent(name)):
                continue
            template = templates.get(name)
            fsm.add_transition(
                FsmTransition(
                    state=state.name,
                    event=MessageEvent(name),
                    actions=(template,) if template is not None else (),
                    next_state=state.name,
                    absorb=True,
                )
            )


# ---------------------------------------------------------------------------
# Directory side: stale-Put data capture
# ---------------------------------------------------------------------------


def _writes_data(actions) -> bool:
    return any(
        isinstance(a, (CopyDataFromMessage, WriteDataToMemory)) for a in actions
    )


def _capture_stale_put_data(spec: ProtocolSpec, fsm: ControllerFsm) -> None:
    """Prepend ``CopyDataFromMessage`` to generated stale acknowledgments of
    data-carrying Puts (the ack-only self-loops stale-Put handling emits) --
    but only where memory is stale and the payload is the missing copy:
    ``not_from_owner`` acknowledgments (a live owner's state, so the Put is
    the evaporating *previous* owner's writeback) and the unguarded ones in
    awaiting-data transients.  In ownerless *stable* states memory is
    already current and the Put is necessarily ancient -- capturing there
    would rewind memory (reachable fault-free with three caches: a slow
    ``PutM`` from two ownership epochs ago arriving at ``I``)."""
    data_puts = {
        put for put in _put_requests(spec) if spec.messages[put].carries_data
    }
    for transition in fsm.transitions():
        event = transition.event
        if not isinstance(event, MessageEvent) or event.message not in data_puts:
            continue
        if event.guard != "not_from_owner" and not (
            event.guard is None and not fsm.state(transition.state).is_stable
        ):
            continue
        if (
            transition.stall
            or transition.next_state != transition.state
            or _writes_data(transition.actions)
            or not any(isinstance(a, Send) for a in transition.actions)
        ):
            continue
        fsm.replace_transition(
            transition,
            transition.with_actions((CopyDataFromMessage(),) + transition.actions),
        )


# ---------------------------------------------------------------------------
# Directory side: miss recovery
# ---------------------------------------------------------------------------


def _forwards_issued(actions, miss_names: dict[str, str]) -> list[str]:
    return [
        a.message
        for a in actions
        if isinstance(a, Send) and a.to is Dest.OWNER and a.message in miss_names
    ]


def _serves_requestor(actions) -> bool:
    return any(
        isinstance(a, Send) and a.to is Dest.REQUESTOR and a.with_data
        for a in actions
    )


def _recover_transients(
    spec: ProtocolSpec, fsm: ControllerFsm, miss_names: dict[str, str]
) -> None:
    for tx in spec.directory.transactions:
        if not tx.stages:
            continue
        forwards = _forwards_issued(tx.issue_actions, miss_names)
        if not forwards:
            continue
        for stage in tx.stages:
            completing = [
                tr
                for tr in stage.triggers
                if tr.completes and tr.condition is None and tr.receives_data
            ]
            if not completing:
                continue
            trigger = completing[0]
            tname = directory_transient_name(tx.start_state, tx.final_state, stage.name)
            tail = tuple(trigger.actions) + tuple(tx.completion_actions)
            if _serves_requestor(tail):
                actions = tail
            else:
                serve = _serve_send(spec, forwards[0])
                if serve is None:
                    continue
                actions = (serve,) + tail
            next_state = trigger.final_state or tx.final_state
            for forward in forwards:
                miss = miss_names[forward]
                if fsm.candidates(tname, MessageEvent(miss)):
                    continue
                fsm.add_transition(
                    FsmTransition(
                        state=tname,
                        event=MessageEvent(miss),
                        actions=actions,
                        next_state=next_state,
                        absorb=True,
                    )
                )


def _recover_stable_states(
    spec: ProtocolSpec, fsm: ControllerFsm, miss_names: dict[str, str]
) -> None:
    # Requests whose directory handling (in some state) issues each forward:
    # the replay sources for states that serve the request from memory.
    origins: dict[str, set[str]] = {f: set() for f in miss_names}
    for transition in fsm.transitions():
        event = transition.event
        if not isinstance(event, MessageEvent):
            continue
        if event.message not in {m.name for m in spec.messages.requests}:
            continue
        for forward in _forwards_issued(transition.actions, miss_names):
            origins[forward].add(event.message)

    for forward in sorted(miss_names):
        miss = miss_names[forward]
        for state in fsm.stable_states():
            if fsm.candidates(state.name, MessageEvent(miss)):
                continue
            forwarding = [
                t
                for t in fsm.transitions_from(state.name)
                if not t.stall and forward in _forwards_issued(t.actions, miss_names)
            ]
            if forwarding:
                handler = forwarding[0]
                fsm.add_transition(
                    FsmTransition(
                        state=state.name,
                        event=MessageEvent(miss, guard="owner_not_requestor"),
                        actions=handler.actions,
                        next_state=handler.next_state,
                        absorb=True,
                    )
                )
                # owner *is* the miss's requestor: the handoff target itself
                # reported the miss.  Either the forward was duplicated (the
                # duplicate was served, the real data response is in flight
                # to the requestor on another channel) or the old owner
                # evicted (its Put was processed first -- see the causality
                # note on ``_handoff_serve_send`` -- and the capture-time
                # serve already pushed current memory to the requestor).
                # Serving *again* from memory here is unsound: in the
                # duplication case memory is stale and the recovery data
                # races the real data.  Absorb silently instead.
                fsm.add_transition(
                    FsmTransition(
                        state=state.name,
                        event=MessageEvent(miss, guard="owner_is_requestor"),
                        actions=(),
                        next_state=state.name,
                        absorb=True,
                    )
                )
                continue
            # No forwarding handler here: replay the memory-serving handler
            # of an originating request, bookkeeping included.
            for request in sorted(origins[forward]):
                replays = [
                    t
                    for t in fsm.candidates(state.name, MessageEvent(request))
                    if t.event.guard is None
                    and not t.stall
                    and _serves_requestor(t.actions)
                ]
                if replays:
                    fsm.add_transition(
                        FsmTransition(
                            state=state.name,
                            event=MessageEvent(miss),
                            actions=replays[0].actions,
                            next_state=replays[0].next_state,
                            absorb=True,
                        )
                    )
                    break


def _recover_missed_forwards(
    spec: ProtocolSpec, fsm: ControllerFsm, miss_names: dict[str, str]
) -> None:
    _recover_transients(spec, fsm, miss_names)
    _recover_stable_states(spec, fsm, miss_names)


# ---------------------------------------------------------------------------
# Directory side: captured variants of dirty stable states
# ---------------------------------------------------------------------------


def _split_captured_states(
    spec: ProtocolSpec, fsm: ControllerFsm, miss_names: dict[str, str]
) -> None:
    """Split every forwarding stable state on whether memory is current.

    In a stable state with a recorded owner, memory is normally *stale* (the
    owner holds the authoritative copy), so a missed forward cannot be
    recovered from memory there.  But when the directory captures a stale
    Put (``not_from_owner``: the evaporating cache is the *previous* owner,
    racing a handoff to the recorded one), memory becomes current at that
    instant.  Recording that fact as a generated ``<state>_cap`` sibling --
    entered by the capture self-loops, left again by any handler that
    re-installs an owner -- lets the miss recovery be exact:

    * in the plain state, an ``owner_is_requestor`` miss is absorbed
      silently (the only way to get here is a duplicated forward, whose real
      data response is already in flight to the requestor on another
      channel; serving stale memory would race it);
    * in the ``_cap`` sibling, the same miss is the eviction race -- the
      evaporated owner's Put was necessarily processed *before* the miss was
      generated (the missing cache only gives the block up on ``Put_Ack``) --
      so the forwarding handler is replayed with the forward replaced by a
      ``Data`` served from the captured memory, bookkeeping intact.
    """
    puts = _put_requests(spec)
    for state in list(fsm.stable_states()):
        transitions = fsm.transitions_from(state.name)
        forwarding = [
            t
            for t in transitions
            if not t.stall and _forwards_issued(t.actions, miss_names)
        ]
        captures = [
            t
            for t in transitions
            if isinstance(t.event, MessageEvent)
            and t.event.message in puts
            and t.event.guard == "not_from_owner"
            and t.next_state == state.name
            and not t.stall
        ]
        if not forwarding or not captures:
            continue
        cap = f"{state.name}_cap"
        fsm.add_state(
            FsmState(
                name=cap,
                kind=StateKind.STABLE,
                permission=state.permission,
                state_sets=frozenset({state.name}),
                meta={**state.meta, "captured_from": state.name},
            )
        )
        capture_ids = {id(t) for t in captures}
        for t in transitions:
            if id(t) in capture_ids:
                mapped = cap
            elif any(isinstance(a, SetOwnerToRequestor) for a in t.actions):
                # Re-installing an owner makes memory prospectively stale
                # again: fall back to the plain variant of the target.
                mapped = t.next_state
            elif t.next_state == state.name:
                mapped = cap
            else:
                mapped = t.next_state
            fsm.add_transition(replace(t, state=cap, next_state=mapped))
        for t in captures:
            fsm.replace_transition(t, replace(t, next_state=cap))
        # Upgrade the copied owner_is_requestor absorptions: with captured
        # memory the directory can serve the miss itself.
        for handler in forwarding:
            if handler.next_state != state.name:
                continue  # staged issue: the transient recovery covers it
            for forward in _forwards_issued(handler.actions, miss_names):
                serve = _serve_send(spec, forward)
                if serve is None:
                    continue
                absorbed = [
                    t
                    for t in fsm.candidates(cap, MessageEvent(miss_names[forward]))
                    if isinstance(t.event, MessageEvent)
                    and t.event.guard == "owner_is_requestor"
                ]
                if not absorbed:
                    continue
                actions = tuple(
                    serve
                    if isinstance(a, Send)
                    and a.to is Dest.OWNER
                    and a.message == forward
                    else a
                    for a in handler.actions
                )
                fsm.replace_transition(
                    absorbed[0],
                    replace(
                        absorbed[0],
                        actions=actions,
                        next_state=handler.next_state,
                    ),
                )


# ---------------------------------------------------------------------------
# Directory side: duplicate-ownership absorption
# ---------------------------------------------------------------------------


def _silent_closure(spec: ProtocolSpec, state: str) -> set[str]:
    """Cache states reachable from *state* through silent transactions."""
    seen = {state}
    frontier = [state]
    while frontier:
        current = frontier.pop()
        for tx in spec.cache.transactions_from(current):
            if tx.is_silent and tx.final_state not in seen:
                seen.add(tx.final_state)
                frontier.append(tx.final_state)
    return seen


def _requests_issued_from(spec: ProtocolSpec, states: set[str]) -> set[str]:
    return {
        tx.request.message
        for state in states
        for tx in spec.cache.transactions_from(state)
        if tx.request is not None
    }


def _ownership_requests(spec: ProtocolSpec) -> set[str]:
    """Requests whose completion can install the issuer as read-write owner."""
    from repro.dsl.types import Permission

    requests: set[str] = set()
    cache = spec.cache
    for transaction in cache.transactions:
        if transaction.request is None:
            continue
        finals = {transaction.final_state}
        for stage in transaction.stages:
            for trigger in stage.triggers:
                if trigger.completes and trigger.final_state is not None:
                    finals.add(trigger.final_state)
        if any(
            cache.state(final).permission is Permission.READ_WRITE
            for final in finals
        ):
            requests.add(transaction.request.message)
    return requests


def _absorb_duplicate_ownership(spec: ProtocolSpec, fsm: ControllerFsm) -> None:
    ownership = sorted(_ownership_requests(spec))
    for state in fsm.stable_states():
        owner_view = state.meta.get("owner_view")
        if owner_view is None:
            continue
        issuable = _requests_issued_from(spec, _silent_closure(spec, owner_view))
        for request in ownership:
            if request in issuable:
                # The believed owner state can legitimately issue this
                # request (MOSI's O->M upgrade): not an echo, keep it live.
                continue
            candidates = fsm.candidates(state.name, MessageEvent(request))
            if not candidates or any(t.event.guard for t in candidates):
                continue
            fsm.add_transition(
                FsmTransition(
                    state=state.name,
                    event=MessageEvent(request, guard="from_owner"),
                    actions=(),
                    next_state=state.name,
                    absorb=True,
                )
            )


# ---------------------------------------------------------------------------
# Directory side: response absorption (must run last)
# ---------------------------------------------------------------------------


def _absorb_directory_responses(spec: ProtocolSpec, fsm: ControllerFsm) -> None:
    responses = sorted(m.name for m in spec.messages.responses)
    for state in fsm.states():
        for name in responses:
            candidates = fsm.candidates(state.name, MessageEvent(name))
            if any(
                not isinstance(t.event, MessageEvent) or t.event.guard is None
                for t in candidates
            ):
                continue
            # No handler at all, or only guarded recovery variants: add the
            # unguarded absorption as the default (guards win when they
            # match -- e.g. a miss whose guard pair finds no recorded owner
            # falls through to this).
            fsm.add_transition(
                FsmTransition(
                    state=state.name,
                    event=MessageEvent(name),
                    actions=(),
                    next_state=state.name,
                    absorb=True,
                )
            )
