"""Transient-state naming.

Names follow the primer / paper convention: ``IM_AD`` is the transient state
of a transaction from I to M while waiting in stage ``AD``; later-ordered
redirections append the observed target chain, e.g. ``IM_AD_S`` after a
forwarded GetS, ``IM_AD_SI`` after a subsequent Invalidation (these appear as
``IM^AD_S`` / IMADS etc. in the paper's Table VI).
"""

from __future__ import annotations

from repro.dsl.types import AccessKind


def transient_name(start: str, final: str, stage: str) -> str:
    """Name of a Step-2 transient state (no concurrency observed yet)."""
    return f"{start}{final}_{stage}"


def redirected_name(base: str, chain: tuple[str, ...]) -> str:
    """Name of a Step-3 transient state created by later-ordered transactions.

    ``base`` is the Step-2 name (e.g. ``IM_AD``) and ``chain`` the sequence of
    stable targets observed afterwards (e.g. ``("S", "I")`` -> ``IM_AD_SI``).
    """
    if not chain:
        return base
    return base + "_" + "".join(chain)


def stale_request_name(settled_state: str, stage: str) -> str:
    """Name of the state used while waiting out a stale request.

    This is the ``II_A`` situation: the cache's own transaction was overtaken
    (Case 1) and the restart access needs no new transaction, but the original
    request is still in flight and will be acknowledged as stale by the
    directory.
    """
    return f"{settled_state}{settled_state}_{stage}"


def directory_transient_name(start: str, final: str, stage: str) -> str:
    """Directory transient states use the target-state-plus-stage convention
    of the primer (e.g. ``S_D`` while the directory waits for data from the
    owner before settling in S)."""
    return f"{final}_{stage}"


def describe_access(access: AccessKind) -> str:
    return {"load": "Load", "store": "Store", "replacement": "Replacement"}[access.value]
