"""Step 4: assigning access permissions to states (paper Section V-E).

For stable states the permissions come directly from the SSP.  For transient
states the permission was computed when the state was created (the meet of
the initial and final stable-state permissions, or NONE when transient
accesses are disabled).  This pass turns those permissions into explicit
table entries:

* a *hit* transition for every access the state's permission allows,
* a *stall* entry for every access a transient state cannot satisfy
  (the core must wait for the own transaction to complete),
"""

from __future__ import annotations

from repro.core.context import CacheGenContext
from repro.core.fsm import AccessEvent, FsmTransition
from repro.dsl.types import AccessKind, PerformAccess


def assign_access_permissions(ctx: CacheGenContext) -> None:
    for state in ctx.fsm.states():
        for access in (AccessKind.LOAD, AccessKind.STORE):
            event = AccessEvent(access)
            if ctx.fsm.has_transition(state.name, event):
                continue
            if state.permission.allows(access):
                ctx.fsm.add_transition(
                    FsmTransition(
                        state=state.name,
                        event=event,
                        actions=(PerformAccess(),),
                        next_state=state.name,
                    )
                )
            elif not state.is_stable:
                ctx.fsm.add_transition(
                    FsmTransition(
                        state=state.name,
                        event=event,
                        actions=(),
                        next_state=state.name,
                        stall=True,
                    )
                )
        replacement = AccessEvent(AccessKind.REPLACEMENT)
        if not state.is_stable and not ctx.fsm.has_transition(state.name, replacement):
            ctx.fsm.add_transition(
                FsmTransition(
                    state=state.name,
                    event=replacement,
                    actions=(),
                    next_state=state.name,
                    stall=True,
                )
            )
