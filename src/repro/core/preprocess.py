"""SSP preprocessing (paper Section V-A, Tables III / IV).

ProtoGen relies on the invariant that **every forwarded request can arrive at
exactly one stable cache state**: this is what lets a cache deduce, from an
incoming forwarded request alone, whether its own outstanding request was
serialized at the directory before or after the other transaction.

If the input SSP lets the same forwarded request arrive at two or more stable
states (the MOSI example: ``Fwd_GetS`` can arrive at both M and O), this pass
renames all but one occurrence (``O_Fwd_GetS``) and rewrites the directory
actions that send it so the directory emits the disambiguated name.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.dsl.errors import GenerationError
from repro.dsl.ssp import ControllerSpec, ProtocolSpec, Reaction, Transaction, Trigger, AwaitStage
from repro.dsl.types import Action, MessageClass, Send


@dataclass
class PreprocessResult:
    """Outcome of preprocessing: the rewritten spec plus the renaming map."""

    spec: ProtocolSpec
    #: original forwarded-request name -> list of names it was split into
    #: (the first entry is the name kept for the "canonical" arrival state).
    renamings: dict[str, list[str]] = field(default_factory=dict)

    @property
    def renamed_messages(self) -> list[str]:
        out: list[str] = []
        for original, names in self.renamings.items():
            out.extend(n for n in names if n != original)
        return out


def forwarded_arrival_states(spec: ProtocolSpec) -> dict[str, list[str]]:
    """Map every forwarded request to the stable cache states it can arrive in."""
    return {
        message.name: spec.cache_arrival_states(message.name)
        for message in spec.messages.by_class(MessageClass.FORWARD)
    }


def _arrival_classes(spec: ProtocolSpec, states: list[str]) -> list[list[str]]:
    """Group arrival states that are connected by silent transactions.

    Silent transitions (e.g. MESI's E->M upgrade) cannot race with anything,
    so a forwarded request arriving anywhere within such a group conveys the
    same serialization information; only arrivals in *different* groups need
    to be disambiguated by renaming.
    """
    from repro.core.context import compute_silent_classes

    silent_classes = compute_silent_classes(spec)

    def class_of(state: str) -> frozenset[str]:
        for cls in silent_classes:
            if state in cls:
                return cls
        return frozenset({state})

    grouped: dict[frozenset[str], list[str]] = {}
    for state in states:
        grouped.setdefault(class_of(state), []).append(state)
    return list(grouped.values())


def preprocess(spec: ProtocolSpec) -> PreprocessResult:
    """Return a copy of *spec* satisfying the one-arrival-state invariant."""
    working = spec.copy()
    renamings: dict[str, list[str]] = {}

    arrival = forwarded_arrival_states(working)
    for message_name, states in arrival.items():
        classes = _arrival_classes(working, states)
        if len(classes) <= 1:
            continue
        renamings[message_name] = _split_forwarded_request(working, message_name, classes)

    _check_invariant(working)
    return PreprocessResult(spec=working, renamings=renamings)


def _split_forwarded_request(
    spec: ProtocolSpec, message_name: str, classes: list[list[str]]
) -> list[str]:
    """Rename the occurrences of *message_name* arriving outside the first class."""
    new_names = [message_name]
    per_state_name: dict[str, str] = {state: message_name for state in classes[0]}
    for group in classes[1:]:
        label = sorted(group)[0]
        new_name = f"{label}_{message_name}"
        spec.messages.derive_renamed(message_name, new_name)
        for state in group:
            per_state_name[state] = new_name
        new_names.append(new_name)

    _rewrite_cache_arrivals(spec.cache, message_name, per_state_name)
    _rewrite_directory_sends(spec, message_name, per_state_name, classes[0][0])
    return new_names


def _rewrite_cache_arrivals(
    cache: ControllerSpec, message_name: str, per_state_name: dict[str, str]
) -> None:
    for reaction in list(cache.reactions):
        if reaction.message != message_name:
            continue
        new_name = per_state_name.get(reaction.state)
        if new_name is None or new_name == message_name:
            continue
        cache.replace_reaction(reaction, replace(reaction, message=new_name))
    for transaction in list(cache.transactions):
        if transaction.initiator != message_name:
            continue
        new_name = per_state_name.get(transaction.start_state)
        if new_name is None or new_name == message_name:
            continue
        cache.replace_transaction(transaction, replace(transaction, initiator=new_name))


def _rewrite_directory_sends(
    spec: ProtocolSpec,
    message_name: str,
    per_state_name: dict[str, str],
    kept_state: str,
) -> None:
    """Rewrite directory Send actions so the right renamed variant is emitted.

    The variant is chosen from, in priority order: the Send's explicit
    ``recipient_state`` annotation, then the ``owner_view`` of the directory
    state the send occurs in.  If neither identifies the recipient's stable
    state, the send is left with the original (kept) name -- which is only
    correct if the recipient is in *kept_state*, so we raise instead of
    guessing wrong silently.
    """
    directory = spec.directory

    def rewrite_actions(actions: tuple[Action, ...], dir_state: str) -> tuple[Action, ...]:
        rewritten: list[Action] = []
        for action in actions:
            if isinstance(action, Send) and action.message == message_name:
                rewritten.append(action.renamed(_variant_for(action, dir_state)))
            else:
                rewritten.append(action)
        return tuple(rewritten)

    def _variant_for(action: Send, dir_state: str) -> str:
        recipient_state = action.recipient_state
        if recipient_state is None:
            recipient_state = directory.state(dir_state).owner_view
        if recipient_state is None:
            raise GenerationError(
                f"cannot disambiguate forwarded request {message_name!r} sent from "
                f"directory state {dir_state!r}: annotate the Send with recipient_state "
                "or give the directory state an owner_view"
            )
        if recipient_state not in per_state_name:
            raise GenerationError(
                f"directory state {dir_state!r} forwards {message_name!r} to a cache in "
                f"{recipient_state!r}, but the cache SSP never receives it in that state"
            )
        return per_state_name[recipient_state]

    for reaction in list(directory.reactions):
        new_actions = rewrite_actions(reaction.actions, reaction.state)
        if new_actions != reaction.actions:
            directory.replace_reaction(reaction, replace(reaction, actions=new_actions))

    for transaction in list(directory.transactions):
        changed = False
        new_issue = rewrite_actions(transaction.issue_actions, transaction.start_state)
        if new_issue != transaction.issue_actions:
            changed = True
        new_stages = []
        for stage in transaction.stages:
            new_triggers = []
            for trigger in stage.triggers:
                new_trigger_actions = rewrite_actions(trigger.actions, transaction.start_state)
                if new_trigger_actions != trigger.actions:
                    changed = True
                    new_triggers.append(replace(trigger, actions=new_trigger_actions))
                else:
                    new_triggers.append(trigger)
            new_stages.append(AwaitStage(name=stage.name, triggers=tuple(new_triggers)))
        new_completion = rewrite_actions(transaction.completion_actions, transaction.start_state)
        if new_completion != transaction.completion_actions:
            changed = True
        if changed:
            directory.replace_transaction(
                transaction,
                replace(
                    transaction,
                    issue_actions=new_issue,
                    stages=tuple(new_stages),
                    completion_actions=new_completion,
                ),
            )


def _check_invariant(spec: ProtocolSpec) -> None:
    arrival = forwarded_arrival_states(spec)
    offenders = {
        m: s for m, s in arrival.items() if len(_arrival_classes(spec, s)) > 1
    }
    if offenders:
        raise GenerationError(
            "preprocessing failed to establish the one-arrival-state invariant: "
            + ", ".join(f"{m} arrives in {s}" for m, s in offenders.items())
        )
