"""Step 1: State Sets (paper Section V-B).

A *State Set* exists for every stable state.  A transient state belongs to the
State Set of every stable state in which the directory might currently see
the block while the cache holds it in that transient state.  The generator
uses the membership to decide whether an incoming forwarded request belongs
to an earlier-ordered or later-ordered transaction.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class StateSets:
    """Tracks, for every stable state, which generated states belong to its set."""

    stable_states: list[str]
    _members: dict[str, set[str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for stable in self.stable_states:
            self._members.setdefault(stable, set()).add(stable)

    def add(self, state_name: str, membership: frozenset[str] | set[str]) -> None:
        """Record that *state_name* belongs to the State Sets in *membership*."""
        for stable in membership:
            if stable not in self._members:
                raise KeyError(f"unknown stable state {stable!r}")
            self._members[stable].add(state_name)

    def members(self, stable: str) -> frozenset[str]:
        return frozenset(self._members[stable])

    def membership_of(self, state_name: str) -> frozenset[str]:
        return frozenset(
            stable for stable, members in self._members.items() if state_name in members
        )

    def as_dict(self) -> dict[str, frozenset[str]]:
        return {stable: frozenset(members) for stable, members in self._members.items()}

    def __contains__(self, stable: str) -> bool:
        return stable in self._members
