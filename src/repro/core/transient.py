"""Step 2: transient states in the absence of concurrency (paper Section V-C).

For every SSP cache transaction we create one transient state per waiting
stage (e.g. ``IM_AD`` then ``IM_A`` for the I->M transaction of MSI, Table V)
and emit:

* the access transition that starts the transaction from the stable state,
* for every trigger of every stage, the message transition that advances or
  completes the transaction.

The completion transition performs the pending core access (the load or store
that started the transaction) and any completion actions from the SSP, plus --
for states created later by Step 3 -- the deferred responses.
"""

from __future__ import annotations

from repro.core.context import CacheGenContext, TransientDescriptor
from repro.core.fsm import AccessEvent, FsmTransition, MessageEvent
from repro.dsl.errors import GenerationError
from repro.dsl.ssp import Transaction, Trigger
from repro.dsl.types import (
    AccessKind,
    Action,
    CopyDataFromMessage,
    IncrementAcksReceived,
    PerformAccess,
    ResetAckCounters,
    SetAcksExpectedFromMessage,
)


def build_initial_transients(ctx: CacheGenContext) -> None:
    """Create the Step-2 transient states and the access transitions that enter them."""
    for transaction in ctx.spec.cache.transactions:
        if not isinstance(transaction.initiator, AccessKind):
            # Forwarded-request handling at stable states is expressed as
            # Reactions; transactions initiated by messages on the cache side
            # are not part of the supported input model.
            raise GenerationError(
                "cache transactions must be initiated by core accesses; "
                f"got initiator {transaction.initiator!r}"
            )
        _emit_access_transition(ctx, transaction)


def _emit_access_transition(ctx: CacheGenContext, transaction: Transaction) -> None:
    access = transaction.initiator
    event = AccessEvent(access)
    actions: list[Action] = list(transaction.issue_actions)

    if not transaction.stages:
        # Silent or single-step transaction: complete immediately.
        if transaction.request is not None:
            actions.append(transaction.request)
        actions.append(PerformAccess())
        actions.extend(transaction.completion_actions)
        ctx.fsm.add_transition(
            FsmTransition(
                state=transaction.start_state,
                event=event,
                actions=tuple(actions),
                next_state=transaction.final_state,
            )
        )
        return

    actions.append(ResetAckCounters())
    if transaction.request is not None:
        actions.append(transaction.request)
    descriptor = ctx.descriptor_for_stage(transaction, 0)
    first_state = ctx.ensure_state(descriptor)
    ctx.fsm.add_transition(
        FsmTransition(
            state=transaction.start_state,
            event=event,
            actions=tuple(actions),
            next_state=first_state,
        )
    )


# ---------------------------------------------------------------------------
# Wait transitions for one transient state (used by Step 2 and Step 3 alike)
# ---------------------------------------------------------------------------


def implicit_trigger_actions(trigger: Trigger) -> list[Action]:
    actions: list[Action] = []
    if trigger.receives_data:
        actions.append(CopyDataFromMessage())
    if trigger.latches_ack_count:
        actions.append(SetAcksExpectedFromMessage())
    if trigger.counts_ack:
        actions.append(IncrementAcksReceived())
    return actions


def emit_wait_transitions(ctx: CacheGenContext, name: str, descriptor: TransientDescriptor) -> None:
    """Emit the own-transaction transitions (advance / complete) for *descriptor*."""
    stage = descriptor.current_stage
    for trigger in stage.triggers:
        event = MessageEvent(trigger.message, guard=trigger.condition)
        actions = implicit_trigger_actions(trigger) + list(trigger.actions)
        if trigger.next_stage is not None:
            advanced = ctx.advanced(descriptor, trigger.next_stage)
            next_name = ctx.ensure_state(advanced)
            ctx.fsm.add_transition(
                FsmTransition(state=name, event=event, actions=tuple(actions), next_state=next_name)
            )
            continue

        # Completion.
        final_stable = descriptor.logical_target if descriptor.redirected else (
            trigger.final_state or descriptor.final
        )
        if not descriptor.access_performed and not descriptor.stale:
            actions.append(PerformAccess())
        if not descriptor.stale:
            actions.extend(descriptor.completion_actions)
        actions.extend(descriptor.deferred)
        ctx.fsm.add_transition(
            FsmTransition(state=name, event=event, actions=tuple(actions), next_state=final_stable)
        )
