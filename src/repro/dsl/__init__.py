"""Stable State Protocol (SSP) specification layer.

This subpackage provides the data model used to describe an *atomic* directory
coherence protocol -- the textbook tables with only stable states (paper
Tables I and II).  The :mod:`repro.core` generator consumes these
specifications and produces the concurrent protocol with transient states.

The main entry points are:

* :class:`repro.dsl.ssp.ProtocolSpec` -- a complete SSP (cache controller
  spec, directory controller spec, message catalog, network assumptions).
* :class:`repro.dsl.builder.CacheSpecBuilder` /
  :class:`repro.dsl.builder.DirectorySpecBuilder` -- fluent builders used by
  the bundled protocols in :mod:`repro.protocols`; together they play the role
  of the paper's domain specific language, embedded in Python.
"""

from repro.dsl.types import (
    AccessKind,
    ControllerKind,
    Dest,
    MessageClass,
    Permission,
)
from repro.dsl.messages import MessageCatalog, MessageType
from repro.dsl.ssp import (
    AwaitStage,
    ControllerSpec,
    ProtocolSpec,
    Reaction,
    StateSpec,
    Transaction,
    Trigger,
)
from repro.dsl.builder import CacheSpecBuilder, DirectorySpecBuilder, ProtocolBuilder
from repro.dsl.errors import SpecError, ValidationError

__all__ = [
    "AccessKind",
    "AwaitStage",
    "CacheSpecBuilder",
    "ControllerKind",
    "ControllerSpec",
    "Dest",
    "DirectorySpecBuilder",
    "MessageCatalog",
    "MessageClass",
    "MessageType",
    "Permission",
    "ProtocolBuilder",
    "ProtocolSpec",
    "Reaction",
    "SpecError",
    "StateSpec",
    "Transaction",
    "Trigger",
    "ValidationError",
]
