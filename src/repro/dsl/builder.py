"""Fluent builders for SSP specifications.

The bundled protocols in :mod:`repro.protocols` are written with these
builders; they read close to the paper's textual DSL (Listing 1) while staying
plain Python.  A typical cache-side snippet::

    cache = CacheSpecBuilder(initial="I")
    cache.state("I", Permission.NONE)
    cache.state("S", Permission.READ)
    cache.state("M", Permission.READ_WRITE)

    (cache.on_access("I", AccessKind.LOAD)
          .request("GetS")
          .await_stage("D")
          .when("Data", receives_data=True).complete("S")
          .done())
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable

from repro.dsl.errors import SpecError
from repro.dsl.messages import MessageCatalog, MessageType
from repro.dsl.ssp import (
    AwaitStage,
    ControllerSpec,
    ProtocolSpec,
    Reaction,
    StateSpec,
    Transaction,
    Trigger,
)
from repro.dsl.types import (
    AccessKind,
    Action,
    ControllerKind,
    Dest,
    MessageClass,
    Permission,
    Send,
)


class _TransactionBuilder:
    """Builds one :class:`Transaction` via chained calls."""

    def __init__(self, parent: "_ControllerBuilder", start_state: str, initiator):
        self._parent = parent
        self._start_state = start_state
        self._initiator = initiator
        self._request: Send | None = None
        self._issue_actions: list[Action] = []
        self._stages: list[tuple[str, list[Trigger]]] = []
        self._final_state: str | None = None
        self._completion_actions: list[Action] = []

    # -- issuing -------------------------------------------------------------
    def request(self, message: str, *, with_data: bool = False) -> "_TransactionBuilder":
        """Issue *message* to the directory to start the transaction."""
        self._request = Send(message=message, to=Dest.DIRECTORY, with_data=with_data)
        return self

    def issue(self, *actions: Action) -> "_TransactionBuilder":
        """Add explicit actions performed when the transaction starts."""
        self._issue_actions.extend(actions)
        return self

    # -- waiting -------------------------------------------------------------
    def await_stage(self, name: str) -> "_TransactionBuilder":
        """Open a new waiting stage (becomes one transient state)."""
        if any(existing == name for existing, _ in self._stages):
            raise SpecError(f"duplicate stage name {name!r}")
        self._stages.append((name, []))
        return self

    def when(
        self,
        message: str,
        *,
        condition: str | None = None,
        receives_data: bool = False,
        latches_ack_count: bool = False,
        counts_ack: bool = False,
        actions: Iterable[Action] = (),
    ) -> "_TriggerBuilder":
        """Declare a trigger in the currently open stage."""
        if not self._stages:
            raise SpecError("when() called before await_stage()")
        return _TriggerBuilder(
            self,
            message=message,
            condition=condition,
            receives_data=receives_data,
            latches_ack_count=latches_ack_count,
            counts_ack=counts_ack,
            actions=tuple(actions),
        )

    def _add_trigger(self, trigger: Trigger) -> None:
        self._stages[-1][1].append(trigger)

    # -- completion ----------------------------------------------------------
    def completes_to(self, state: str, *actions: Action) -> "_TransactionBuilder":
        """Set the default final state (for silent / no-wait transactions)."""
        self._final_state = state
        self._completion_actions.extend(actions)
        return self

    def on_complete(self, *actions: Action) -> "_TransactionBuilder":
        self._completion_actions.extend(actions)
        return self

    def done(self) -> Transaction:
        """Finish and register the transaction with the controller builder."""
        final_state = self._final_state
        if final_state is None:
            final_state = self._infer_final_state()
        transaction = Transaction(
            start_state=self._start_state,
            initiator=self._initiator,
            final_state=final_state,
            request=self._request,
            issue_actions=tuple(self._issue_actions),
            stages=tuple(
                AwaitStage(name=name, triggers=tuple(triggers)) for name, triggers in self._stages
            ),
            completion_actions=tuple(self._completion_actions),
        )
        self._parent._register_transaction(transaction)
        return transaction

    def _infer_final_state(self) -> str:
        finals = {
            trigger.final_state
            for _, triggers in self._stages
            for trigger in triggers
            if trigger.completes and trigger.final_state is not None
        }
        if len(finals) == 1:
            return next(iter(finals))
        if not finals:
            raise SpecError(
                f"transaction from {self._start_state!r} has no final state; "
                "call completes_to() or give a final state to a completing trigger"
            )
        # Multiple completion states (e.g. MESI I->S or I->E): the transaction's
        # nominal final state is the one with the *least* permission, which is
        # the conservative choice for permission assignment.  Permission ties
        # (MESI's S/E are both read-only here) break toward the name sorting
        # last, matching the primer's IS_D naming — `finals` is a set, so an
        # unordered min() would leave the choice to hash randomization.
        parent_states = self._parent._states
        return min(sorted(finals, reverse=True),
                   key=lambda name: parent_states[name].permission)


class _TriggerBuilder:
    """Terminates a ``when(...)`` clause with ``complete()`` or ``goto_stage()``."""

    def __init__(self, transaction: _TransactionBuilder, **kwargs):
        self._transaction = transaction
        self._kwargs = kwargs

    def complete(self, final_state: str | None = None, *actions: Action) -> _TransactionBuilder:
        trigger = Trigger(
            message=self._kwargs["message"],
            condition=self._kwargs["condition"],
            next_stage=None,
            final_state=final_state,
            actions=self._kwargs["actions"] + tuple(actions),
            receives_data=self._kwargs["receives_data"],
            latches_ack_count=self._kwargs["latches_ack_count"],
            counts_ack=self._kwargs["counts_ack"],
        )
        self._transaction._add_trigger(trigger)
        return self._transaction

    def goto_stage(self, stage: str, *actions: Action) -> _TransactionBuilder:
        trigger = Trigger(
            message=self._kwargs["message"],
            condition=self._kwargs["condition"],
            next_stage=stage,
            final_state=None,
            actions=self._kwargs["actions"] + tuple(actions),
            receives_data=self._kwargs["receives_data"],
            latches_ack_count=self._kwargs["latches_ack_count"],
            counts_ack=self._kwargs["counts_ack"],
        )
        self._transaction._add_trigger(trigger)
        return self._transaction

    def stay(self, *actions: Action) -> _TransactionBuilder:
        """Trigger that is absorbed without advancing (e.g. an early Inv-Ack)."""
        current_stage = self._transaction._stages[-1][0]
        return self.goto_stage(current_stage, *actions)


class _ControllerBuilder:
    kind: ControllerKind

    def __init__(self, initial: str):
        self._states: dict[str, StateSpec] = {}
        self._initial = initial
        self._transactions: list[Transaction] = []
        self._reactions: list[Reaction] = []

    def state(
        self,
        name: str,
        permission: Permission = Permission.NONE,
        *,
        owner_view: str | None = None,
    ) -> "_ControllerBuilder":
        if name in self._states:
            raise SpecError(f"duplicate state {name!r}")
        self._states[name] = StateSpec(name=name, permission=permission, owner_view=owner_view)
        return self

    def states(self, *specs) -> "_ControllerBuilder":
        for spec in specs:
            if isinstance(spec, StateSpec):
                self._states[spec.name] = spec
            else:
                self.state(*spec)
        return self

    def _register_transaction(self, transaction: Transaction) -> None:
        self._check_state(transaction.start_state)
        self._check_state(transaction.final_state)
        self._transactions.append(transaction)

    def _check_state(self, name: str) -> None:
        if name not in self._states:
            raise SpecError(f"unknown state {name!r}")

    def react(
        self,
        state: str,
        message: str,
        next_state: str,
        *actions: Action,
        guard: str | None = None,
    ) -> "_ControllerBuilder":
        """Immediate reaction: handle *message* in *state*, go to *next_state*."""
        self._check_state(state)
        self._check_state(next_state)
        self._reactions.append(
            Reaction(state=state, message=message, next_state=next_state,
                     actions=tuple(actions), guard=guard)
        )
        return self

    def absorb(
        self, state: str, message: str, *, guard: str | None = None
    ) -> "_ControllerBuilder":
        """Absorption reaction: consume *message* in *state* idempotently.

        Shorthand for a no-action self-loop -- the spec-level form of the
        absorption transitions the hardening pass (:mod:`repro.core.harden`)
        generates, for protocols that want to declare duplicate tolerance
        explicitly.
        """
        return self.react(state, message, state, guard=guard)

    def build(self) -> ControllerSpec:
        return ControllerSpec(
            kind=self.kind,
            states=dict(self._states),
            initial_state=self._initial,
            transactions=list(self._transactions),
            reactions=list(self._reactions),
        )


class CacheSpecBuilder(_ControllerBuilder):
    """Builder for the cache-controller SSP."""

    kind = ControllerKind.CACHE

    def on_access(self, state: str, access: AccessKind) -> _TransactionBuilder:
        self._check_state(state)
        return _TransactionBuilder(self, state, access)


class DirectorySpecBuilder(_ControllerBuilder):
    """Builder for the directory-controller SSP."""

    kind = ControllerKind.DIRECTORY

    def on_request(self, state: str, request: str) -> _TransactionBuilder:
        self._check_state(state)
        return _TransactionBuilder(self, state, request)


class ProtocolBuilder:
    """Assembles a full :class:`ProtocolSpec` (messages + cache + directory)."""

    def __init__(self, name: str, *, ordered_network: bool = True, description: str = ""):
        self.name = name
        self.ordered_network = ordered_network
        self.description = description
        self.messages = MessageCatalog()

    # -- message declarations -------------------------------------------------
    def request(self, name: str, **kwargs) -> MessageType:
        return self.messages.declare(name, MessageClass.REQUEST, **kwargs)

    def forward(self, name: str, **kwargs) -> MessageType:
        return self.messages.declare(name, MessageClass.FORWARD, **kwargs)

    def response(self, name: str, **kwargs) -> MessageType:
        return self.messages.declare(name, MessageClass.RESPONSE, **kwargs)

    # -- assembly --------------------------------------------------------------
    def build(self, cache: CacheSpecBuilder, directory: DirectorySpecBuilder) -> ProtocolSpec:
        return ProtocolSpec(
            name=self.name,
            cache=cache.build(),
            directory=directory.build(),
            messages=self.messages,
            ordered_network=self.ordered_network,
            description=self.description,
        )
