"""Exception hierarchy for the SSP specification layer and the generator."""

from __future__ import annotations


class ProtoGenError(Exception):
    """Base class for every error raised by the repro package."""


class SpecError(ProtoGenError):
    """An SSP specification is structurally malformed.

    Raised while *building* a specification: unknown state names, duplicate
    transitions for the same (state, event) pair, references to undeclared
    message types, and so on.
    """


class ValidationError(ProtoGenError):
    """An SSP specification is well formed but not a valid atomic protocol.

    Raised by :mod:`repro.dsl.validation` when the atomic-model checks fail,
    for example when a stable state grants write permission to two different
    controllers, or a transaction references a final state that does not
    exist.
    """


class GenerationError(ProtoGenError):
    """The generator could not complete (e.g. the SSP violates an assumption
    that ProtoGen relies on, such as a missing restart transaction)."""


class ParseError(ProtoGenError):
    """The text DSL could not be parsed."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        location = ""
        if line is not None:
            location = f" (line {line}" + (f", column {column}" if column is not None else "") + ")"
        super().__init__(message + location)


class VerificationError(ProtoGenError):
    """An invariant was violated during model checking or simulation."""

    def __init__(self, message: str, trace: list | None = None):
        super().__init__(message)
        self.trace = trace or []
