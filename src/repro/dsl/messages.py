"""Message type declarations and the per-protocol message catalog."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Iterator

from repro.dsl.errors import SpecError
from repro.dsl.types import MessageClass


@dataclass(frozen=True)
class MessageType:
    """Declaration of a coherence message type.

    Attributes
    ----------
    name:
        Unique message name, e.g. ``"GetM"`` or ``"Fwd_GetS"``.
    message_class:
        REQUEST (cache -> directory), FORWARD (directory -> cache) or
        RESPONSE (data / acknowledgments, any direction).
    carries_data:
        True if the message carries a copy of the cache block.
    carries_ack_count:
        True if the message carries an acknowledgment count (e.g. the Data
        response for a GetM that must also collect invalidation acks).
    renamed_from:
        For messages created by the preprocessing step, the original name in
        the input SSP.  ``None`` for user-declared messages.
    """

    name: str
    message_class: MessageClass
    carries_data: bool = False
    carries_ack_count: bool = False
    renamed_from: str | None = None

    @property
    def virtual_channel(self) -> int:
        return self.message_class.virtual_channel

    def rename(self, new_name: str) -> "MessageType":
        return replace(self, name=new_name, renamed_from=self.name)


class MessageCatalog:
    """The set of message types used by a protocol.

    The catalog behaves like a read-mostly mapping from name to
    :class:`MessageType`.  The preprocessing step adds renamed forwarded
    requests to it.
    """

    def __init__(self, messages: Iterable[MessageType] = ()) -> None:
        self._messages: dict[str, MessageType] = {}
        for message in messages:
            self.add(message)

    # -- container protocol -------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._messages

    def __getitem__(self, name: str) -> MessageType:
        try:
            return self._messages[name]
        except KeyError:
            raise SpecError(f"unknown message type {name!r}") from None

    def __iter__(self) -> Iterator[MessageType]:
        return iter(self._messages.values())

    def __len__(self) -> int:
        return len(self._messages)

    # -- mutation ------------------------------------------------------------
    def add(self, message: MessageType) -> MessageType:
        if message.name in self._messages:
            raise SpecError(f"duplicate message type {message.name!r}")
        self._messages[message.name] = message
        return message

    def declare(
        self,
        name: str,
        message_class: MessageClass,
        *,
        carries_data: bool = False,
        carries_ack_count: bool = False,
    ) -> MessageType:
        """Declare and register a new message type."""
        return self.add(
            MessageType(
                name=name,
                message_class=message_class,
                carries_data=carries_data,
                carries_ack_count=carries_ack_count,
            )
        )

    def derive_renamed(self, original: str, new_name: str) -> MessageType:
        """Register a renamed copy of *original* (used by preprocessing)."""
        base = self[original]
        if new_name in self._messages:
            return self._messages[new_name]
        renamed = base.rename(new_name)
        self._messages[new_name] = renamed
        return renamed

    # -- queries -------------------------------------------------------------
    def by_class(self, message_class: MessageClass) -> list[MessageType]:
        return [m for m in self._messages.values() if m.message_class is message_class]

    @property
    def requests(self) -> list[MessageType]:
        return self.by_class(MessageClass.REQUEST)

    @property
    def forwards(self) -> list[MessageType]:
        return self.by_class(MessageClass.FORWARD)

    @property
    def responses(self) -> list[MessageType]:
        return self.by_class(MessageClass.RESPONSE)

    def names(self) -> list[str]:
        return list(self._messages)

    def copy(self) -> "MessageCatalog":
        return MessageCatalog(self._messages.values())
