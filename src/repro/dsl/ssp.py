"""Stable State Protocol (SSP) representation.

An SSP describes a directory protocol as if every coherence transaction were
atomic: only stable states, and for each stable state what happens on a core
access or an incoming coherence message.  This is the information found in
the paper's Tables I and II.

Two behaviours are distinguished:

* A :class:`Transaction` is initiated by a core access (cache side) or by an
  incoming request (directory side) and may have to *wait* for one or more
  responses before it completes.  Waiting is expressed as a chain of
  :class:`AwaitStage` objects, each listing the :class:`Trigger` messages that
  advance or complete the transaction.  Each stage becomes a transient state
  in the generated protocol (Step 2 of the paper).
* A :class:`Reaction` handles an incoming message immediately, with no
  waiting -- e.g. a cache in M receiving a forwarded GetS, or the directory
  in S receiving a PutS.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping

from repro.dsl.errors import SpecError
from repro.dsl.messages import MessageCatalog
from repro.dsl.types import AccessKind, Action, ControllerKind, Permission, Send


@dataclass(frozen=True)
class StateSpec:
    """A stable controller state.

    ``owner_view`` is only meaningful for directory states: it names the
    stable *cache* state that the current owner is believed to be in while the
    directory is in this state (``"M"`` when the directory is in M, ``"O"``
    when in O, ...).  The preprocessing step uses it to disambiguate forwarded
    requests when the input SSP does not annotate its Send actions.
    """

    name: str
    permission: Permission = Permission.NONE
    owner_view: str | None = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass(frozen=True)
class Trigger:
    """One message that advances an :class:`AwaitStage`.

    Attributes
    ----------
    message:
        Name of the message type that fires this trigger.
    condition:
        Optional guard evaluated against the message/controller state:

        * ``None`` -- always fires;
        * ``"ack_count_zero"`` -- the message's ack count is zero (no
          outstanding invalidations);
        * ``"ack_count_nonzero"`` -- the message carries a non-zero ack count;
        * ``"acks_complete"`` -- after counting this acknowledgment, all
          expected acknowledgments have been received ("Last Inv-Ack");
        * ``"acks_incomplete"`` -- acknowledgments are still outstanding.
    next_stage:
        Name of the stage to move to, or ``None`` if the trigger completes the
        transaction.
    final_state:
        Stable state entered when the transaction completes via this trigger.
        ``None`` means "use the transaction's default final state".
    actions:
        Extra actions performed when the trigger fires (beyond the implicit
        bookkeeping selected by the boolean flags below).
    receives_data / latches_ack_count / counts_ack:
        Implicit bookkeeping: copy the message data into the block, latch the
        expected-ack count, or count one received acknowledgment.
    """

    message: str
    condition: str | None = None
    next_stage: str | None = None
    final_state: str | None = None
    actions: tuple[Action, ...] = ()
    receives_data: bool = False
    latches_ack_count: bool = False
    counts_ack: bool = False

    VALID_CONDITIONS = (
        None,
        "ack_count_zero",
        "ack_count_nonzero",
        "acks_complete",
        "acks_incomplete",
    )

    def __post_init__(self) -> None:
        if self.condition not in self.VALID_CONDITIONS:
            raise SpecError(f"unknown trigger condition {self.condition!r}")

    @property
    def completes(self) -> bool:
        return self.next_stage is None


@dataclass(frozen=True)
class AwaitStage:
    """One waiting step of a transaction; becomes one transient state."""

    name: str
    triggers: tuple[Trigger, ...]

    def __post_init__(self) -> None:
        if not self.triggers:
            raise SpecError(f"await stage {self.name!r} has no triggers")

    def trigger_messages(self) -> set[str]:
        return {t.message for t in self.triggers}


@dataclass(frozen=True)
class Transaction:
    """A transaction initiated in a stable state.

    Cache side: ``initiator`` is an :class:`AccessKind` (load / store /
    replacement).  Directory side: ``initiator`` is the name of the incoming
    request message (GetS, GetM, PutM, ...).

    ``request`` is the message issued to start the transaction (``None`` for
    silent transitions such as MESI's E->M upgrade on a store, or for
    directory transactions, which never issue a request of their own --
    their ``issue_actions`` contain any forwards/responses they send).
    """

    start_state: str
    initiator: AccessKind | str
    final_state: str
    request: Send | None = None
    issue_actions: tuple[Action, ...] = ()
    stages: tuple[AwaitStage, ...] = ()
    completion_actions: tuple[Action, ...] = ()

    def __post_init__(self) -> None:
        names = [stage.name for stage in self.stages]
        if len(set(names)) != len(names):
            raise SpecError(f"duplicate await-stage names in transaction from {self.start_state}")
        for stage in self.stages:
            for trigger in stage.triggers:
                if trigger.next_stage is not None and trigger.next_stage not in names:
                    raise SpecError(
                        f"trigger for {trigger.message!r} references unknown stage "
                        f"{trigger.next_stage!r} in transaction from {self.start_state}"
                    )

    @property
    def is_silent(self) -> bool:
        """True when the transaction needs no messages at all (e.g. E->M)."""
        return self.request is None and not self.stages and not self.issue_actions

    @property
    def first_stage(self) -> AwaitStage | None:
        return self.stages[0] if self.stages else None

    def stage(self, name: str) -> AwaitStage:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise SpecError(f"unknown stage {name!r}")

    def stage_index(self, name: str) -> int:
        for index, stage in enumerate(self.stages):
            if stage.name == name:
                return index
        raise SpecError(f"unknown stage {name!r}")

    def all_actions(self) -> list[Action]:
        actions: list[Action] = list(self.issue_actions)
        if self.request is not None:
            actions.append(self.request)
        for stage in self.stages:
            for trigger in stage.triggers:
                actions.extend(trigger.actions)
        actions.extend(self.completion_actions)
        return actions


@dataclass(frozen=True)
class Reaction:
    """Immediate handling of an incoming message in a stable state."""

    state: str
    message: str
    next_state: str
    actions: tuple[Action, ...] = ()
    # Optional guard on the sender of the message relative to the directory's
    # auxiliary state.  Used by directory SSPs, e.g. "PutM from the owner" vs
    # "PutM from a non-owner".
    guard: str | None = None

    VALID_GUARDS = (None, "from_owner", "not_from_owner", "from_sharer", "not_from_sharer",
                    "last_sharer", "not_last_sharer")

    def __post_init__(self) -> None:
        if self.guard not in self.VALID_GUARDS:
            raise SpecError(f"unknown reaction guard {self.guard!r}")

    @property
    def is_absorb(self) -> bool:
        """True for a no-action self-loop: the message is consumed
        idempotently (duplicate-tolerant absorption)."""
        return self.next_state == self.state and not self.actions


@dataclass
class ControllerSpec:
    """The SSP of one controller (cache or directory)."""

    kind: ControllerKind
    states: dict[str, StateSpec]
    initial_state: str
    transactions: list[Transaction] = field(default_factory=list)
    reactions: list[Reaction] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.initial_state not in self.states:
            raise SpecError(f"initial state {self.initial_state!r} is not declared")

    # -- queries -------------------------------------------------------------
    def state(self, name: str) -> StateSpec:
        try:
            return self.states[name]
        except KeyError:
            raise SpecError(f"unknown state {name!r}") from None

    def state_names(self) -> list[str]:
        return list(self.states)

    def transactions_from(self, state: str) -> list[Transaction]:
        return [t for t in self.transactions if t.start_state == state]

    def transaction_for(self, state: str, initiator: AccessKind | str) -> Transaction | None:
        for transaction in self.transactions:
            if transaction.start_state == state and transaction.initiator == initiator:
                return transaction
        return None

    def reactions_in(self, state: str) -> list[Reaction]:
        return [r for r in self.reactions if r.state == state]

    def reactions_for(self, state: str, message: str) -> list[Reaction]:
        return [r for r in self.reactions if r.state == state and r.message == message]

    def messages_handled_in(self, state: str) -> set[str]:
        handled = {r.message for r in self.reactions_in(state)}
        for transaction in self.transactions_from(state):
            if not isinstance(transaction.initiator, AccessKind):
                handled.add(transaction.initiator)
        return handled

    def accesses_starting_transactions(self, state: str) -> set[AccessKind]:
        return {
            t.initiator
            for t in self.transactions_from(state)
            if isinstance(t.initiator, AccessKind)
        }

    def request_for_access(self, state: str, access: AccessKind) -> str | None:
        """Name of the request message that *access* issues from *state*."""
        transaction = self.transaction_for(state, access)
        if transaction is None or transaction.request is None:
            return None
        return transaction.request.message

    # -- mutation helpers used by preprocessing ------------------------------
    def replace_transaction(self, old: Transaction, new: Transaction) -> None:
        index = self.transactions.index(old)
        self.transactions[index] = new

    def replace_reaction(self, old: Reaction, new: Reaction) -> None:
        index = self.reactions.index(old)
        self.reactions[index] = new

    def copy(self) -> "ControllerSpec":
        return ControllerSpec(
            kind=self.kind,
            states=dict(self.states),
            initial_state=self.initial_state,
            transactions=list(self.transactions),
            reactions=list(self.reactions),
        )


@dataclass
class ProtocolSpec:
    """A complete stable state protocol: cache + directory + message catalog."""

    name: str
    cache: ControllerSpec
    directory: ControllerSpec
    messages: MessageCatalog
    # True if the protocol assumes point-to-point ordering in the network
    # (Section VI-C discusses an MSI protocol that does not).
    ordered_network: bool = True
    description: str = ""

    def __post_init__(self) -> None:
        if self.cache.kind is not ControllerKind.CACHE:
            raise SpecError("ProtocolSpec.cache must be a CACHE controller spec")
        if self.directory.kind is not ControllerKind.DIRECTORY:
            raise SpecError("ProtocolSpec.directory must be a DIRECTORY controller spec")

    def copy(self) -> "ProtocolSpec":
        return ProtocolSpec(
            name=self.name,
            cache=self.cache.copy(),
            directory=self.directory.copy(),
            messages=self.messages.copy(),
            ordered_network=self.ordered_network,
            description=self.description,
        )

    # Convenience queries used throughout the generator ----------------------
    def forwarded_messages(self) -> list[str]:
        from repro.dsl.types import MessageClass

        return [m.name for m in self.messages.by_class(MessageClass.FORWARD)]

    def request_messages(self) -> list[str]:
        from repro.dsl.types import MessageClass

        return [m.name for m in self.messages.by_class(MessageClass.REQUEST)]

    def cache_arrival_states(self, forwarded_message: str) -> list[str]:
        """Stable cache states in which *forwarded_message* can arrive."""
        states = []
        for reaction in self.cache.reactions:
            if reaction.message == forwarded_message and reaction.state not in states:
                states.append(reaction.state)
        for transaction in self.cache.transactions:
            if transaction.initiator == forwarded_message and transaction.start_state not in states:
                states.append(transaction.start_state)
        return states
