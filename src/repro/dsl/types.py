"""Core enumerations and action vocabulary shared by the SSP layer, the
generator and the execution substrate.

The action vocabulary is deliberately small: it is the set of primitive
operations that appear in the textbook protocol tables (paper Tables I, II
and VI) -- "send Data to requestor and Dir", "add requestor to Sharers",
"set Owner = requestor", ack-counter bookkeeping, and the handful of
bookkeeping actions that the generator itself inserts (saving a requestor ID
for a deferred response, performing the pending core access when a
transaction completes, ...).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Permission(enum.IntEnum):
    """Coherence access permission carried by a controller state.

    The integer ordering is meaningful: ``NONE < READ < READ_WRITE``.
    """

    NONE = 0
    READ = 1
    READ_WRITE = 2

    def allows(self, access: "AccessKind") -> bool:
        """Return True if this permission level allows *access* to hit locally."""
        if access is AccessKind.LOAD:
            return self >= Permission.READ
        if access is AccessKind.STORE:
            return self >= Permission.READ_WRITE
        # A replacement never "hits"; it always needs a transaction (or is a
        # silent downgrade which the SSP expresses as a transaction with no
        # request message).
        return False


class AccessKind(enum.Enum):
    """Core-side accesses that can start a coherence transaction."""

    LOAD = "load"
    STORE = "store"
    REPLACEMENT = "replacement"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class ControllerKind(enum.Enum):
    """The two controller roles in a flat directory protocol."""

    CACHE = "cache"
    DIRECTORY = "directory"


class MessageClass(enum.Enum):
    """Coherence message classes; each class travels on its own virtual network.

    Keeping requests, forwarded requests and responses on separate virtual
    channels is the standard way directory protocols avoid protocol-level
    deadlock, and the paper assumes the user assigns messages to virtual
    channels (Section IV-C).
    """

    REQUEST = "request"
    FORWARD = "forward"
    RESPONSE = "response"

    @property
    def virtual_channel(self) -> int:
        return {"request": 0, "forward": 1, "response": 2}[self.value]


class Dest(enum.Enum):
    """Destination selectors used by :class:`Send` actions."""

    DIRECTORY = "directory"
    REQUESTOR = "requestor"
    OWNER = "owner"
    SHARERS = "sharers"
    SELF = "self"


# ---------------------------------------------------------------------------
# Action vocabulary
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Action:
    """Base class for all protocol actions (marker type)."""


@dataclass(frozen=True)
class Send(Action):
    """Send a coherence message.

    ``recipient_state`` is an optional annotation used only on directory
    actions that forward requests to a cache: it names the stable cache state
    the recipient is believed to be in.  The preprocessing step (Section V-A)
    uses it to rename forwarded requests so that each forwarded request type
    can arrive at exactly one stable cache state.
    """

    message: str
    to: Dest
    with_data: bool = False
    with_ack_count: bool = False
    recipient_state: str | None = None
    # Set by the generator for Case-2 deferred responses: the index of the
    # saved-requestor slot that holds the destination cache ID.
    requestor_slot: int | None = None
    # Set by the generator for Case-2 deferred responses whose *requestor
    # field* must name the cache the redirecting forward was sent for (not
    # the requestor of whatever message completes the own transaction): the
    # index of the saved-requestor slot holding that cache ID.  Needed when
    # the response travels to the directory, which reads the requestor to
    # answer / record the right cache (e.g. MOSI's owner-recall Data).
    requestor_from_slot: int | None = None

    def renamed(self, new_message: str) -> "Send":
        return Send(
            message=new_message,
            to=self.to,
            with_data=self.with_data,
            with_ack_count=self.with_ack_count,
            recipient_state=self.recipient_state,
            requestor_slot=self.requestor_slot,
            requestor_from_slot=self.requestor_from_slot,
        )


@dataclass(frozen=True)
class SetOwnerToRequestor(Action):
    """Directory: record the requestor as the new owner of the block."""


@dataclass(frozen=True)
class ClearOwner(Action):
    """Directory: forget the owner."""


@dataclass(frozen=True)
class AddRequestorToSharers(Action):
    """Directory: add the requestor to the sharer list."""


@dataclass(frozen=True)
class AddOwnerToSharers(Action):
    """Directory: add the (previous) owner to the sharer list."""


@dataclass(frozen=True)
class RemoveRequestorFromSharers(Action):
    """Directory: remove the requestor from the sharer list."""


@dataclass(frozen=True)
class ClearSharers(Action):
    """Directory: empty the sharer list."""


@dataclass(frozen=True)
class CopyDataFromMessage(Action):
    """Store the data carried by the incoming message into the local copy."""


@dataclass(frozen=True)
class WriteDataToMemory(Action):
    """Directory/LLC: write the data carried by the incoming message back to memory."""


@dataclass(frozen=True)
class InvalidateData(Action):
    """Cache: drop the local copy of the data."""


@dataclass(frozen=True)
class SetAcksExpectedFromMessage(Action):
    """Cache: latch the acknowledgment count carried by a Data response."""


@dataclass(frozen=True)
class IncrementAcksReceived(Action):
    """Cache: count one incoming invalidation acknowledgment."""


@dataclass(frozen=True)
class ResetAckCounters(Action):
    """Cache: reset both ack counters at the start of a transaction."""


@dataclass(frozen=True)
class SaveRequestor(Action):
    """Generator-inserted: remember the requestor of a later-ordered forwarded
    request so a deferred response can be sent when the own transaction
    completes.  ``slot`` distinguishes multiple pending requestors."""

    slot: int = 0


@dataclass(frozen=True)
class PerformAccess(Action):
    """Generator-inserted: perform the core access that started the own
    transaction.  For protocols that allow the single access after an
    invalidation (the classic livelock fix, Section VI-B), this action is what
    performs the load/store even though the epoch has logically ended."""


@dataclass(frozen=True)
class StallMarker(Action):
    """Placeholder action used in rendered tables for stalled events."""


def is_data_send(action: Action) -> bool:
    """True if *action* sends a message whose contents depend on the block data."""
    return isinstance(action, Send) and action.with_data


def describe_action(action: Action) -> str:
    """Human-readable one-line description, used by the table backend."""
    if isinstance(action, Send):
        parts = [f"send {action.message}"]
        if action.with_data:
            parts.append("+Data")
        if action.with_ack_count:
            parts.append("+AckCount")
        dest = action.to.value
        if action.requestor_slot is not None:
            dest = f"saved requestor[{action.requestor_slot}]"
        parts.append(f"to {dest}")
        if action.requestor_from_slot is not None:
            parts.append(f"as saved requestor[{action.requestor_from_slot}]")
        return " ".join(parts)
    if isinstance(action, SetOwnerToRequestor):
        return "Owner := requestor"
    if isinstance(action, ClearOwner):
        return "Owner := none"
    if isinstance(action, AddRequestorToSharers):
        return "Sharers += requestor"
    if isinstance(action, AddOwnerToSharers):
        return "Sharers += owner"
    if isinstance(action, RemoveRequestorFromSharers):
        return "Sharers -= requestor"
    if isinstance(action, ClearSharers):
        return "Sharers := {}"
    if isinstance(action, CopyDataFromMessage):
        return "copy data from message"
    if isinstance(action, WriteDataToMemory):
        return "write data to memory"
    if isinstance(action, InvalidateData):
        return "invalidate data"
    if isinstance(action, SetAcksExpectedFromMessage):
        return "acksExpected := msg.ackCount"
    if isinstance(action, IncrementAcksReceived):
        return "acksReceived += 1"
    if isinstance(action, ResetAckCounters):
        return "reset ack counters"
    if isinstance(action, SaveRequestor):
        return f"save requestor [{action.slot}]"
    if isinstance(action, PerformAccess):
        return "perform pending access"
    if isinstance(action, StallMarker):
        return "stall"
    return repr(action)
