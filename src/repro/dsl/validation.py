"""Atomic-model validation of SSP specifications.

ProtoGen requires a *correct and complete* SSP as input (paper Section IV-C):
it refines the atomic specification, it does not repair it.  The checks here
catch the structural mistakes that would otherwise surface as confusing
generation errors or model-checking counterexamples much later:

* every state, message and stage referenced actually exists;
* every message a transaction awaits is declared as a RESPONSE (or FORWARD,
  for directory transactions awaiting data from an owner);
* the permission structure of the stable states is consistent with SWMR under
  the atomic model (at most one controller-visible writer state chain);
* forwarded requests are only sent by the directory and requests only by
  caches;
* every cache access in every stable state is either a hit (permission
  allows it) or starts a transaction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dsl.errors import ValidationError
from repro.dsl.messages import MessageCatalog
from repro.dsl.ssp import ControllerSpec, ProtocolSpec, Transaction
from repro.dsl.types import AccessKind, Action, ControllerKind, MessageClass, Permission, Send


@dataclass
class ValidationReport:
    """Outcome of validating an SSP."""

    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def error(self, message: str) -> None:
        self.errors.append(message)

    def warn(self, message: str) -> None:
        self.warnings.append(message)

    def raise_if_failed(self) -> None:
        if self.errors:
            raise ValidationError(
                "SSP validation failed:\n" + "\n".join(f"  - {e}" for e in self.errors)
            )


def validate_protocol(spec: ProtocolSpec, *, strict: bool = True) -> ValidationReport:
    """Validate *spec*; raise :class:`ValidationError` if *strict* and invalid."""
    report = ValidationReport()
    _validate_messages(spec, report)
    _validate_controller(spec.cache, spec.messages, report)
    _validate_controller(spec.directory, spec.messages, report)
    _validate_cache_accesses(spec, report)
    _validate_message_directions(spec, report)
    _validate_permissions(spec, report)
    if strict:
        report.raise_if_failed()
    return report


# ---------------------------------------------------------------------------
# individual checks
# ---------------------------------------------------------------------------


def _validate_messages(spec: ProtocolSpec, report: ValidationReport) -> None:
    if not spec.messages.requests:
        report.error("protocol declares no request messages")
    if not spec.messages.responses:
        report.error("protocol declares no response messages")


def _iter_sends(transaction: Transaction):
    for action in transaction.all_actions():
        if isinstance(action, Send):
            yield action


def _validate_controller(
    controller: ControllerSpec, messages: MessageCatalog, report: ValidationReport
) -> None:
    kind = controller.kind.value
    for transaction in controller.transactions:
        if transaction.start_state not in controller.states:
            report.error(f"{kind}: transaction starts in unknown state {transaction.start_state!r}")
        if transaction.final_state not in controller.states:
            report.error(f"{kind}: transaction ends in unknown state {transaction.final_state!r}")
        for send in _iter_sends(transaction):
            if send.message not in messages:
                report.error(f"{kind}: transaction sends undeclared message {send.message!r}")
        for stage in transaction.stages:
            for trigger in stage.triggers:
                if trigger.message not in messages:
                    report.error(
                        f"{kind}: stage {stage.name!r} awaits undeclared message "
                        f"{trigger.message!r}"
                    )
                if trigger.final_state is not None and trigger.final_state not in controller.states:
                    report.error(
                        f"{kind}: trigger {trigger.message!r} completes to unknown state "
                        f"{trigger.final_state!r}"
                    )
    for reaction in controller.reactions:
        if reaction.state not in controller.states:
            report.error(f"{kind}: reaction in unknown state {reaction.state!r}")
        if reaction.next_state not in controller.states:
            report.error(f"{kind}: reaction goes to unknown state {reaction.next_state!r}")
        if reaction.message not in messages:
            report.error(f"{kind}: reaction handles undeclared message {reaction.message!r}")
        for action in reaction.actions:
            if isinstance(action, Send) and action.message not in messages:
                report.error(f"{kind}: reaction sends undeclared message {action.message!r}")


def _validate_cache_accesses(spec: ProtocolSpec, report: ValidationReport) -> None:
    cache = spec.cache
    for state in cache.states.values():
        for access in (AccessKind.LOAD, AccessKind.STORE):
            hits = state.permission.allows(access)
            starts = cache.transaction_for(state.name, access) is not None
            if not hits and not starts:
                report.warn(
                    f"cache: {access} in state {state.name} neither hits nor starts a "
                    "transaction; the generated controller will treat it as impossible"
                )


def _validate_message_directions(spec: ProtocolSpec, report: ValidationReport) -> None:
    # Requests are issued by caches; forwarded requests are issued only by the
    # directory.  This is what lets caches use forwarded requests to deduce
    # serialization order, so we enforce it.
    for transaction in spec.cache.transactions:
        for send in _iter_sends(transaction):
            if send.message in spec.messages and \
                    spec.messages[send.message].message_class is MessageClass.FORWARD:
                report.error(
                    f"cache: transaction from {transaction.start_state!r} sends forwarded "
                    f"request {send.message!r}; only the directory may send forwards"
                )
    for reaction in spec.cache.reactions:
        for action in reaction.actions:
            if isinstance(action, Send) and action.message in spec.messages and \
                    spec.messages[action.message].message_class is MessageClass.FORWARD:
                report.error(
                    f"cache: reaction in {reaction.state!r} sends forwarded request "
                    f"{action.message!r}; only the directory may send forwards"
                )
    for transaction in spec.directory.transactions:
        for send in _iter_sends(transaction):
            if send.message in spec.messages and \
                    spec.messages[send.message].message_class is MessageClass.REQUEST:
                report.error(
                    f"directory: transaction in {transaction.start_state!r} issues request "
                    f"{send.message!r}; only caches may issue requests"
                )
    for reaction in spec.directory.reactions:
        for action in reaction.actions:
            if isinstance(action, Send) and action.message in spec.messages and \
                    spec.messages[action.message].message_class is MessageClass.REQUEST:
                report.error(
                    f"directory: reaction in {reaction.state!r} issues request "
                    f"{action.message!r}; only caches may issue requests"
                )


def _validate_permissions(spec: ProtocolSpec, report: ValidationReport) -> None:
    cache = spec.cache
    writable = [s.name for s in cache.states.values() if s.permission is Permission.READ_WRITE]
    if not writable:
        report.warn("cache: no stable state grants write permission (read-only protocol?)")
    # The directory must have a state from which it can supply data for the
    # very first request (the initial state).
    directory = spec.directory
    initial = directory.initial_state
    handled_in_initial = directory.messages_handled_in(initial)
    get_like = [m.name for m in spec.messages.requests if not m.name.lower().startswith("put")]
    missing = [m for m in get_like if m not in handled_in_initial]
    if missing:
        report.warn(
            f"directory: initial state {initial!r} does not handle request(s) {missing}; "
            "those requests can never be satisfied from an uncached block"
        )
