"""Bundled stable state protocol specifications and reference baselines.

Each module exposes a ``build()`` function returning a
:class:`repro.dsl.ssp.ProtocolSpec`:

* :mod:`repro.protocols.msi` -- the textbook MSI protocol (paper Tables I/II).
* :mod:`repro.protocols.mesi` -- MESI with an Exclusive state and silent E->M.
* :mod:`repro.protocols.mosi` -- MOSI with an Owned state; exercises the
  preprocessing renaming (paper Tables III/IV).
* :mod:`repro.protocols.msi_upgrade` -- MSI with Upgrade requests; exercises
  directory request reinterpretation (paper Section V-D1).
* :mod:`repro.protocols.msi_unordered` -- MSI with explicit handshakes for an
  interconnect without point-to-point ordering (paper Section VI-C).
* :mod:`repro.protocols.tso_cc` -- a simplified TSO-CC-style protocol without
  sharer tracking (paper Section VI-D).
* :mod:`repro.protocols.primer` -- the hand-written primer MSI controllers
  (stalling and non-stalling) used as comparison baselines for Table VI.
"""

from repro.protocols import msi, mesi, mosi, msi_unordered, msi_upgrade, primer, tso_cc

REGISTRY = {
    "MSI": msi.build,
    "MESI": mesi.build,
    "MOSI": mosi.build,
    "MSI-Upgrade": msi_upgrade.build,
    "MSI-Unordered": msi_unordered.build,
    "TSO-CC": tso_cc.build,
}


def available_protocols() -> list[str]:
    """Names of the bundled SSPs accepted by :func:`load`."""
    return list(REGISTRY)


def load(name: str):
    """Build the bundled SSP called *name* (see :func:`available_protocols`)."""
    try:
        factory = REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown protocol {name!r}; available: {', '.join(REGISTRY)}"
        ) from None
    return factory()


__all__ = [
    "REGISTRY",
    "available_protocols",
    "load",
    "mesi",
    "mosi",
    "msi",
    "msi_unordered",
    "msi_upgrade",
    "primer",
    "tso_cc",
]
