"""Stable state protocol for a MESI directory protocol.

MESI adds an E(xclusive) state: a cache that requests a read-only copy of an
uncached block is granted exclusive access (``Data_E``) and may later upgrade
to M *silently* on a store.  Because the E->M transition is silent, the
directory cannot distinguish an owner in E from an owner in M; the cache
reactions to forwarded requests are therefore identical in E and M, and the
generator treats {E, M} as a single arrival class (no renaming is needed).
"""

from __future__ import annotations

from repro.dsl.builder import CacheSpecBuilder, DirectorySpecBuilder, ProtocolBuilder
from repro.dsl.ssp import ProtocolSpec
from repro.dsl.types import (
    AccessKind,
    AddOwnerToSharers,
    AddRequestorToSharers,
    ClearOwner,
    ClearSharers,
    CopyDataFromMessage,
    Dest,
    Permission,
    RemoveRequestorFromSharers,
    Send,
    SetOwnerToRequestor,
)


def _declare_messages(protocol: ProtocolBuilder) -> None:
    protocol.request("GetS")
    protocol.request("GetM")
    protocol.request("PutS")
    protocol.request("PutE")
    protocol.request("PutM", carries_data=True)
    protocol.forward("Fwd_GetS")
    protocol.forward("Fwd_GetM")
    protocol.forward("Inv")
    protocol.response("Data", carries_data=True, carries_ack_count=True)
    protocol.response("Data_E", carries_data=True)
    protocol.response("Inv_Ack")
    protocol.response("Put_Ack")


def _add_store_transaction(cache: CacheSpecBuilder, start: str) -> None:
    (
        cache.on_access(start, AccessKind.STORE)
        .request("GetM")
        .await_stage("AD")
        .when("Data", condition="ack_count_zero", receives_data=True).complete("M")
        .when("Data", condition="ack_count_nonzero", receives_data=True,
              latches_ack_count=True).goto_stage("A")
        .when("Inv_Ack", counts_ack=True).stay()
        .await_stage("A")
        .when("Inv_Ack", condition="acks_complete", counts_ack=True).complete("M")
        .when("Inv_Ack", condition="acks_incomplete", counts_ack=True).stay()
        .done()
    )


def build_cache() -> CacheSpecBuilder:
    cache = CacheSpecBuilder(initial="I")
    cache.state("I", Permission.NONE)
    cache.state("S", Permission.READ)
    cache.state("E", Permission.READ)
    cache.state("M", Permission.READ_WRITE)

    # I --load--> S or E, depending on whether the directory had other sharers.
    (
        cache.on_access("I", AccessKind.LOAD)
        .request("GetS")
        .await_stage("D")
        .when("Data", receives_data=True).complete("S")
        .when("Data_E", receives_data=True).complete("E")
        .done()
    )
    _add_store_transaction(cache, "I")
    _add_store_transaction(cache, "S")
    # Silent upgrade on a store to an Exclusive block.
    cache.on_access("E", AccessKind.STORE).completes_to("M").done()

    # Replacements.
    (
        cache.on_access("S", AccessKind.REPLACEMENT)
        .request("PutS")
        .await_stage("A")
        .when("Put_Ack").complete("I")
        .done()
    )
    (
        cache.on_access("E", AccessKind.REPLACEMENT)
        .request("PutE")
        .await_stage("A")
        .when("Put_Ack").complete("I")
        .done()
    )
    (
        cache.on_access("M", AccessKind.REPLACEMENT)
        .request("PutM", with_data=True)
        .await_stage("A")
        .when("Put_Ack").complete("I")
        .done()
    )

    # Forwarded requests.
    cache.react("S", "Inv", "I", Send("Inv_Ack", Dest.REQUESTOR))
    for owner_state in ("E", "M"):
        cache.react(
            owner_state, "Fwd_GetS", "S",
            Send("Data", Dest.REQUESTOR, with_data=True),
            Send("Data", Dest.DIRECTORY, with_data=True),
        )
        cache.react(
            owner_state, "Fwd_GetM", "I",
            Send("Data", Dest.REQUESTOR, with_data=True),
        )
    return cache


def build_directory() -> DirectorySpecBuilder:
    directory = DirectorySpecBuilder(initial="I")
    directory.state("I")
    directory.state("S")
    # "E" at the directory means "exclusive access granted"; the owner may
    # have silently upgraded to M, which is why owner_view names the arrival
    # class representative.
    directory.state("E", owner_view="E")

    # State I: an uncached block is granted exclusively.
    directory.react(
        "I", "GetS", "E",
        Send("Data_E", Dest.REQUESTOR, with_data=True),
        SetOwnerToRequestor(),
    )
    directory.react(
        "I", "GetM", "E",
        Send("Data", Dest.REQUESTOR, with_data=True, with_ack_count=True),
        SetOwnerToRequestor(),
    )

    # State S
    directory.react(
        "S", "GetS", "S",
        Send("Data", Dest.REQUESTOR, with_data=True),
        AddRequestorToSharers(),
    )
    directory.react(
        "S", "GetM", "E",
        Send("Data", Dest.REQUESTOR, with_data=True, with_ack_count=True),
        Send("Inv", Dest.SHARERS),
        SetOwnerToRequestor(),
        ClearSharers(),
    )
    directory.react(
        "S", "PutS", "S",
        Send("Put_Ack", Dest.REQUESTOR),
        RemoveRequestorFromSharers(),
        guard="not_last_sharer",
    )
    directory.react(
        "S", "PutS", "I",
        Send("Put_Ack", Dest.REQUESTOR),
        RemoveRequestorFromSharers(),
        guard="last_sharer",
    )

    # State E (exclusive owner, possibly dirty)
    (
        directory.on_request("E", "GetS")
        .issue(
            Send("Fwd_GetS", Dest.OWNER, recipient_state="E"),
            AddRequestorToSharers(),
            AddOwnerToSharers(),
            ClearOwner(),
        )
        .await_stage("D")
        .when("Data", receives_data=True).complete("S")
        .done()
    )
    directory.react(
        "E", "GetM", "E",
        Send("Fwd_GetM", Dest.OWNER, recipient_state="E"),
        SetOwnerToRequestor(),
    )
    directory.react(
        "E", "PutM", "I",
        CopyDataFromMessage(),
        Send("Put_Ack", Dest.REQUESTOR),
        ClearOwner(),
        guard="from_owner",
    )
    directory.react(
        "E", "PutE", "I",
        Send("Put_Ack", Dest.REQUESTOR),
        ClearOwner(),
        guard="from_owner",
    )
    return directory


def build() -> ProtocolSpec:
    """Build the MESI stable state protocol."""
    protocol = ProtocolBuilder(
        "MESI",
        ordered_network=True,
        description="MESI directory protocol with silent E->M upgrade",
    )
    _declare_messages(protocol)
    return protocol.build(build_cache(), build_directory())
