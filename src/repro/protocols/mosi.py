"""Stable state protocol for a MOSI directory protocol.

MOSI adds an O(wned) state: a cache that holds dirty data and observes a
GetS keeps the block (as owner) and supplies data to readers directly,
avoiding a writeback to the LLC.  Because an owner can be in either M or O,
the natural SSP lets ``Fwd_GetS`` (and ``Fwd_GetM``) arrive at two different
stable states -- exactly the situation of the paper's Tables III and IV.  The
preprocessing step renames the O-state arrivals to ``O_Fwd_GetS`` /
``O_Fwd_GetM`` so a requesting cache can deduce the serialization order.

Design choices specific to this SSP (documented for the comparison in
DESIGN.md):

* A GetS that reaches the directory in M or O is forwarded to the owner,
  which supplies the data directly and keeps/becomes O -- the MOSI fast path.
* A GetM from a non-owner that reaches the directory in O is *recalled
  through the directory*: the owner returns the data to the directory, which
  then answers the requestor and invalidates the sharers.  (The primer's MOSI
  uses a direct owner-to-requestor transfer plus a separate ack count; the
  recall variant keeps every transaction a two-party exchange, which is the
  only structure our DSL's completion automaton expresses.)
* An owner upgrading O->M receives an ``AckCount`` response (no data -- its
  own copy is already the newest) and collects invalidation acks.
"""

from __future__ import annotations

from repro.dsl.builder import CacheSpecBuilder, DirectorySpecBuilder, ProtocolBuilder
from repro.dsl.ssp import ProtocolSpec
from repro.dsl.types import (
    AccessKind,
    AddRequestorToSharers,
    ClearOwner,
    ClearSharers,
    CopyDataFromMessage,
    Dest,
    Permission,
    RemoveRequestorFromSharers,
    Send,
    SetOwnerToRequestor,
)


def _declare_messages(protocol: ProtocolBuilder) -> None:
    protocol.request("GetS")
    protocol.request("GetM")
    protocol.request("PutS")
    protocol.request("PutO", carries_data=True)
    protocol.request("PutM", carries_data=True)
    protocol.forward("Fwd_GetS")
    protocol.forward("Fwd_GetM")
    protocol.forward("Inv")
    protocol.response("Data", carries_data=True, carries_ack_count=True)
    protocol.response("AckCount", carries_ack_count=True)
    protocol.response("Inv_Ack")
    protocol.response("Put_Ack")


def _add_data_store_transaction(cache: CacheSpecBuilder, start: str) -> None:
    """I->M / S->M: needs Data (with an ack count) plus invalidation acks."""
    (
        cache.on_access(start, AccessKind.STORE)
        .request("GetM")
        .await_stage("AD")
        .when("Data", condition="ack_count_zero", receives_data=True).complete("M")
        .when("Data", condition="ack_count_nonzero", receives_data=True,
              latches_ack_count=True).goto_stage("A")
        .when("Inv_Ack", counts_ack=True).stay()
        .await_stage("A")
        .when("Inv_Ack", condition="acks_complete", counts_ack=True).complete("M")
        .when("Inv_Ack", condition="acks_incomplete", counts_ack=True).stay()
        .done()
    )


def build_cache() -> CacheSpecBuilder:
    cache = CacheSpecBuilder(initial="I")
    cache.state("I", Permission.NONE)
    cache.state("S", Permission.READ)
    cache.state("O", Permission.READ)
    cache.state("M", Permission.READ_WRITE)

    (
        cache.on_access("I", AccessKind.LOAD)
        .request("GetS")
        .await_stage("D")
        .when("Data", receives_data=True).complete("S")
        .done()
    )
    _add_data_store_transaction(cache, "I")
    _add_data_store_transaction(cache, "S")
    # O->M: the owner already holds the newest data, so it only needs the
    # count of sharers to invalidate.
    (
        cache.on_access("O", AccessKind.STORE)
        .request("GetM")
        .await_stage("AC")
        .when("AckCount", condition="ack_count_zero").complete("M")
        .when("AckCount", condition="ack_count_nonzero", latches_ack_count=True).goto_stage("A")
        .when("Inv_Ack", counts_ack=True).stay()
        .await_stage("A")
        .when("Inv_Ack", condition="acks_complete", counts_ack=True).complete("M")
        .when("Inv_Ack", condition="acks_incomplete", counts_ack=True).stay()
        .done()
    )

    # Replacements.
    (
        cache.on_access("S", AccessKind.REPLACEMENT)
        .request("PutS")
        .await_stage("A")
        .when("Put_Ack").complete("I")
        .done()
    )
    (
        cache.on_access("O", AccessKind.REPLACEMENT)
        .request("PutO", with_data=True)
        .await_stage("A")
        .when("Put_Ack").complete("I")
        .done()
    )
    (
        cache.on_access("M", AccessKind.REPLACEMENT)
        .request("PutM", with_data=True)
        .await_stage("A")
        .when("Put_Ack").complete("I")
        .done()
    )

    # Forwarded requests (Table III: Fwd_GetS can arrive in M and in O).
    cache.react("S", "Inv", "I", Send("Inv_Ack", Dest.REQUESTOR))
    cache.react("M", "Fwd_GetS", "O", Send("Data", Dest.REQUESTOR, with_data=True))
    cache.react("M", "Fwd_GetM", "I", Send("Data", Dest.REQUESTOR, with_data=True))
    cache.react("O", "Fwd_GetS", "O", Send("Data", Dest.REQUESTOR, with_data=True))
    cache.react("O", "Fwd_GetM", "I", Send("Data", Dest.DIRECTORY, with_data=True))
    return cache


def build_directory() -> DirectorySpecBuilder:
    directory = DirectorySpecBuilder(initial="I")
    directory.state("I")
    directory.state("S")
    directory.state("O", owner_view="O")
    directory.state("M", owner_view="M")

    # State I
    directory.react(
        "I", "GetS", "S",
        Send("Data", Dest.REQUESTOR, with_data=True),
        AddRequestorToSharers(),
    )
    directory.react(
        "I", "GetM", "M",
        Send("Data", Dest.REQUESTOR, with_data=True, with_ack_count=True),
        SetOwnerToRequestor(),
    )

    # State S
    directory.react(
        "S", "GetS", "S",
        Send("Data", Dest.REQUESTOR, with_data=True),
        AddRequestorToSharers(),
    )
    directory.react(
        "S", "GetM", "M",
        Send("Data", Dest.REQUESTOR, with_data=True, with_ack_count=True),
        Send("Inv", Dest.SHARERS),
        SetOwnerToRequestor(),
        ClearSharers(),
    )
    directory.react(
        "S", "PutS", "S",
        Send("Put_Ack", Dest.REQUESTOR),
        RemoveRequestorFromSharers(),
        guard="not_last_sharer",
    )
    directory.react(
        "S", "PutS", "I",
        Send("Put_Ack", Dest.REQUESTOR),
        RemoveRequestorFromSharers(),
        guard="last_sharer",
    )

    # State M (single dirty owner, no sharers)
    directory.react(
        "M", "GetS", "O",
        Send("Fwd_GetS", Dest.OWNER, recipient_state="M"),
        AddRequestorToSharers(),
    )
    directory.react(
        "M", "GetM", "M",
        Send("Fwd_GetM", Dest.OWNER, recipient_state="M"),
        SetOwnerToRequestor(),
    )
    directory.react(
        "M", "PutM", "I",
        CopyDataFromMessage(),
        Send("Put_Ack", Dest.REQUESTOR),
        ClearOwner(),
        guard="from_owner",
    )

    # State O (dirty owner plus sharers)
    directory.react(
        "O", "GetS", "O",
        Send("Fwd_GetS", Dest.OWNER, recipient_state="O"),
        AddRequestorToSharers(),
    )
    # Owner upgrade O->M: only the sharer count is needed.
    directory.react(
        "O", "GetM", "M",
        Send("AckCount", Dest.REQUESTOR, with_ack_count=True),
        Send("Inv", Dest.SHARERS),
        ClearSharers(),
        guard="from_owner",
    )
    # GetM from a non-owner: recall the dirty data through the directory,
    # then answer the requestor and invalidate the sharers.
    (
        directory.on_request("O", "GetM")
        .issue(Send("Fwd_GetM", Dest.OWNER, recipient_state="O"))
        .await_stage("D")
        .when("Data", receives_data=True).complete("M")
        .on_complete(
            Send("Data", Dest.REQUESTOR, with_data=True, with_ack_count=True),
            Send("Inv", Dest.SHARERS),
            SetOwnerToRequestor(),
            ClearSharers(),
        )
        .done()
    )
    directory.react(
        "O", "PutO", "S",
        CopyDataFromMessage(),
        Send("Put_Ack", Dest.REQUESTOR),
        ClearOwner(),
        guard="from_owner",
    )
    directory.react(
        "O", "PutS", "O",
        Send("Put_Ack", Dest.REQUESTOR),
        RemoveRequestorFromSharers(),
    )
    return directory


def build() -> ProtocolSpec:
    """Build the MOSI stable state protocol."""
    protocol = ProtocolBuilder(
        "MOSI",
        ordered_network=True,
        description="MOSI directory protocol with an Owned state "
        "(exercises forwarded-request renaming, paper Tables III/IV)",
    )
    _declare_messages(protocol)
    return protocol.build(build_cache(), build_directory())
