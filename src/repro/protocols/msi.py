"""Stable state protocol for the textbook MSI directory protocol.

This is a direct transcription of the paper's Tables I and II:

* Table I (cache): I / S / M stable states, GetS / GetM / PutS / PutM
  requests, reactions to Fwd_GetS, Fwd_GetM and Inv.
* Table II (directory): I / S / M stable states with an owner field and a
  sharer list.

The protocol assumes point-to-point ordering in the interconnect.
"""

from __future__ import annotations

from repro.dsl.builder import CacheSpecBuilder, DirectorySpecBuilder, ProtocolBuilder
from repro.dsl.ssp import ProtocolSpec
from repro.dsl.types import (
    AccessKind,
    AddOwnerToSharers,
    AddRequestorToSharers,
    ClearOwner,
    ClearSharers,
    CopyDataFromMessage,
    Dest,
    Permission,
    RemoveRequestorFromSharers,
    Send,
    SetOwnerToRequestor,
)


def _declare_messages(protocol: ProtocolBuilder) -> None:
    protocol.request("GetS")
    protocol.request("GetM")
    protocol.request("PutS")
    protocol.request("PutM", carries_data=True)
    protocol.forward("Fwd_GetS")
    protocol.forward("Fwd_GetM")
    protocol.forward("Inv")
    protocol.response("Data", carries_data=True, carries_ack_count=True)
    protocol.response("Inv_Ack")
    protocol.response("Put_Ack")


def _add_store_transaction(cache: CacheSpecBuilder, start: str) -> None:
    """The I->M / S->M transaction (paper Listing 1 and Table V).

    The GetM can be answered either with Data carrying a zero ack count
    (completing immediately) or with Data carrying a non-zero ack count, in
    which case the cache must also collect one Inv_Ack per previous sharer.
    Inv_Acks can race ahead of the Data, so they are also absorbed in the
    first stage.
    """
    (
        cache.on_access(start, AccessKind.STORE)
        .request("GetM")
        .await_stage("AD")
        .when("Data", condition="ack_count_zero", receives_data=True).complete("M")
        .when("Data", condition="ack_count_nonzero", receives_data=True,
              latches_ack_count=True).goto_stage("A")
        .when("Inv_Ack", counts_ack=True).stay()
        .await_stage("A")
        .when("Inv_Ack", condition="acks_complete", counts_ack=True).complete("M")
        .when("Inv_Ack", condition="acks_incomplete", counts_ack=True).stay()
        .done()
    )


def build_cache() -> CacheSpecBuilder:
    cache = CacheSpecBuilder(initial="I")
    cache.state("I", Permission.NONE)
    cache.state("S", Permission.READ)
    cache.state("M", Permission.READ_WRITE)

    # I --load--> S
    (
        cache.on_access("I", AccessKind.LOAD)
        .request("GetS")
        .await_stage("D")
        .when("Data", receives_data=True).complete("S")
        .done()
    )
    # I --store--> M and S --store--> M
    _add_store_transaction(cache, "I")
    _add_store_transaction(cache, "S")
    # S --replacement--> I
    (
        cache.on_access("S", AccessKind.REPLACEMENT)
        .request("PutS")
        .await_stage("A")
        .when("Put_Ack").complete("I")
        .done()
    )
    # M --replacement--> I (the PutM carries the dirty data)
    (
        cache.on_access("M", AccessKind.REPLACEMENT)
        .request("PutM", with_data=True)
        .await_stage("A")
        .when("Put_Ack").complete("I")
        .done()
    )

    # Reactions to forwarded requests (Table I, right-hand columns).
    cache.react("S", "Inv", "I", Send("Inv_Ack", Dest.REQUESTOR))
    cache.react(
        "M", "Fwd_GetS", "S",
        Send("Data", Dest.REQUESTOR, with_data=True),
        Send("Data", Dest.DIRECTORY, with_data=True),
    )
    cache.react("M", "Fwd_GetM", "I", Send("Data", Dest.REQUESTOR, with_data=True))
    return cache


def build_directory() -> DirectorySpecBuilder:
    directory = DirectorySpecBuilder(initial="I")
    directory.state("I")
    directory.state("S")
    directory.state("M", owner_view="M")

    # State I
    directory.react(
        "I", "GetS", "S",
        Send("Data", Dest.REQUESTOR, with_data=True),
        AddRequestorToSharers(),
    )
    directory.react(
        "I", "GetM", "M",
        Send("Data", Dest.REQUESTOR, with_data=True, with_ack_count=True),
        SetOwnerToRequestor(),
    )

    # State S
    directory.react(
        "S", "GetS", "S",
        Send("Data", Dest.REQUESTOR, with_data=True),
        AddRequestorToSharers(),
    )
    directory.react(
        "S", "GetM", "M",
        Send("Data", Dest.REQUESTOR, with_data=True, with_ack_count=True),
        Send("Inv", Dest.SHARERS),
        SetOwnerToRequestor(),
        ClearSharers(),
    )
    directory.react(
        "S", "PutS", "S",
        Send("Put_Ack", Dest.REQUESTOR),
        RemoveRequestorFromSharers(),
        guard="not_last_sharer",
    )
    directory.react(
        "S", "PutS", "I",
        Send("Put_Ack", Dest.REQUESTOR),
        RemoveRequestorFromSharers(),
        guard="last_sharer",
    )

    # State M
    (
        directory.on_request("M", "GetS")
        .issue(
            Send("Fwd_GetS", Dest.OWNER, recipient_state="M"),
            AddRequestorToSharers(),
            AddOwnerToSharers(),
            ClearOwner(),
        )
        .await_stage("D")
        .when("Data", receives_data=True).complete("S")
        .done()
    )
    directory.react(
        "M", "GetM", "M",
        Send("Fwd_GetM", Dest.OWNER, recipient_state="M"),
        SetOwnerToRequestor(),
    )
    directory.react(
        "M", "PutM", "I",
        CopyDataFromMessage(),
        Send("Put_Ack", Dest.REQUESTOR),
        ClearOwner(),
        guard="from_owner",
    )
    return directory


def build() -> ProtocolSpec:
    """Build the MSI stable state protocol (cache + directory + messages)."""
    protocol = ProtocolBuilder(
        "MSI",
        ordered_network=True,
        description="Textbook MSI directory protocol (paper Tables I and II)",
    )
    _declare_messages(protocol)
    return protocol.build(build_cache(), build_directory())
