"""MSI variant for an interconnect *without* point-to-point ordering
(paper Section VI-C).

The ordered MSI protocol relies on point-to-point ordering in exactly one
place: the eviction path, where a Put-Ack must not overtake an Invalidation
or a forwarded request sent earlier to the same cache.  This variant removes
that reliance by removing the eviction path altogether: caches keep blocks
until a forwarded request or an invalidation takes them away.  (This is the
substitution documented in DESIGN.md -- the paper's variant instead adds
extra handshake messages; both approaches make every remaining race
insensitive to reordering, which is the property the experiment checks.)

All remaining races -- a forwarded request overtaking the Data response it
chases, an Invalidation overtaking the Data response of a GetS, invalidation
acknowledgments overtaking the Data of a GetM -- are resolved by the
generated transient states themselves and are therefore safe on an unordered
network, which is what the verification experiment (E9) demonstrates.

One of those races deserves a note: an Invalidation aimed at a cache's old
``S`` copy can be overtaken by forwards of *later*-ordered transactions and
arrive only after the cache was redirected out of ``SM_AD`` (the repeated
invalidation found by the deep 3-cache x 2-access search).  The generator
resolves it structurally -- every Case-2 redirect records the pre-redirect
Case-1 messages and the redirected states acknowledge them late (see
:mod:`repro.core.concurrency`) -- so this SSP needs no extra handshake
messages even for that corner.
"""

from __future__ import annotations

from repro.dsl.builder import CacheSpecBuilder, DirectorySpecBuilder, ProtocolBuilder
from repro.dsl.ssp import ProtocolSpec
from repro.dsl.types import (
    AccessKind,
    AddOwnerToSharers,
    AddRequestorToSharers,
    ClearOwner,
    ClearSharers,
    Dest,
    Permission,
    Send,
    SetOwnerToRequestor,
)


def _declare_messages(protocol: ProtocolBuilder) -> None:
    protocol.request("GetS")
    protocol.request("GetM")
    protocol.forward("Fwd_GetS")
    protocol.forward("Fwd_GetM")
    protocol.forward("Inv")
    protocol.response("Data", carries_data=True, carries_ack_count=True)
    protocol.response("Inv_Ack")


def _add_store_transaction(cache: CacheSpecBuilder, start: str) -> None:
    (
        cache.on_access(start, AccessKind.STORE)
        .request("GetM")
        .await_stage("AD")
        .when("Data", condition="ack_count_zero", receives_data=True).complete("M")
        .when("Data", condition="ack_count_nonzero", receives_data=True,
              latches_ack_count=True).goto_stage("A")
        .when("Inv_Ack", counts_ack=True).stay()
        .await_stage("A")
        .when("Inv_Ack", condition="acks_complete", counts_ack=True).complete("M")
        .when("Inv_Ack", condition="acks_incomplete", counts_ack=True).stay()
        .done()
    )


def build_cache() -> CacheSpecBuilder:
    cache = CacheSpecBuilder(initial="I")
    cache.state("I", Permission.NONE)
    cache.state("S", Permission.READ)
    cache.state("M", Permission.READ_WRITE)

    (
        cache.on_access("I", AccessKind.LOAD)
        .request("GetS")
        .await_stage("D")
        .when("Data", receives_data=True).complete("S")
        .done()
    )
    _add_store_transaction(cache, "I")
    _add_store_transaction(cache, "S")

    cache.react("S", "Inv", "I", Send("Inv_Ack", Dest.REQUESTOR))
    cache.react(
        "M", "Fwd_GetS", "S",
        Send("Data", Dest.REQUESTOR, with_data=True),
        Send("Data", Dest.DIRECTORY, with_data=True),
    )
    cache.react("M", "Fwd_GetM", "I", Send("Data", Dest.REQUESTOR, with_data=True))
    return cache


def build_directory() -> DirectorySpecBuilder:
    directory = DirectorySpecBuilder(initial="I")
    directory.state("I")
    directory.state("S")
    directory.state("M", owner_view="M")

    directory.react(
        "I", "GetS", "S",
        Send("Data", Dest.REQUESTOR, with_data=True),
        AddRequestorToSharers(),
    )
    directory.react(
        "I", "GetM", "M",
        Send("Data", Dest.REQUESTOR, with_data=True, with_ack_count=True),
        SetOwnerToRequestor(),
    )
    directory.react(
        "S", "GetS", "S",
        Send("Data", Dest.REQUESTOR, with_data=True),
        AddRequestorToSharers(),
    )
    directory.react(
        "S", "GetM", "M",
        Send("Data", Dest.REQUESTOR, with_data=True, with_ack_count=True),
        Send("Inv", Dest.SHARERS),
        SetOwnerToRequestor(),
        ClearSharers(),
    )
    (
        directory.on_request("M", "GetS")
        .issue(
            Send("Fwd_GetS", Dest.OWNER, recipient_state="M"),
            AddRequestorToSharers(),
            AddOwnerToSharers(),
            ClearOwner(),
        )
        .await_stage("D")
        .when("Data", receives_data=True).complete("S")
        .done()
    )
    directory.react(
        "M", "GetM", "M",
        Send("Fwd_GetM", Dest.OWNER, recipient_state="M"),
        SetOwnerToRequestor(),
    )
    return directory


def build() -> ProtocolSpec:
    """Build the unordered-network MSI stable state protocol."""
    protocol = ProtocolBuilder(
        "MSI-Unordered",
        ordered_network=False,
        description="MSI for an interconnect without point-to-point ordering "
        "(paper Section VI-C); no eviction path",
    )
    _declare_messages(protocol)
    return protocol.build(build_cache(), build_directory())
