"""MSI with Upgrade requests (paper Section V-D1, the request-reinterpretation example).

A cache holding a block in S that wants to write issues an *Upgrade* instead
of a GetM: it already has the data, so it only needs the invalidation count.
If the Upgrade loses a race (another cache's GetM was serialized first), the
issuer no longer has valid data, so the directory must *reinterpret* the
Upgrade as the request the same access would have issued from I -- a GetM --
and supply data.  The generator records this reinterpretation when it builds
the Case-1 restart (SM -> IM), and the directory generation duplicates the
GetM handling for Upgrade in every state where Upgrade itself has no entry.
"""

from __future__ import annotations

from repro.dsl.builder import CacheSpecBuilder, DirectorySpecBuilder, ProtocolBuilder
from repro.dsl.ssp import ProtocolSpec
from repro.dsl.types import (
    AccessKind,
    AddOwnerToSharers,
    AddRequestorToSharers,
    ClearOwner,
    ClearSharers,
    CopyDataFromMessage,
    Dest,
    Permission,
    RemoveRequestorFromSharers,
    Send,
    SetOwnerToRequestor,
)


def _declare_messages(protocol: ProtocolBuilder) -> None:
    protocol.request("GetS")
    protocol.request("GetM")
    protocol.request("Upgrade")
    protocol.request("PutS")
    protocol.request("PutM", carries_data=True)
    protocol.forward("Fwd_GetS")
    protocol.forward("Fwd_GetM")
    protocol.forward("Inv")
    protocol.response("Data", carries_data=True, carries_ack_count=True)
    protocol.response("AckCount", carries_ack_count=True)
    protocol.response("Inv_Ack")
    protocol.response("Put_Ack")


def build_cache() -> CacheSpecBuilder:
    cache = CacheSpecBuilder(initial="I")
    cache.state("I", Permission.NONE)
    cache.state("S", Permission.READ)
    cache.state("M", Permission.READ_WRITE)

    (
        cache.on_access("I", AccessKind.LOAD)
        .request("GetS")
        .await_stage("D")
        .when("Data", receives_data=True).complete("S")
        .done()
    )
    # A store in I needs data: GetM.
    (
        cache.on_access("I", AccessKind.STORE)
        .request("GetM")
        .await_stage("AD")
        .when("Data", condition="ack_count_zero", receives_data=True).complete("M")
        .when("Data", condition="ack_count_nonzero", receives_data=True,
              latches_ack_count=True).goto_stage("A")
        .when("Inv_Ack", counts_ack=True).stay()
        .await_stage("A")
        .when("Inv_Ack", condition="acks_complete", counts_ack=True).complete("M")
        .when("Inv_Ack", condition="acks_incomplete", counts_ack=True).stay()
        .done()
    )
    # A store in S already has data: Upgrade (count only).
    (
        cache.on_access("S", AccessKind.STORE)
        .request("Upgrade")
        .await_stage("AC")
        .when("AckCount", condition="ack_count_zero").complete("M")
        .when("AckCount", condition="ack_count_nonzero", latches_ack_count=True).goto_stage("A")
        .when("Inv_Ack", counts_ack=True).stay()
        .await_stage("A")
        .when("Inv_Ack", condition="acks_complete", counts_ack=True).complete("M")
        .when("Inv_Ack", condition="acks_incomplete", counts_ack=True).stay()
        .done()
    )
    # The requestor of an Upgrade that was overtaken receives Data instead of
    # AckCount (the directory reinterpreted the Upgrade as a GetM); the
    # generator routes the cache into the IM transient states where Data is
    # expected, so nothing else needs to be said here.

    (
        cache.on_access("S", AccessKind.REPLACEMENT)
        .request("PutS")
        .await_stage("A")
        .when("Put_Ack").complete("I")
        .done()
    )
    (
        cache.on_access("M", AccessKind.REPLACEMENT)
        .request("PutM", with_data=True)
        .await_stage("A")
        .when("Put_Ack").complete("I")
        .done()
    )

    cache.react("S", "Inv", "I", Send("Inv_Ack", Dest.REQUESTOR))
    cache.react(
        "M", "Fwd_GetS", "S",
        Send("Data", Dest.REQUESTOR, with_data=True),
        Send("Data", Dest.DIRECTORY, with_data=True),
    )
    cache.react("M", "Fwd_GetM", "I", Send("Data", Dest.REQUESTOR, with_data=True))
    return cache


def build_directory() -> DirectorySpecBuilder:
    directory = DirectorySpecBuilder(initial="I")
    directory.state("I")
    directory.state("S")
    directory.state("M", owner_view="M")

    directory.react(
        "I", "GetS", "S",
        Send("Data", Dest.REQUESTOR, with_data=True),
        AddRequestorToSharers(),
    )
    directory.react(
        "I", "GetM", "M",
        Send("Data", Dest.REQUESTOR, with_data=True, with_ack_count=True),
        SetOwnerToRequestor(),
    )

    directory.react(
        "S", "GetS", "S",
        Send("Data", Dest.REQUESTOR, with_data=True),
        AddRequestorToSharers(),
    )
    directory.react(
        "S", "GetM", "M",
        Send("Data", Dest.REQUESTOR, with_data=True, with_ack_count=True),
        Send("Inv", Dest.SHARERS),
        SetOwnerToRequestor(),
        ClearSharers(),
    )
    # Upgrade from a current sharer: no data needed.
    directory.react(
        "S", "Upgrade", "M",
        Send("AckCount", Dest.REQUESTOR, with_ack_count=True),
        Send("Inv", Dest.SHARERS),
        SetOwnerToRequestor(),
        ClearSharers(),
        guard="from_sharer",
    )
    # Upgrade from a cache that has since been invalidated: it needs data, so
    # treat it exactly like a GetM.
    directory.react(
        "S", "Upgrade", "M",
        Send("Data", Dest.REQUESTOR, with_data=True, with_ack_count=True),
        Send("Inv", Dest.SHARERS),
        SetOwnerToRequestor(),
        ClearSharers(),
        guard="not_from_sharer",
    )
    directory.react(
        "S", "PutS", "S",
        Send("Put_Ack", Dest.REQUESTOR),
        RemoveRequestorFromSharers(),
        guard="not_last_sharer",
    )
    directory.react(
        "S", "PutS", "I",
        Send("Put_Ack", Dest.REQUESTOR),
        RemoveRequestorFromSharers(),
        guard="last_sharer",
    )

    (
        directory.on_request("M", "GetS")
        .issue(
            Send("Fwd_GetS", Dest.OWNER, recipient_state="M"),
            AddRequestorToSharers(),
            AddOwnerToSharers(),
            ClearOwner(),
        )
        .await_stage("D")
        .when("Data", receives_data=True).complete("S")
        .done()
    )
    directory.react(
        "M", "GetM", "M",
        Send("Fwd_GetM", Dest.OWNER, recipient_state="M"),
        SetOwnerToRequestor(),
    )
    directory.react(
        "M", "PutM", "I",
        CopyDataFromMessage(),
        Send("Put_Ack", Dest.REQUESTOR),
        ClearOwner(),
        guard="from_owner",
    )
    # A stale Upgrade arriving in I or M is reinterpreted as a GetM by the
    # generator's request-reinterpretation pass (both are issued by a store).
    return directory


def build() -> ProtocolSpec:
    """Build the MSI-with-Upgrades stable state protocol."""
    protocol = ProtocolBuilder(
        "MSI-Upgrade",
        ordered_network=True,
        description="MSI with Upgrade requests; exercises directory request "
        "reinterpretation (paper Section V-D1)",
    )
    _declare_messages(protocol)
    return protocol.build(build_cache(), build_directory())
