"""Hand-written baseline: the primer's MSI cache controllers.

These tables transcribe the *primer* (Sorin, Hill & Wood, "A Primer on Memory
Consistency and Cache Coherence") behaviour shown in the paper's Table VI --
the non-bold / struck-through entries -- and serve as the comparison baseline
for experiment E6 (Table VI) and the Section VI-A/VI-B claims:

* the primer's **non-stalling** MSI cache controller has 18 states and still
  stalls forwarded requests in ``IM^AD`` and ``SM^AD``;
* ProtoGen's generated controller stalls less (it has the extra states
  ``IM^AD_S``, ``IM^AD_I``, ``IM^AD_SI``, ``SM^AD_S``) and merges
  ``IM^A_S = SM^A_S``-style pairs.

Each cell is ``None`` (impossible / blank in the table), the string
``"stall"``, or a ``(action text, next state)`` pair.  The action text is
informal -- the baseline is used for *structural* comparison (states, stalls,
targets), not for execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Column order of the primer table (paper Table VI).
EVENTS = (
    "Load",
    "Store",
    "Replacement",
    "Fwd_GetS",
    "Fwd_GetM",
    "Inv",
    "Put_Ack",
    "Data_ack0",
    "Data_acks",
    "Inv_Ack",
    "Last_Inv_Ack",
)

Cell = None | str | tuple[str, str]


@dataclass
class BaselineController:
    """A hand-written controller table used as a comparison baseline."""

    name: str
    rows: dict[str, dict[str, Cell]] = field(default_factory=dict)

    @property
    def states(self) -> list[str]:
        return list(self.rows)

    @property
    def num_states(self) -> int:
        return len(self.rows)

    def cell(self, state: str, event: str) -> Cell:
        return self.rows.get(state, {}).get(event)

    def stall_cells(self) -> set[tuple[str, str]]:
        return {
            (state, event)
            for state, row in self.rows.items()
            for event, cell in row.items()
            if cell == "stall"
        }

    @property
    def num_stalls(self) -> int:
        return len(self.stall_cells())

    def transitions(self) -> int:
        return sum(
            1
            for row in self.rows.values()
            for cell in row.values()
            if cell is not None and cell != "stall"
        )


def _row(**cells: Cell) -> dict[str, Cell]:
    unknown = set(cells) - set(EVENTS)
    if unknown:
        raise ValueError(f"unknown events {unknown}")
    return {event: cells.get(event) for event in EVENTS}


def nonstalling_msi_cache() -> BaselineController:
    """The primer's non-stalling MSI cache controller (Table VI, non-bold entries)."""
    rows = {
        "I": _row(Load=("send GetS to Dir", "IS_D"), Store=("send GetM to Dir", "IM_AD")),
        "IS_D": _row(
            Load="stall", Store="stall", Replacement="stall",
            Inv=("send Inv-Ack to Req", "IS_D_I"),
            Data_ack0=("-", "S"), Data_acks=("-", "S"),
        ),
        "IS_D_I": _row(
            Load="stall", Store="stall", Replacement="stall",
            Data_ack0=("-", "I"), Data_acks=("-", "I"),
        ),
        "IM_AD": _row(
            Load="stall", Store="stall", Replacement="stall",
            Fwd_GetS="stall", Fwd_GetM="stall",
            Data_ack0=("-", "M"), Data_acks=("-", "IM_A"), Inv_Ack=("ack--", "IM_AD"),
        ),
        "IM_A": _row(
            Load="stall", Store="stall", Replacement="stall",
            Fwd_GetS=("-", "IM_A_S"), Fwd_GetM=("-", "IM_A_I"),
            Inv_Ack=("ack--", "IM_A"), Last_Inv_Ack=("-", "M"),
        ),
        "IM_A_S": _row(
            Load="stall", Store="stall", Replacement="stall",
            Inv=("send Inv-Ack to Req", "IM_A_SI"),
            Inv_Ack=("ack--", "IM_A_S"),
            Last_Inv_Ack=("send Data to Req and Dir", "S"),
        ),
        "IM_A_SI": _row(
            Load="stall", Store="stall", Replacement="stall",
            Inv_Ack=("ack--", "IM_A_SI"),
            Last_Inv_Ack=("send Data to Req and Dir", "I"),
        ),
        "IM_A_I": _row(
            Load="stall", Store="stall", Replacement="stall",
            Inv_Ack=("ack--", "IM_A_I"),
            Last_Inv_Ack=("send Data to Req", "I"),
        ),
        "S": _row(
            Load=("hit", "S"), Store=("send GetM to Dir", "SM_AD"),
            Replacement=("send PutS to Dir", "SI_A"),
            Inv=("send Inv-Ack to Req", "I"),
        ),
        "SM_AD": _row(
            Load=("hit", "SM_AD"), Store="stall", Replacement="stall",
            Fwd_GetS="stall", Fwd_GetM="stall",
            Inv=("send Inv-Ack to Req", "IM_AD"),
            Data_ack0=("-", "M"), Data_acks=("-", "SM_A"), Inv_Ack=("ack--", "SM_AD"),
        ),
        "SM_A": _row(
            Load=("hit", "SM_A"), Store="stall", Replacement="stall",
            Fwd_GetS=("-", "SM_A_S"), Fwd_GetM=("-", "SM_A_I"),
            Inv_Ack=("ack--", "SM_A"), Last_Inv_Ack=("-", "M"),
        ),
        "SM_A_S": _row(
            Load="stall", Store="stall", Replacement="stall",
            Inv=("send Inv-Ack to Req", "SM_A_SI"),
            Inv_Ack=("ack--", "SM_A_S"),
            Last_Inv_Ack=("send Data to Req and Dir", "S"),
        ),
        "SM_A_SI": _row(
            Load="stall", Store="stall", Replacement="stall",
            Inv_Ack=("ack--", "SM_A_SI"),
            Last_Inv_Ack=("send Data to Req and Dir", "I"),
        ),
        "SM_A_I": _row(
            Load="stall", Store="stall", Replacement="stall",
            Inv_Ack=("ack--", "SM_A_I"),
            Last_Inv_Ack=("send Data to Req", "I"),
        ),
        "M": _row(
            Load=("hit", "M"), Store=("hit", "M"),
            Replacement=("send PutM + Data to Dir", "MI_A"),
            Fwd_GetS=("send Data to Req and Dir", "S"),
            Fwd_GetM=("send Data to Req", "I"),
        ),
        "MI_A": _row(
            Load="stall", Store="stall", Replacement="stall",
            Fwd_GetS=("send Data to Req and Dir", "SI_A"),
            Fwd_GetM=("send Data to Req", "II_A"),
            Put_Ack=("-", "I"),
        ),
        "SI_A": _row(
            Load="stall", Store="stall", Replacement="stall",
            Inv=("send Inv-Ack to Req", "II_A"),
            Put_Ack=("-", "I"),
        ),
        "II_A": _row(
            Load="stall", Store="stall", Replacement="stall",
            Put_Ack=("-", "I"),
        ),
    }
    return BaselineController(name="primer-nonstalling-MSI-cache", rows=rows)


def stalling_msi_cache() -> BaselineController:
    """The primer's *stalling* MSI cache controller (Section VI-A baseline).

    In the stalling protocol a cache in a transient state stalls every
    forwarded request until its own transaction completes; the extra
    ``IM_A_S``-style states do not exist.
    """
    rows = {
        "I": _row(Load=("send GetS to Dir", "IS_D"), Store=("send GetM to Dir", "IM_AD")),
        "IS_D": _row(
            Load="stall", Store="stall", Replacement="stall", Inv="stall",
            Data_ack0=("-", "S"), Data_acks=("-", "S"),
        ),
        "IM_AD": _row(
            Load="stall", Store="stall", Replacement="stall",
            Fwd_GetS="stall", Fwd_GetM="stall",
            Data_ack0=("-", "M"), Data_acks=("-", "IM_A"), Inv_Ack=("ack--", "IM_AD"),
        ),
        "IM_A": _row(
            Load="stall", Store="stall", Replacement="stall",
            Fwd_GetS="stall", Fwd_GetM="stall",
            Inv_Ack=("ack--", "IM_A"), Last_Inv_Ack=("-", "M"),
        ),
        "S": _row(
            Load=("hit", "S"), Store=("send GetM to Dir", "SM_AD"),
            Replacement=("send PutS to Dir", "SI_A"),
            Inv=("send Inv-Ack to Req", "I"),
        ),
        "SM_AD": _row(
            Load=("hit", "SM_AD"), Store="stall", Replacement="stall",
            Fwd_GetS="stall", Fwd_GetM="stall", Inv="stall",
            Data_ack0=("-", "M"), Data_acks=("-", "SM_A"), Inv_Ack=("ack--", "SM_AD"),
        ),
        "SM_A": _row(
            Load=("hit", "SM_A"), Store="stall", Replacement="stall",
            Fwd_GetS="stall", Fwd_GetM="stall",
            Inv_Ack=("ack--", "SM_A"), Last_Inv_Ack=("-", "M"),
        ),
        "M": _row(
            Load=("hit", "M"), Store=("hit", "M"),
            Replacement=("send PutM + Data to Dir", "MI_A"),
            Fwd_GetS=("send Data to Req and Dir", "S"),
            Fwd_GetM=("send Data to Req", "I"),
        ),
        "MI_A": _row(
            Load="stall", Store="stall", Replacement="stall",
            Fwd_GetS="stall", Fwd_GetM="stall",
            Put_Ack=("-", "I"),
        ),
        "SI_A": _row(
            Load="stall", Store="stall", Replacement="stall", Inv="stall",
            Put_Ack=("-", "I"),
        ),
    }
    return BaselineController(name="primer-stalling-MSI-cache", rows=rows)


#: The cells where the paper reports ProtoGen stalls less than the primer's
#: non-stalling protocol (Table VI, bold entries replacing struck-out stalls).
PROTOGEN_UNSTALLED_CELLS = {
    ("IM_AD", "Fwd_GetS"),
    ("IM_AD", "Fwd_GetM"),
    ("SM_AD", "Fwd_GetS"),
    ("SM_AD", "Fwd_GetM"),
}

#: State pairs the paper reports ProtoGen merged relative to the primer.
PROTOGEN_MERGED_PAIRS = {
    ("IM_A_S", "SM_A_S"),
    ("IM_A_SI", "SM_A_SI"),
    ("IM_A_I", "SM_A_I"),
}

#: Extra transient states the paper reports in ProtoGen's generated protocol.
PROTOGEN_EXTRA_STATES = {"IM_AD_S", "IM_AD_I", "IM_AD_SI", "SM_AD_S"}
