"""A simplified TSO-CC-style stable state protocol (paper Section VI-D).

TSO-CC (Elver & Nagarajan, HPCA 2014) is a coherence protocol tailored to the
TSO consistency model: it does not track sharers and therefore never sends
invalidations; readers may keep (and read) stale copies until they
self-invalidate, which TSO permits.  The point of the paper's experiment is
that ProtoGen can generate a complete concurrent protocol for such an
*unconventional* SSP, not just for MOESI-style ones.

This module reproduces that structure at the SSP level:

* the directory tracks only the exclusive owner, never the sharers;
* GetS is answered from memory (or the owner) without recording the reader;
* GetM never triggers invalidations -- stale shared copies simply persist;
* shared copies are dropped silently (self-invalidation stands in for the
  timestamp-based self-invalidation of the real protocol).

Because stale read-only copies may coexist with a writer, the generated
protocol intentionally violates SWMR in physical time; the verification
experiment therefore checks single-ownership, the data-value invariant on
ownership transfers and deadlock freedom, but not SWMR (see EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.dsl.builder import CacheSpecBuilder, DirectorySpecBuilder, ProtocolBuilder
from repro.dsl.ssp import ProtocolSpec
from repro.dsl.types import (
    AccessKind,
    ClearOwner,
    CopyDataFromMessage,
    Dest,
    Permission,
    Send,
    SetOwnerToRequestor,
)


def _declare_messages(protocol: ProtocolBuilder) -> None:
    protocol.request("GetS")
    protocol.request("GetM")
    protocol.request("PutM", carries_data=True)
    protocol.forward("Fwd_GetS")
    protocol.forward("Fwd_GetM")
    protocol.response("Data", carries_data=True)
    protocol.response("Put_Ack")


def build_cache() -> CacheSpecBuilder:
    cache = CacheSpecBuilder(initial="I")
    cache.state("I", Permission.NONE)
    cache.state("S", Permission.READ)
    cache.state("M", Permission.READ_WRITE)

    (
        cache.on_access("I", AccessKind.LOAD)
        .request("GetS")
        .await_stage("D")
        .when("Data", receives_data=True).complete("S")
        .done()
    )
    for start in ("I", "S"):
        (
            cache.on_access(start, AccessKind.STORE)
            .request("GetM")
            .await_stage("D")
            .when("Data", receives_data=True).complete("M")
            .done()
        )
    # Self-invalidation of an untracked shared copy: silent.
    cache.on_access("S", AccessKind.REPLACEMENT).completes_to("I").done()
    (
        cache.on_access("M", AccessKind.REPLACEMENT)
        .request("PutM", with_data=True)
        .await_stage("A")
        .when("Put_Ack").complete("I")
        .done()
    )

    # The owner supplies data on forwarded requests; readers are never
    # invalidated (there is no Inv message in this protocol).
    cache.react(
        "M", "Fwd_GetS", "S",
        Send("Data", Dest.REQUESTOR, with_data=True),
        Send("Data", Dest.DIRECTORY, with_data=True),
    )
    cache.react("M", "Fwd_GetM", "I", Send("Data", Dest.REQUESTOR, with_data=True))
    return cache


def build_directory() -> DirectorySpecBuilder:
    directory = DirectorySpecBuilder(initial="I")
    # "I" here means "no exclusive owner"; readers are not tracked, so the
    # directory has no S state at all.
    directory.state("I")
    directory.state("M", owner_view="M")

    directory.react("I", "GetS", "I", Send("Data", Dest.REQUESTOR, with_data=True))
    directory.react(
        "I", "GetM", "M",
        Send("Data", Dest.REQUESTOR, with_data=True),
        SetOwnerToRequestor(),
    )
    (
        directory.on_request("M", "GetS")
        .issue(Send("Fwd_GetS", Dest.OWNER, recipient_state="M"), ClearOwner())
        .await_stage("D")
        .when("Data", receives_data=True).complete("I")
        .done()
    )
    directory.react(
        "M", "GetM", "M",
        Send("Fwd_GetM", Dest.OWNER, recipient_state="M"),
        SetOwnerToRequestor(),
    )
    directory.react(
        "M", "PutM", "I",
        CopyDataFromMessage(),
        Send("Put_Ack", Dest.REQUESTOR),
        ClearOwner(),
        guard="from_owner",
    )
    return directory


def build() -> ProtocolSpec:
    """Build the simplified TSO-CC stable state protocol."""
    protocol = ProtocolBuilder(
        "TSO-CC",
        ordered_network=True,
        description="Simplified TSO-CC-style protocol: no sharer tracking, "
        "no invalidations, self-invalidating readers (paper Section VI-D)",
    )
    _declare_messages(protocol)
    return protocol.build(build_cache(), build_directory())
