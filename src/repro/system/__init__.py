"""Execution substrate: caches, directory, interconnect, whole-system model."""

from repro.system.codec import StateCodec
from repro.system.kernel import TransitionKernel
from repro.system.message import DIRECTORY_ID, Message
from repro.system.network import Network, OrderedNetwork, UnorderedNetwork, make_network
from repro.system.node_state import CacheNodeState, DirectoryNodeState
from repro.system.executor import Observation, ProtocolRuntimeError
from repro.system.vectorized import VectorizedKernel, VectorizedUnavailable
from repro.system.system import (
    DeliverMessage,
    DuplicateMessage,
    FaultModel,
    GlobalState,
    IssueAccess,
    LitmusWorkload,
    ReorderMessage,
    StepOutcome,
    System,
    SystemEvent,
    Workload,
)

__all__ = [
    "DIRECTORY_ID",
    "CacheNodeState",
    "DeliverMessage",
    "DirectoryNodeState",
    "DuplicateMessage",
    "FaultModel",
    "GlobalState",
    "IssueAccess",
    "LitmusWorkload",
    "Message",
    "Network",
    "Observation",
    "OrderedNetwork",
    "ProtocolRuntimeError",
    "ReorderMessage",
    "StateCodec",
    "StepOutcome",
    "System",
    "SystemEvent",
    "TransitionKernel",
    "UnorderedNetwork",
    "VectorizedKernel",
    "VectorizedUnavailable",
    "Workload",
    "make_network",
]
