"""Compact integer encoding of global states (the Murphi bit-vector analogue).

The verification engine used to hash, store, and ship whole ``GlobalState``
object trees.  Murphi is fast precisely because its states are packed
bit-vectors; this module provides the same representation shift for the
reproduction: a :class:`StateCodec` built from a :class:`~repro.system.system.System`
maps every global state to a flat tuple of small non-negative integers (and
on to ``bytes``), and back.

The encoding is designed around three invariants the engine relies on:

1. **Bijective.**  ``decode(encode(s)) == s`` exactly, so de-duplicating on
   encodings preserves the seed explorer's bit-identical state counts and
   counterexample traces still replay through ``System.apply``.
2. **Order-isomorphic.**  Every component section compares (as an int tuple)
   exactly like the component's ``sort_key()``: FSM states and message types
   are indexed through *sorted* name lists, optional ints are shifted so
   ``None`` lands below every real value, sharer sets become zero-padded
   ascending runs.  Canonicalization (pick the permutation minimizing the
   state key) can therefore run entirely on encoded arrays and still pick
   the *same* representative as the object-level oracle
   (:func:`repro.verification.engine.canonical.canonicalize_bruteforce`).
3. **Relabelable.**  Cache-ID permutations apply directly to the encoded
   form: cache blocks move to their permuted positions, saved-requestor
   slots, directory owner/sharers and message endpoints are remapped in
   place, and order-normalized sections (sharers, channels, unordered
   messages) are re-sorted.  The hot path (:meth:`StateCodec.relabel_via_tables`)
   runs on per-permutation tables precomputed at first use — a lane-gather
   index map for the fixed-width prefix plus value-translation arrays for
   the two cache-ID lane shifts (:meth:`StateCodec.perm_tables`) — so a
   relabel is a single-pass gather instead of a recursive tuple rebuild;
   :meth:`StateCodec.relabel` keeps the original field-by-field construction
   as the property-test oracle.

The codec also carries the instrumentation the zero-decode invariant is
asserted against: :attr:`StateCodec.decode_count` increments on every
:meth:`decode`, and a compiled-kernel symmetry-reduced search must leave it
flat outside failure reporting.

Layout (lanes are ``array('H')`` by default; a protocol whose name catalogs
or workload-bounded values exceed the 16-bit range automatically widens to
32-bit lanes -- see ``typecode``)::

    [cache 0 block | ... | cache n-1 block | directory block |
     latest_version | network section]

with fixed-width cache/directory blocks (:data:`~repro.system.node_state.CACHE_ENCODED_WIDTH`,
``3 + num_caches``) and a variable-length network section (message records
are :data:`~repro.system.message.MESSAGE_ENCODED_WIDTH` ints).  The packed
``bytes`` form (:meth:`StateCodec.pack`) is what the visited set keys on and
what the parallel search ships between processes.

Multi-address systems repeat the fixed-width part once per address plane
(``plane_stride`` lanes each) and append one network section per plane;
fault-model systems insert a single ``faults_used`` lane between the fixed
planes and the network sections::

    [plane 0 fixed | plane 1 fixed | ... | faults_used? |
     net section 0 | net section 1 | ...]

A single-address, no-fault codec degenerates to exactly the original
layout, so every historical encoding (and pinned state count) is unchanged.
"""

from __future__ import annotations

from array import array
from operator import itemgetter

from repro.dsl.types import AccessKind
from repro.system.message import (
    MESSAGE_ENCODED_WIDTH,
    Message,
    decode_message,
    relabel_encoded_message,
    translate_encoded_message,
)
from repro.system.network import Network, OrderedNetwork, UnorderedNetwork
from repro.system.node_state import (
    CACHE_ENCODED_WIDTH,
    NUM_SAVED_SLOTS,
    CacheNodeState,
    DirectoryNodeState,
    decode_cache_block,
    decode_directory_block,
)
from repro.system.system import (
    DeliverMessage,
    DuplicateMessage,
    GlobalState,
    IssueAccess,
    ReorderMessage,
    SystemEvent,
)

#: First saved-requestor slot inside a cache block.
_SAVED_OFFSET = 5

#: Bound on per-component memo tables (a few MB at most; cleared when hit).
_MEMO_LIMIT = 1 << 20


class StateCodec:
    """Bidirectional ``GlobalState`` <-> flat-int-tuple <-> ``bytes`` codec."""

    def __init__(self, protocol, num_caches: int, *, ordered: bool,
                 value_bound: int = 0, num_addresses: int = 1,
                 faults: bool = False):
        self.num_caches = num_caches
        self.num_addresses = num_addresses
        self.faults = faults
        self.ordered = ordered
        self.cache_states: tuple[str, ...] = tuple(sorted(protocol.cache.state_names()))
        self.dir_states: tuple[str, ...] = tuple(sorted(protocol.directory.state_names()))
        self.mtypes: tuple[str, ...] = tuple(sorted(protocol.messages.names()))
        self.access_kinds: tuple[AccessKind, ...] = tuple(
            sorted(AccessKind, key=lambda a: a.value)
        )
        self._cache_index = {name: i for i, name in enumerate(self.cache_states)}
        self._dir_index = {name: i for i, name in enumerate(self.dir_states)}
        self._mtype_index = {name: i for i, name in enumerate(self.mtypes)}
        self._access_index = {kind: i for i, kind in enumerate(self.access_kinds)}
        # Lane selection: uint16 lanes cover every bundled protocol; a
        # protocol whose catalogs (or whose workload-bounded data versions,
        # via *value_bound*) no longer fit below 0xFFFF widens every lane to
        # 32 bits instead of erroring out.  All orderings and offsets are
        # lane-width independent; only `pack`/`unpack` change.
        largest = max(
            len(self.cache_states), len(self.dir_states), len(self.mtypes),
            num_caches + 2, value_bound + 2,
        )
        if largest < 0xFFFF:
            self.typecode = "H"
        else:
            self.typecode = "I" if array("I").itemsize == 4 else "L"
            if largest >= 0xFFFF_FFFF:  # pragma: no cover - absurd inputs
                raise ValueError("protocol too large for the 32-bit state encoding")
        self.lane_bytes = array(self.typecode).itemsize

        # Plane-0 offsets (for A == 1 these are also the absolute offsets;
        # plane *a*'s lanes sit at the same offsets plus ``a * plane_stride``).
        self.cache_width = CACHE_ENCODED_WIDTH
        self.dir_offset = num_caches * CACHE_ENCODED_WIDTH
        self.dir_width = 3 + num_caches
        self.version_offset = self.dir_offset + self.dir_width
        #: Fixed lanes per address plane (cache blocks + directory + version).
        self.plane_stride = self.version_offset + 1
        #: Absolute lane of the ``faults_used`` counter (None without faults).
        self.fault_offset = num_addresses * self.plane_stride if faults else None
        self.net_offset = num_addresses * self.plane_stride + (1 if faults else 0)

        # Sub-object memo tables: node states, networks and messages recur
        # across huge numbers of global states, so encoding each distinct
        # component once and reusing the tuple keeps `encode` off the
        # dataclass-walking slow path.
        self._cache_memo: dict[CacheNodeState, tuple] = {}
        self._dir_memo: dict[DirectoryNodeState, tuple] = {}
        self._net_memo: dict[Network, tuple] = {}
        self._dec_cache_memo: dict[tuple, CacheNodeState] = {}
        self._dec_dir_memo: dict[tuple, DirectoryNodeState] = {}

        #: Decodes performed (instrumentation): a compiled-kernel reduced
        #: search must not move this counter outside failure reporting.
        self.decode_count = 0
        #: Opaque per-codec scratch for engine-layer caches (e.g. the
        #: canonicalizers of :mod:`repro.verification.engine.canonical`);
        #: keyed here so their lifetime tracks the codec's.
        self.engine_scratch: dict = {}
        # Per-permutation gather/translation tables (see `perm_tables`) and
        # the memoized relabel/parse/key caches the symmetry hot path runs
        # on.  Network sections and directory blocks recur across huge
        # numbers of states, so relabeled sections and tie-break keys are
        # computed once per (section, permutation) pair.
        self._perm_tables: dict[tuple[int, ...], tuple] = {}
        self._saved_lanes: tuple[int, ...] = tuple(
            cid * CACHE_ENCODED_WIDTH + _SAVED_OFFSET + slot
            for cid in range(num_caches)
            for slot in range(NUM_SAVED_SLOTS)
        )
        self._net_items_memo: dict[tuple, tuple] = {}
        self._net_relabel_memo: dict[tuple, list] = {}
        self._net_key_memo: dict[tuple, tuple] = {}
        self._dir_key_memo: dict[tuple, tuple] = {}
        self._suffix_memo: dict[tuple, list] = {}
        self._planes_memo: dict[tuple, tuple] = {}

    @classmethod
    def for_system(cls, system) -> "StateCodec":
        # The workload bounds the ghost data versions (one per store), which
        # bounds every data-carrying field for the lane-width selection.
        return cls(
            system.protocol,
            system.num_caches,
            ordered=system.ordered,
            value_bound=system.value_bound(),
            num_addresses=system.num_addresses,
            faults=system.faults is not None,
        )

    # -- encoding ----------------------------------------------------------------
    def _encode_cache(self, cache: CacheNodeState) -> tuple:
        block = self._cache_memo.get(cache)
        if block is None:
            if len(self._cache_memo) >= _MEMO_LIMIT:
                self._cache_memo.clear()
            block = cache.encoded(self._cache_index, self._access_index)
            self._cache_memo[cache] = block
        return block

    def _encode_dir(self, directory: DirectoryNodeState) -> tuple:
        dir_block = self._dir_memo.get(directory)
        if dir_block is None:
            if len(self._dir_memo) >= _MEMO_LIMIT:
                self._dir_memo.clear()
            dir_block = directory.encoded(self._dir_index, self.num_caches)
            self._dir_memo[directory] = dir_block
        return dir_block

    def _encode_net(self, network: Network) -> tuple:
        net_section = self._net_memo.get(network)
        if net_section is None:
            if len(self._net_memo) >= _MEMO_LIMIT:
                self._net_memo.clear()
            net_section = network.encoded(self._mtype_index)
            self._net_memo[network] = net_section
        return net_section

    def encode(self, state: GlobalState) -> tuple:
        """Flat int-tuple encoding of *state* (bijective; see module docs)."""
        out: list[int] = []
        n = self.num_caches
        for addr in range(self.num_addresses):
            for cache in state.caches[addr * n : (addr + 1) * n]:
                out.extend(self._encode_cache(cache))
            directory = state.directory if addr == 0 else state.extra_dirs[addr - 1]
            out.extend(self._encode_dir(directory))
            out.append(
                state.latest_version if addr == 0 else state.extra_versions[addr - 1]
            )
        if self.faults:
            out.append(state.faults_used)
        out.extend(self._encode_net(state.network))
        for network in state.extra_networks:
            out.extend(self._encode_net(network))
        return tuple(out)

    def _decode_cache(self, block: tuple) -> CacheNodeState:
        cache = self._dec_cache_memo.get(block)
        if cache is None:
            if len(self._dec_cache_memo) >= _MEMO_LIMIT:
                self._dec_cache_memo.clear()
            cache = decode_cache_block(block, self.cache_states, self.access_kinds)
            self._dec_cache_memo[block] = cache
        return cache

    def _decode_dir(self, dir_block: tuple) -> DirectoryNodeState:
        directory = self._dec_dir_memo.get(dir_block)
        if directory is None:
            if len(self._dec_dir_memo) >= _MEMO_LIMIT:
                self._dec_dir_memo.clear()
            directory = decode_directory_block(dir_block, self.dir_states)
            self._dec_dir_memo[dir_block] = directory
        return directory

    def decode(self, enc: tuple) -> GlobalState:
        """Exact inverse of :meth:`encode`."""
        self.decode_count += 1
        width = self.cache_width
        stride = self.plane_stride
        caches = []
        dirs = []
        versions = []
        for addr in range(self.num_addresses):
            plane = addr * stride
            for i in range(self.num_caches):
                base = plane + i * width
                caches.append(self._decode_cache(enc[base : base + width]))
            dirs.append(
                self._decode_dir(enc[plane + self.dir_offset : plane + self.version_offset])
            )
            versions.append(enc[plane + self.version_offset])
        faults_used = enc[self.fault_offset] if self.faults else 0
        network_cls = OrderedNetwork if self.ordered else UnorderedNetwork
        networks = []
        pos = self.net_offset
        for _ in range(self.num_addresses):
            networks.append(network_cls.from_encoded(enc, pos, self.mtypes))
            pos += self._section_length(enc, pos)
        return GlobalState(
            caches=tuple(caches),
            directory=dirs[0],
            network=networks[0],
            latest_version=versions[0],
            extra_dirs=tuple(dirs[1:]),
            extra_versions=tuple(versions[1:]),
            extra_networks=tuple(networks[1:]),
            faults_used=faults_used,
        )

    def _section_length(self, enc: tuple, pos: int) -> int:
        """Lane count of the network section starting at *pos*."""
        mw = MESSAGE_ENCODED_WIDTH
        count = enc[pos]
        if not self.ordered:
            return 1 + count * mw
        length = 1
        for _ in range(count):
            length += 4 + enc[pos + length + 3] * mw
        return length

    # -- bytes packing -----------------------------------------------------------
    def pack(self, enc: tuple) -> bytes:
        """Pack an encoding into ``bytes`` (the visited-set / IPC form)."""
        return array(self.typecode, enc).tobytes()

    def unpack(self, packed: bytes) -> tuple:
        """Inverse of :meth:`pack`."""
        values = array(self.typecode)
        values.frombytes(packed)
        return tuple(values)

    def pack_tail(self, tail: tuple) -> bytes:
        """Pack a lane slice (e.g. a network section) on its own.

        ``pack(enc) == pack_tail(enc[:k]) + pack_tail(enc[k:])`` for any
        split point ``k`` -- the packed form is a flat little/native-endian
        lane dump with no framing -- so batch expansion can assemble intern
        keys from a NumPy prefix row's ``tobytes()`` plus a per-section
        packed tail without ever materializing the full tuple.
        """
        return array(self.typecode, tail).tobytes()

    def layout(self) -> dict:
        """Lane-offset metadata for batch (matrix) operations over encodings.

        Everything a batch kernel needs to slice/scatter the fixed-width
        prefix of this codec's encodings without reaching into private
        attributes: absolute offsets, block widths, the lane dtype string
        (NumPy-compatible) and the saved-requestor lanes.
        """
        return {
            "num_caches": self.num_caches,
            "num_addresses": self.num_addresses,
            "cache_width": self.cache_width,
            "dir_offset": self.dir_offset,
            "dir_width": self.dir_width,
            "version_offset": self.version_offset,
            "plane_stride": self.plane_stride,
            "fault_offset": self.fault_offset,
            "net_offset": self.net_offset,
            "lane_bytes": self.lane_bytes,
            "numpy_dtype": {2: "uint16", 4: "uint32", 8: "uint64"}[self.lane_bytes],
            "saved_lanes": self._saved_lanes,
            "message_width": MESSAGE_ENCODED_WIDTH,
        }

    # -- relabeling --------------------------------------------------------------
    def perm_tables(self, perm: tuple[int, ...]) -> tuple:
        """``(gather, t1, t2)`` for *perm*, built once and cached.

        * ``gather`` — an :func:`operator.itemgetter` over the cache-block
          region: output lane ``j`` reads input lane ``gather_indices[j]``,
          i.e. each cache block is fetched from the cache that lands on that
          slot under *perm*.  Applying it is one C-level pass.
        * ``t1`` — value-translation array for **+1-shifted** cache-ID lanes
          (saved-requestor slots): ``t1[0] = 0`` (empty), ``t1[v] =
          perm[v - 1] + 1``.
        * ``t2`` — value-translation array for **+2-shifted** node-ID lanes
          (directory owner/sharers, message src/dst/requestor): ``t2[0] = 0``
          (absent), ``t2[1] = 1`` (the directory, a fixed point), ``t2[v] =
          perm[v - 2] + 2``.
        """
        tables = self._perm_tables.get(perm)
        if tables is None:
            n = self.num_caches
            width = self.cache_width
            inverse = [0] * n
            for old_id, new_id in enumerate(perm):
                inverse[new_id] = old_id
            indices: list[int] = []
            for new_id in range(n):
                base = inverse[new_id] * width
                indices.extend(range(base, base + width))
            t1 = (0, *(perm[v] + 1 for v in range(n)))
            t2 = (0, 1, *(perm[v] + 2 for v in range(n)))
            tables = (itemgetter(*indices), t1, t2)
            self._perm_tables[perm] = tables
        return tables

    def relabel_via_tables(
        self, enc: tuple, perm: tuple[int, ...], *, saved: bool = True
    ) -> tuple:
        """:meth:`relabel` on the precomputed :meth:`perm_tables` (hot path).

        One gather over the fixed-width prefix, table lookups on the few
        cache-ID lanes, and the two order-normalized runs re-sorted through
        their memo tables (the directory block via
        :meth:`relabeled_directory_key`, the network section per distinct
        section).  Bit-identical to :meth:`relabel`, which is kept as the
        property-test oracle.  Callers that already know no saved-requestor
        slot is occupied (the signature-sort path proved it) pass
        ``saved=False`` to skip the slot-translation pass.
        """
        gather, t1, t2 = self.perm_tables(perm)
        out = list(gather(enc))
        if saved:
            for lane in self._saved_lanes:
                value = out[lane]
                if value:
                    out[lane] = t1[value]
        out.extend(self._relabeled_suffix(enc, perm, t2))
        return tuple(out)

    def _relabeled_suffix(
        self, enc: tuple, perm: tuple[int, ...], t2: tuple[int, ...]
    ) -> list[int]:
        """Relabeled directory + version + network lanes, memoized as one unit.

        The suffix past the cache blocks recurs across far more states than
        it has distinct values, so one ``(suffix, perm)`` lookup replaces
        separate directory-key and network-section memo probes on the
        relabel hot path.  The returned list is shared — ``extend`` only.
        """
        key = (enc[self.dir_offset :], perm)
        memo = self._suffix_memo
        out = memo.get(key)
        if out is not None:
            return out
        if len(memo) >= _MEMO_LIMIT:
            memo.clear()
        out = list(self.relabeled_directory_key(enc, perm))
        # version lane plus the (perm-invariant) fault lane when present
        out.extend(enc[self.version_offset : self.net_offset])
        out.extend(self._relabeled_net_section_tables(enc, perm, t2))
        memo[key] = out
        return out

    def _relabeled_net_section_tables(
        self, enc: tuple, perm: tuple[int, ...], t2: tuple[int, ...]
    ) -> list[int]:
        """Relabeled flat network section, memoized per (section, perm).

        Network sections recur across huge numbers of global states, so each
        distinct section is translated and re-sorted once per permutation.
        The returned list is shared — callers must only ``extend`` from it.
        """
        key = (enc[self.net_offset :], perm)
        memo = self._net_relabel_memo
        out = memo.get(key)
        if out is not None:
            return out
        if len(memo) >= _MEMO_LIMIT:
            memo.clear()
        items = self.network_items(enc)
        out = [len(items)]
        if not self.ordered:
            for record in sorted(translate_encoded_message(m, t2) for m in items):
                out.extend(record)
        else:
            relabeled = [
                (
                    t2[src],
                    t2[dst],
                    vnet,
                    tuple(translate_encoded_message(m, t2) for m in msgs),
                )
                for src, dst, vnet, msgs in items
            ]
            relabeled.sort(key=lambda item: item[:3])
            for src, dst, vnet, msgs in relabeled:
                out.extend((src, dst, vnet, len(msgs)))
                for record in msgs:
                    out.extend(record)
        memo[key] = out
        return out

    def relabel(self, enc: tuple, perm: tuple[int, ...]) -> tuple:
        """``encode(decode(enc).relabeled(perm))`` computed on the encoding.

        Single-plane layouts only (symmetry reduction is gated off for
        multi-address systems at the engine level)."""
        if self.num_addresses != 1:
            raise ValueError("encoded relabeling supports single-address layouts only")
        width = self.cache_width
        blocks: list[tuple | None] = [None] * self.num_caches
        for old in range(self.num_caches):
            block = enc[old * width : (old + 1) * width]
            saved = block[_SAVED_OFFSET : _SAVED_OFFSET + NUM_SAVED_SLOTS]
            if any(saved):
                block = (
                    block[:_SAVED_OFFSET]
                    + tuple(s if s == 0 else perm[s - 1] + 1 for s in saved)
                    + block[_SAVED_OFFSET + NUM_SAVED_SLOTS :]
                )
            blocks[perm[old]] = block
        out: list[int] = []
        for block in blocks:
            out.extend(block)  # type: ignore[arg-type]
        out.extend(self._relabeled_dir_block(enc, perm))
        out.extend(enc[self.version_offset : self.net_offset])
        out.extend(self._relabeled_net_section(self.network_items(enc), perm))
        return tuple(out)

    def _relabeled_dir_block(self, enc: tuple, perm: tuple[int, ...]) -> tuple:
        block = enc[self.dir_offset : self.version_offset]
        owner = block[1]
        if owner >= 2:
            owner = perm[owner - 2] + 2
        sharers = sorted(
            s if s - 2 < 0 else perm[s - 2] + 2 for s in block[2:-1] if s != 0
        )
        return (
            block[0],
            owner,
            *sharers,
            *((0,) * (self.num_caches - len(sharers))),
            block[-1],
        )

    # -- network section helpers --------------------------------------------------
    def network_items(self, enc: tuple):
        """Parse the network section once per distinct section (memoized).

        Ordered networks yield ``[(src, dst, vnet, (msg record, ...)), ...]``
        (encoded node IDs, FIFO message order); unordered networks yield a
        flat list of message records.  Sections recur across huge numbers of
        global states, so the parse is cached keyed by the raw section; the
        returned list is shared — callers must not mutate it.
        """
        return self.parsed_network(enc)[0]

    def parsed_network(self, enc: tuple):
        """``(items, offsets)`` — the memoized parse handle of *enc*'s section.

        *items* is what :meth:`network_items` returns; *offsets* maps each
        item to its lanes: ``offsets[i]`` is the lane index of channel
        (or record) *i* relative to ``net_offset`` (``offsets[0] == 1``,
        past the count lane) and ``offsets[n]`` is the section length, so
        item *i* occupies ``enc[net_offset + offsets[i] : net_offset +
        offsets[i + 1]]``.  The kernel threads this handle from
        ``enabled`` into ``apply``, where the network re-normalization
        copies untouched channels as single slices through the offsets.
        """
        section = enc[self.net_offset :]
        memo = self._net_items_memo
        parsed = memo.get(section)
        if parsed is not None:
            return parsed
        if len(memo) >= _MEMO_LIMIT:
            memo.clear()
        parsed = self._parse_section(enc, self.net_offset)
        memo[section] = parsed
        return parsed

    def _parse_section(self, enc: tuple, start: int):
        """Parse one network section beginning at lane *start*.

        Returns ``(items, offsets)`` with offsets relative to *start*
        (``offsets[0] == 1``, ``offsets[-1]`` the section length)."""
        pos = start
        count = enc[pos]
        pos += 1
        mw = MESSAGE_ENCODED_WIDTH
        if not self.ordered:
            items = [enc[pos + i * mw : pos + (i + 1) * mw] for i in range(count)]
            offsets = tuple(1 + i * mw for i in range(count + 1))
        else:
            items = []
            offs = [1]
            for _ in range(count):
                src, dst, vnet, nmsgs = enc[pos : pos + 4]
                pos += 4
                msgs = tuple(
                    enc[pos + i * mw : pos + (i + 1) * mw] for i in range(nmsgs)
                )
                pos += nmsgs * mw
                items.append((src, dst, vnet, msgs))
                offs.append(pos - start)
            offsets = tuple(offs)
        return (items, offsets)

    def parsed_planes(self, enc: tuple):
        """Per-address ``(items, offsets, start)`` handles (absolute starts).

        The general (multi-address / fault-model) kernel path threads this
        from ``enabled`` into ``apply`` the same way the single-plane path
        threads :meth:`parsed_network`.  Memoized per distinct suffix."""
        if self.num_addresses == 1:
            items, offsets = self.parsed_network(enc)
            return ((items, offsets, self.net_offset),)
        key = enc[self.net_offset :]
        memo = self._planes_memo
        parsed = memo.get(key)
        if parsed is not None:
            return parsed
        if len(memo) >= _MEMO_LIMIT:
            memo.clear()
        planes = []
        pos = self.net_offset
        for _ in range(self.num_addresses):
            items, offsets = self._parse_section(enc, pos)
            planes.append((items, offsets, pos))
            pos += offsets[-1]
        parsed = tuple(planes)
        memo[key] = parsed
        return parsed

    def _relabeled_net_section(self, items, perm: tuple[int, ...]) -> list[int]:
        out = [len(items)]
        if not self.ordered:
            for record in sorted(relabel_encoded_message(m, perm) for m in items):
                out.extend(record)
            return out
        relabeled = []
        for src, dst, vnet, msgs in items:
            relabeled.append(
                (
                    src if src - 2 < 0 else perm[src - 2] + 2,
                    dst if dst - 2 < 0 else perm[dst - 2] + 2,
                    vnet,
                    tuple(relabel_encoded_message(m, perm) for m in msgs),
                )
            )
        relabeled.sort(key=lambda item: item[:3])
        for src, dst, vnet, msgs in relabeled:
            out.extend((src, dst, vnet, len(msgs)))
            for record in msgs:
                out.extend(record)
        return out

    # -- canonicalization keys -----------------------------------------------------
    def cache_blocks(self, enc: tuple) -> list[tuple]:
        """The per-cache fixed-width blocks (order-isomorphic signatures)."""
        width = self.cache_width
        return [enc[i * width : (i + 1) * width] for i in range(self.num_caches)]

    def has_saved_ids(self, enc: tuple) -> bool:
        """True when any cache block holds a saved requestor ID (these states
        have permutation-dependent signatures and take the brute-force path)."""
        width = self.cache_width
        for i in range(self.num_caches):
            base = i * width + _SAVED_OFFSET
            if any(enc[base : base + NUM_SAVED_SLOTS]):
                return True
        return False

    def relabeled_directory_key(self, enc: tuple, perm: tuple[int, ...]) -> tuple:
        """Order-isomorphic to ``DirectoryNodeState.relabeled_sort_key(perm)``.

        Memoized per (directory block, perm): the tie-break stage of
        canonicalization evaluates this once per candidate permutation, and
        directory blocks recur across many states.
        """
        block = enc[self.dir_offset : self.version_offset]
        key = (block, perm)
        memo = self._dir_key_memo
        result = memo.get(key)
        if result is not None:
            return result
        if len(memo) >= _MEMO_LIMIT:
            memo.clear()
        t2 = self.perm_tables(perm)[2]
        owner = block[1]
        sharers = sorted(t2[s] for s in block[2:-1] if s != 0)
        result = (
            block[0],
            t2[owner] if owner >= 2 else owner,
            *sharers,
            *((0,) * (self.num_caches - len(sharers))),
            block[-1],
        )
        memo[key] = result
        return result

    def relabeled_network_key(self, enc: tuple, perm: tuple[int, ...]) -> tuple:
        """Order-isomorphic to ``Network.relabeled_sort_key(perm)``.

        The nested tuple shape mirrors the object-level key exactly
        (channels sorted by their relabeled channel key, message records
        compared field by field), so minimizing over permutations picks the
        same winner.  Memoized per (network section, perm) — this is the
        expensive final tie-break stage, and sections recur heavily.
        """
        key = (enc[self.net_offset :], perm)
        memo = self._net_key_memo
        result = memo.get(key)
        if result is not None:
            return result
        if len(memo) >= _MEMO_LIMIT:
            memo.clear()
        t2 = self.perm_tables(perm)[2]
        items = self.network_items(enc)
        if not self.ordered:
            result = tuple(sorted(translate_encoded_message(m, t2) for m in items))
        else:
            result = tuple(
                sorted(
                    (
                        (
                            (t2[src], t2[dst], vnet),
                            tuple(translate_encoded_message(m, t2) for m in msgs),
                        )
                        for src, dst, vnet, msgs in items
                    ),
                    key=lambda item: item[0],
                )
            )
        memo[key] = result
        return result

    # -- events ------------------------------------------------------------------
    def encode_event(self, event: SystemEvent) -> tuple:
        """Flat int encoding of a system event (for cross-process records).

        Single-address encodings keep their historical shape; with several
        addresses the plane index is appended as one trailing lane (the
        record kinds are fixed-width per tag, so decoding stays unambiguous).
        """
        if isinstance(event, IssueAccess):
            fields = (0, event.cache_id, self._access_index[event.access])
        elif isinstance(event, DeliverMessage):
            fields = (1, *event.message.encoded(self._mtype_index))
        elif isinstance(event, DuplicateMessage):
            fields = (2, *event.message.encoded(self._mtype_index))
        elif isinstance(event, ReorderMessage):
            fields = (3, event.src + 2, event.dst + 2, event.vnet, event.position)
        else:
            raise TypeError(f"unknown event {event!r}")
        if self.num_addresses == 1:
            return fields
        addr = getattr(event, "addr", 0)
        return fields + (addr,)

    def decode_event(self, fields: tuple) -> SystemEvent:
        """Inverse of :meth:`encode_event`."""
        addr = 0
        if self.num_addresses > 1:
            addr = fields[-1]
            fields = fields[:-1]
        tag = fields[0]
        if tag == 0:
            return IssueAccess(
                cache_id=fields[1], access=self.access_kinds[fields[2]], addr=addr
            )
        if tag == 1:
            return DeliverMessage(
                message=decode_message(fields[1:], self.mtypes), addr=addr
            )
        if tag == 2:
            return DuplicateMessage(
                message=decode_message(fields[1:], self.mtypes), addr=addr
            )
        return ReorderMessage(
            src=fields[1] - 2,
            dst=fields[2] - 2,
            vnet=fields[3],
            position=fields[4],
            addr=addr,
        )

    # -- conveniences ---------------------------------------------------------------
    def encode_packed(self, state: GlobalState) -> bytes:
        return self.pack(self.encode(state))

    def decode_packed(self, packed: bytes) -> GlobalState:
        return self.decode(self.unpack(packed))


__all__ = ["StateCodec"]
