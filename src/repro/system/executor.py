"""Interpretation of generated FSM transitions over concrete node states.

The executor is a pure function layer: given a controller FSM, the node's
current architectural state and a stimulus (a core access or an incoming
message), it selects the matching transition, executes its actions and
returns the new node state plus the messages to inject into the network.

Two backends interpret the same generated spec: this object executor, and
the compiled kernel (:mod:`repro.system.kernel`) that runs the lowered table
form (:func:`repro.core.fsm.compile_spec`) directly over encoded states.
They share the guard vocabulary (:data:`repro.core.fsm.GUARD_CODES`,
evaluated here by :func:`evaluate_guard`) and the transition-selection
policy; the object executor is the differential oracle -- the kernel
delegates every error path to it, and the property tests in
``tests/verification/test_kernel.py`` pin the two backends to bit-identical
successors, events and verdicts.

Guard semantics
---------------

``ack_count_zero`` / ``ack_count_nonzero``
    Compare the acknowledgment count carried by a Data response against the
    acknowledgments that have *already* been received: invalidation acks can
    race ahead of the Data response, so "zero" really means "no further acks
    outstanding once this message is accounted for".
``acks_complete`` / ``acks_incomplete``
    Whether counting the current Inv_Ack makes the received count reach the
    expected count.
``from_owner`` / ``not_from_owner`` and ``last_sharer`` / ``not_last_sharer``
    Directory-side guards on the sender of the message relative to the
    directory's auxiliary state.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.fsm import (
    GUARD_CODES,
    ControllerFsm,
    Event,
    FsmTransition,
    MessageEvent,
)
from repro.dsl.errors import VerificationError
from repro.dsl.types import (
    AccessKind,
    Action,
    AddOwnerToSharers,
    AddRequestorToSharers,
    ClearOwner,
    ClearSharers,
    CopyDataFromMessage,
    Dest,
    IncrementAcksReceived,
    InvalidateData,
    PerformAccess,
    RemoveRequestorFromSharers,
    ResetAckCounters,
    SaveRequestor,
    Send,
    SetAcksExpectedFromMessage,
    SetOwnerToRequestor,
    WriteDataToMemory,
)
from repro.system.message import DIRECTORY_ID, Message
from repro.system.node_state import CacheNodeState, DirectoryNodeState


@dataclass(frozen=True)
class Observation:
    """A load or store performed by a cache (used by the invariant checks)."""

    cache_id: int
    access: AccessKind
    value: int | None


@dataclass
class StepResult:
    """Outcome of presenting one stimulus to one controller."""

    stalled: bool = False
    node: object | None = None
    sends: tuple[Message, ...] = ()
    observations: tuple[Observation, ...] = ()
    latest_version: int = 0
    error: str | None = None


class ProtocolRuntimeError(VerificationError):
    """The controller received a stimulus its FSM does not know how to handle."""


# ---------------------------------------------------------------------------
# Transition selection
# ---------------------------------------------------------------------------


def select_transition(
    fsm: ControllerFsm,
    state_name: str,
    event: Event,
    *,
    message: Message | None,
    cache: CacheNodeState | None = None,
    directory: DirectoryNodeState | None = None,
) -> FsmTransition | None:
    """Pick the transition matching *event* under the current guards.

    Returns ``None`` if the FSM has no entry at all for the stimulus (the
    caller reports this as a protocol error for messages, or treats the
    stimulus as disabled for accesses).
    """
    candidates = fsm.candidates(state_name, event)
    if not candidates:
        return None
    matching = [
        t for t in candidates
        if _guard_satisfied(t.event, message=message, cache=cache, directory=directory)
    ]
    if not matching:
        return None
    # Prefer a guarded (more specific) transition over an unguarded default.
    guarded = [t for t in matching if isinstance(t.event, MessageEvent) and t.event.guard]
    if len(guarded) == 1:
        return guarded[0]
    if len(matching) == 1:
        return matching[0]
    raise ProtocolRuntimeError(
        f"ambiguous transitions for {event} in state {state_name!r}: "
        + ", ".join(str(t.event) for t in matching)
    )


def _guard_satisfied(
    event: Event,
    *,
    message: Message | None,
    cache: CacheNodeState | None,
    directory: DirectoryNodeState | None,
) -> bool:
    if not isinstance(event, MessageEvent) or event.guard is None:
        return True
    code = GUARD_CODES.get(event.guard)
    if code is None:
        raise ProtocolRuntimeError(f"unknown guard {event.guard!r}")
    return evaluate_guard(code, message=message, cache=cache, directory=directory)


def evaluate_guard(
    code: int,
    *,
    message: Message | None,
    cache: CacheNodeState | None,
    directory: DirectoryNodeState | None,
) -> bool:
    """Evaluate one guard code over object-form node state.

    This is the object half of the shared guard vocabulary
    (:data:`repro.core.fsm.GUARD_CODES`); the compiled kernel
    (:mod:`repro.system.kernel`) evaluates the same codes over encoded
    fields, and the differential tests pin the two in agreement.
    """
    if code <= 2:  # ack_count_zero / ack_count_nonzero
        assert message is not None and cache is not None
        outstanding = (message.ack_count or 0) - cache.acks_received
        return outstanding <= 0 if code == 1 else outstanding > 0
    if code <= 4:  # acks_complete / acks_incomplete
        assert cache is not None
        if cache.acks_expected is None:
            return code == 4
        complete = cache.acks_received + 1 >= cache.acks_expected
        return complete if code == 3 else not complete
    assert message is not None and directory is not None
    if code <= 6:  # from_owner / not_from_owner
        is_owner = directory.owner is not None and message.src == directory.owner
        return is_owner if code == 5 else not is_owner
    if code <= 8:  # last_sharer / not_last_sharer
        last = message.src in directory.sharers and len(directory.sharers) == 1
        return last if code == 7 else not last
    if code <= 10:  # from_sharer / not_from_sharer
        is_sharer = message.src in directory.sharers
        return is_sharer if code == 9 else not is_sharer
    # owner_is_requestor / owner_not_requestor: unlike from_owner these test
    # the message's carried requestor identity, not its sender.  Both
    # require a recorded owner (the recovery transitions they guard act on
    # it), so with no owner neither matches and an unguarded default wins.
    is_req_owner = (
        directory.owner is not None and message.requestor == directory.owner
    )
    if code == 11:
        return is_req_owner
    return directory.owner is not None and not is_req_owner


# ---------------------------------------------------------------------------
# Cache execution
# ---------------------------------------------------------------------------


def execute_cache_transition(
    transition: FsmTransition,
    cache: CacheNodeState,
    cache_id: int,
    *,
    message: Message | None,
    access: AccessKind | None,
    latest_version: int,
) -> StepResult:
    """Execute *transition* for cache *cache_id* and return the outcome."""
    if transition.stall:
        return StepResult(stalled=True, node=cache, latest_version=latest_version)

    node = cache
    sends: list[Message] = []
    observations: list[Observation] = []
    version = latest_version
    requestor = message.requestor if message is not None else None
    pending = access if access is not None else node.pending_access

    for action in transition.actions:
        if isinstance(action, Send):
            sends.append(_cache_send(action, node, cache_id, message))
        elif isinstance(action, CopyDataFromMessage):
            if message is None or message.data is None:
                return StepResult(
                    error=f"cache {cache_id} expected data in {message}", latest_version=version
                )
            node = replace(node, data=message.data)
        elif isinstance(action, InvalidateData):
            node = replace(node, data=None)
        elif isinstance(action, SetAcksExpectedFromMessage):
            node = replace(node, acks_expected=(message.ack_count if message else None))
        elif isinstance(action, IncrementAcksReceived):
            node = replace(node, acks_received=node.acks_received + 1)
        elif isinstance(action, ResetAckCounters):
            node = replace(node, acks_expected=None, acks_received=0)
        elif isinstance(action, SaveRequestor):
            saved = list(node.saved)
            saved[action.slot] = requestor
            node = replace(node, saved=tuple(saved))
        elif isinstance(action, PerformAccess):
            node, version, observation, error = _perform_access(node, cache_id, pending, version)
            if error is not None:
                return StepResult(error=error, latest_version=version)
            if observation is not None:
                observations.append(observation)
        else:
            return StepResult(
                error=f"cache {cache_id} cannot execute action {action!r}",
                latest_version=version,
            )

    node = node.with_state(transition.next_state)
    if any(isinstance(a, PerformAccess) for a in transition.actions):
        node = replace(node, pending_access=None)
    return StepResult(
        node=node,
        sends=tuple(sends),
        observations=tuple(observations),
        latest_version=version,
    )


def _cache_send(
    action: Send, node: CacheNodeState, cache_id: int, message: Message | None
) -> Message:
    if action.requestor_slot is not None:
        dst = node.saved[action.requestor_slot]
        if dst is None:
            raise ProtocolRuntimeError(
                f"cache {cache_id}: deferred response {action.message} has no saved requestor"
            )
    elif action.to is Dest.DIRECTORY:
        dst = DIRECTORY_ID
    elif action.to is Dest.REQUESTOR:
        if message is None or message.requestor is None:
            raise ProtocolRuntimeError(
                f"cache {cache_id}: {action.message} needs a requestor but none is available"
            )
        dst = message.requestor
    elif action.to is Dest.SELF:
        dst = cache_id
    else:
        raise ProtocolRuntimeError(
            f"cache {cache_id}: unsupported destination {action.to} for {action.message}"
        )
    # Responses sent while handling a forwarded request keep the original
    # requestor; messages the cache originates on its own behalf carry its own
    # id (so the directory knows whom to respond to).  Deferred responses
    # execute when the *own* transaction completes, so the redirecting
    # forward's requestor -- banked in a saved slot at redirect time -- takes
    # precedence over the completion message's.
    if action.requestor_from_slot is not None:
        requestor = node.saved[action.requestor_from_slot]
        if requestor is None:
            raise ProtocolRuntimeError(
                f"cache {cache_id}: deferred response {action.message} has no "
                f"saved requestor to send on behalf of"
            )
    else:
        requestor = message.requestor if message is not None else cache_id
        if requestor is None:
            requestor = cache_id
    return Message(
        mtype=action.message,
        src=cache_id,
        dst=dst,
        requestor=requestor,
        data=node.data if action.with_data else None,
    )


def _perform_access(
    node: CacheNodeState,
    cache_id: int,
    access: AccessKind | None,
    latest_version: int,
) -> tuple[CacheNodeState, int, Observation | None, str | None]:
    """Perform the pending core access; enforce the data-value invariant."""
    if access is None:
        # A PerformAccess with nothing pending is a no-op (e.g. a replayed hit).
        return node, latest_version, None, None
    if access is AccessKind.LOAD:
        if node.data is None:
            return node, latest_version, None, (
                f"cache {cache_id} performed a load without data"
            )
        if node.data < node.last_observed:
            return node, latest_version, None, (
                f"cache {cache_id} load went backwards: saw version {node.data} after "
                f"{node.last_observed} (per-location SC violation)"
            )
        node = replace(node, last_observed=node.data)
        return node, latest_version, Observation(cache_id, access, node.data), None
    if access is AccessKind.STORE:
        if node.data is None:
            return node, latest_version, None, (
                f"cache {cache_id} performed a store without data"
            )
        if node.data != latest_version:
            return node, latest_version, None, (
                f"data-value invariant violated: cache {cache_id} stores on top of version "
                f"{node.data} but the latest written version is {latest_version}"
            )
        new_version = latest_version + 1
        node = replace(node, data=new_version, last_observed=new_version)
        return node, new_version, Observation(cache_id, access, new_version), None
    # Replacement: the block simply leaves the cache.
    return replace(node, data=None), latest_version, Observation(cache_id, access, None), None


# ---------------------------------------------------------------------------
# Directory execution
# ---------------------------------------------------------------------------


def execute_directory_transition(
    transition: FsmTransition,
    directory: DirectoryNodeState,
    *,
    message: Message | None,
) -> StepResult:
    if transition.stall:
        return StepResult(stalled=True, node=directory)

    node = directory
    sends: list[Message] = []
    requestor = message.requestor if message is not None else None

    for action in transition.actions:
        if isinstance(action, Send):
            sends.extend(_directory_sends(action, node, message))
        elif isinstance(action, (CopyDataFromMessage, WriteDataToMemory)):
            if message is None or message.data is None:
                return StepResult(error=f"directory expected data in {message}")
            node = replace(node, memory=message.data)
        elif isinstance(action, SetOwnerToRequestor):
            node = replace(node, owner=requestor)
        elif isinstance(action, ClearOwner):
            node = replace(node, owner=None)
        elif isinstance(action, AddRequestorToSharers):
            node = replace(node, sharers=node.sharers | {requestor})
        elif isinstance(action, AddOwnerToSharers):
            if node.owner is not None:
                node = replace(node, sharers=node.sharers | {node.owner})
        elif isinstance(action, RemoveRequestorFromSharers):
            node = replace(node, sharers=node.sharers - {requestor})
        elif isinstance(action, ClearSharers):
            node = replace(node, sharers=frozenset())
        else:
            return StepResult(error=f"directory cannot execute action {action!r}")

    node = node.with_state(transition.next_state)
    return StepResult(node=node, sends=tuple(sends))


def _directory_sends(
    action: Send, node: DirectoryNodeState, message: Message | None
) -> list[Message]:
    requestor = message.requestor if message is not None else None
    data = node.memory if action.with_data else None
    ack_count = None
    if action.with_ack_count:
        ack_count = len(node.sharers - ({requestor} if requestor is not None else set()))

    def build(dst: int) -> Message:
        return Message(
            mtype=action.message,
            src=DIRECTORY_ID,
            dst=dst,
            requestor=requestor,
            data=data,
            ack_count=ack_count,
        )

    if action.to is Dest.REQUESTOR:
        if requestor is None:
            raise ProtocolRuntimeError(f"directory: {action.message} needs a requestor")
        return [build(requestor)]
    if action.to is Dest.OWNER:
        if node.owner is None:
            raise ProtocolRuntimeError(f"directory: {action.message} needs an owner")
        return [build(node.owner)]
    if action.to is Dest.SHARERS:
        targets = sorted(node.sharers - ({requestor} if requestor is not None else set()))
        return [build(t) for t in targets]
    raise ProtocolRuntimeError(
        f"directory: unsupported destination {action.to} for {action.message}"
    )
