"""Compiled transition kernel: the search hot path over encoded states.

The object execution substrate (:mod:`repro.system.system` /
:mod:`repro.system.executor`) interprets the generated FSMs over dataclass
trees -- the right representation for clarity and for counterexample
replay, but every explored transition pays for event objects, dataclass
construction and a full re-encode.  Murphi gets its throughput by compiling
the transition relation down to operations on packed bit-vector states; the
:class:`TransitionKernel` is that representation shift for this engine:

* the generated protocol is lowered once into integer-indexed dispatch
  tables (:func:`repro.core.fsm.compile_spec`);
* enabled-event enumeration, guard evaluation, successor construction,
  quiescence and the default invariants (SWMR, single-owner) then run
  directly on the flat int-tuple encoding of
  :class:`~repro.system.codec.StateCodec` -- no :class:`GlobalState`,
  :class:`Message` or event object is ever materialized on the hot path.

The kernel is **exact by construction where it is fast, and delegating
where it is not**: every successor it produces is bit-identical to
``codec.encode(system.apply(state, event).state)`` (property-tested across
all bundled protocols in ``tests/verification/test_kernel.py``), and any
path that would produce an error outcome -- unexpected message, ambiguous
guards, missing data/requestor, a data-value violation -- returns ``None``
instead, telling the caller to decode the state and replay the single event
through the object executor, which is kept as the differential oracle and
produces the exact seed-identical error text.

Layout knowledge (field offsets, +1/+2 shifts) mirrors
:mod:`repro.system.codec`; both import their widths from
:mod:`repro.system.node_state` and :mod:`repro.system.message`.
"""

from __future__ import annotations

from repro.core.fsm import (
    DEST_DIRECTORY,
    DEST_OWNER,
    DEST_REQUESTOR,
    DEST_SAVED_SLOT,
    DEST_SELF,
    DEST_SHARERS,
    OP_ADD_OWNER_SHARER,
    OP_ADD_REQ_SHARER,
    OP_CLEAR_OWNER,
    OP_CLEAR_SHARERS,
    OP_COPY_DATA,
    OP_DIR_SEND,
    OP_INC_ACKS,
    OP_INVALIDATE_DATA,
    OP_PERFORM_ACCESS,
    OP_RM_REQ_SHARER,
    OP_RESET_ACKS,
    OP_SAVE_REQUESTOR,
    OP_SEND,
    OP_SET_ACKS_FROM_MSG,
    OP_SET_OWNER_REQ,
    OP_WRITE_MEMORY,
    CompilationUnsupported,
)
from repro.dsl.types import AccessKind
from repro.system.node_state import CACHE_ENCODED_WIDTH, NUM_SAVED_SLOTS

#: Offsets inside one encoded cache block (see ``CacheNodeState.encoded``).
CF_STATE = 0
CF_ISSUED = 1
CF_DATA = 2
CF_ACKS_EXPECTED = 3
CF_ACKS_RECEIVED = 4
CF_SAVED = 5
CF_PENDING = 5 + NUM_SAVED_SLOTS
CF_LAST_OBSERVED = 6 + NUM_SAVED_SLOTS

#: Sentinel plan: more than one transition matched (the object executor
#: raises the "ambiguous transitions" protocol error for these).
AMBIGUOUS = object()

#: Compiled invariant codes accepted by :meth:`TransitionKernel.check`.
INV_SWMR = "swmr"
INV_SINGLE_OWNER = "single_owner"


class TransitionKernel:
    """Successor generation and invariant checking on encoded states."""

    def __init__(self, system):
        self.system = system
        self.codec = codec = system.codec()
        spec = system.protocol.compiled()  # may raise CompilationUnsupported
        if (
            spec.cache.state_names != codec.cache_states
            or spec.directory.state_names != codec.dir_states
            or spec.mtype_names != codec.mtypes
            or spec.access_kinds != codec.access_kinds
        ):
            raise CompilationUnsupported("spec/codec index tables disagree")
        if spec.mtype_vnet != tuple(
            0 if name in system._request_names else 1 for name in spec.mtype_names
        ):
            # The spec derives vnets from the message catalog on its own;
            # they must match the tagging System._tag applies to sends.
            raise CompilationUnsupported("spec/system vnet tagging disagrees")
        for row in spec.cache.on_message:
            for cands in row.values():
                if any(ct.guard > 4 for ct in cands):
                    raise CompilationUnsupported("directory guard on a cache")
        for row in spec.directory.on_message:
            for cands in row.values():
                if any(0 < ct.guard <= 4 for ct in cands):
                    raise CompilationUnsupported("cache guard on the directory")
        self.spec = spec
        self.num_caches = system.num_caches
        self.ordered = system.ordered
        self.dir_offset = codec.dir_offset
        self.version_offset = codec.version_offset
        self.net_offset = codec.net_offset
        self.max_accesses = system.workload.max_accesses_per_cache
        #: Access-kind indices in *workload enumeration order* (the object
        #: model iterates ``workload.access_kinds``, not the sorted catalog).
        self.access_order = tuple(
            codec.access_kinds.index(kind) for kind in system.workload.access_kinds
        )
        self.ai_load = codec.access_kinds.index(AccessKind.LOAD)
        self.ai_store = codec.access_kinds.index(AccessKind.STORE)

    # -- event enumeration -------------------------------------------------------
    def enabled(self, enc: tuple) -> tuple[list, list]:
        """``(plans, net)`` for *enc*: one plan per enabled event, in exactly
        the order :meth:`repro.system.System.enabled_events` yields them.

        A plan is ``("a", eev, cache_id, ct)`` for an access or
        ``("d", eev, record, ct, where)`` for a delivery, where ``eev`` is the
        codec event encoding, ``ct`` the selected compiled transition
        (``None`` when no transition matches -- applying will error -- or
        :data:`AMBIGUOUS`), and ``where`` locates the delivered message in
        *net* (channel index when ordered, record index when unordered).
        *net* is ``codec.network_items(enc)``, parsed once per state.
        """
        plans: list = []
        spec_cache = self.spec.cache
        stable = spec_cache.stable
        on_access = spec_cache.on_access
        width = CACHE_ENCODED_WIDTH
        max_accesses = self.max_accesses
        for cid in range(self.num_caches):
            base = cid * width
            if enc[base + CF_ISSUED] >= max_accesses:
                continue
            si = enc[base]
            if not stable[si]:
                continue
            row = on_access[si]
            for ai in self.access_order:
                ct = row[ai]
                if ct is None or ct.stall:
                    continue
                plans.append(("a", (0, cid, ai), cid, ct))
        net = self.codec.network_items(enc)
        if self.ordered:
            for idx, channel in enumerate(net):
                self._plan_delivery(plans, enc, channel[3][0], idx)
        else:
            previous = None
            for idx, rec in enumerate(net):
                if rec == previous:
                    # Identical in-flight messages lead to the same successor;
                    # the object model de-duplicates them the same way.
                    continue
                previous = rec
                self._plan_delivery(plans, enc, rec, idx)
        return plans, net

    def _plan_delivery(self, plans: list, enc: tuple, rec: tuple, where: int) -> None:
        if rec[2] == 1:  # destination is the directory (id -1, +2 shift)
            cands = self.spec.directory.on_message[enc[self.dir_offset]].get(rec[0])
            ct = self._select(cands, rec, enc, None) if cands else None
        else:
            base = (rec[2] - 2) * CACHE_ENCODED_WIDTH
            cands = self.spec.cache.on_message[enc[base]].get(rec[0])
            ct = self._select(cands, rec, enc, base) if cands else None
        if ct is not None and ct is not AMBIGUOUS and ct.stall:
            return  # stalled deliveries are not enabled
        plans.append(("d", (1,) + tuple(rec), rec, ct, where))

    def _select(self, cands: tuple, rec: tuple, enc: tuple, base: int | None):
        """Mirror of :func:`repro.system.executor.select_transition` over
        encoded fields: evaluate guards, prefer a unique guarded match."""
        if len(cands) == 1 and cands[0].guard == 0:
            return cands[0]
        matching = []
        guarded = []
        for ct in cands:
            g = ct.guard
            if g and not self._guard(g, rec, enc, base):
                continue
            matching.append(ct)
            if g:
                guarded.append(ct)
        if len(guarded) == 1:
            return guarded[0]
        if len(matching) == 1:
            return matching[0]
        if not matching:
            return None
        return AMBIGUOUS

    def _guard(self, g: int, rec: tuple, enc: tuple, base: int | None) -> bool:
        """Encoded mirror of :func:`repro.system.executor.evaluate_guard`."""
        if g <= 2:  # ack_count_zero / ack_count_nonzero
            outstanding = (rec[9] - 2 if rec[8] else 0) - enc[base + CF_ACKS_RECEIVED]
            return outstanding <= 0 if g == 1 else outstanding > 0
        if g <= 4:  # acks_complete / acks_incomplete
            expected = enc[base + CF_ACKS_EXPECTED]
            complete = expected != 0 and enc[base + CF_ACKS_RECEIVED] + 1 >= expected - 1
            return complete if g == 3 else not complete
        d0 = self.dir_offset
        if g <= 6:  # from_owner / not_from_owner
            owner = enc[d0 + 1]
            is_owner = owner != 0 and rec[1] == owner
            return is_owner if g == 5 else not is_owner
        run = enc[d0 + 2 : d0 + 2 + self.num_caches]
        if g <= 8:  # last_sharer / not_last_sharer
            last = run[0] == rec[1] and (self.num_caches == 1 or run[1] == 0)
            return last if g == 7 else not last
        # from_sharer / not_from_sharer (padding zeros can never equal src+2)
        is_sharer = rec[1] in run
        return is_sharer if g == 9 else not is_sharer

    # -- successor construction ---------------------------------------------------
    def apply(self, enc: tuple, plan: tuple, net: list) -> tuple | None:
        """The successor encoding for *plan*, or ``None`` for "take the slow
        path": decode and replay the one event through ``System.apply`` (it
        reproduces the exact error outcome, or in rare benign cases the
        successor, at object speed)."""
        if plan[0] == "a":
            return self._apply_access(enc, plan[2], plan[1][2], plan[3], net)
        ct = plan[3]
        if ct is None or ct is AMBIGUOUS:
            return None  # unexpected message / ambiguous guards -> object error
        rec = plan[2]
        if rec[2] == 1:
            return self._apply_directory(enc, rec, ct, net, plan[4])
        return self._apply_cache_delivery(enc, rec, ct, net, plan[4])

    def _apply_access(self, enc, cid, ai, ct, net):
        out = list(enc[: self.net_offset])
        base = cid * CACHE_ENCODED_WIDTH
        out[base + CF_ISSUED] += 1
        out[base + CF_PENDING] = ai + 1
        sends: list = []
        if not self._run_cache_ops(out, base, cid, None, ai, ct, sends):
            return None
        out[base + CF_STATE] = ct.next_state
        if ct.has_perform:
            out[base + CF_PENDING] = 0
        self._emit_net(out, net, None, sends)
        return tuple(out)

    def _apply_cache_delivery(self, enc, rec, ct, net, where):
        cid = rec[2] - 2
        out = list(enc[: self.net_offset])
        base = cid * CACHE_ENCODED_WIDTH
        pending = out[base + CF_PENDING]
        ai = pending - 1 if pending else None
        sends: list = []
        if not self._run_cache_ops(out, base, cid, rec, ai, ct, sends):
            return None
        out[base + CF_STATE] = ct.next_state
        if ct.has_perform:
            out[base + CF_PENDING] = 0
        self._emit_net(out, net, where, sends)
        return tuple(out)

    def _run_cache_ops(self, out, base, cid, rec, ai, ct, sends) -> bool:
        """Execute the cache opcode list in place; False -> slow path."""
        vo = self.version_offset
        for op in ct.ops:
            code = op[0]
            if code == OP_SEND:
                _, mt, vnet, dest, arg, from_slot, with_data = op
                if dest == DEST_DIRECTORY:
                    dst = 1
                elif dest == DEST_REQUESTOR:
                    if rec is None or not rec[4]:
                        return False  # no requestor available
                    dst = rec[5]
                elif dest == DEST_SELF:
                    dst = cid + 2
                else:  # DEST_SAVED_SLOT
                    slot = out[base + CF_SAVED + arg]
                    if slot == 0:
                        return False  # deferred response without saved requestor
                    dst = slot + 1
                if from_slot is not None:
                    slot = out[base + CF_SAVED + from_slot]
                    if slot == 0:
                        return False
                    req = slot + 1
                elif rec is not None and rec[4]:
                    req = rec[5]
                else:
                    req = cid + 2
                data = out[base + CF_DATA]
                if with_data and data:
                    sends.append((mt, cid + 2, dst, vnet, 1, req, 1, data + 1, 0, 0))
                else:
                    sends.append((mt, cid + 2, dst, vnet, 1, req, 0, 0, 0, 0))
            elif code == OP_COPY_DATA:
                if rec is None or not rec[6]:
                    return False  # "expected data in <message>"
                out[base + CF_DATA] = rec[7] - 1
            elif code == OP_INVALIDATE_DATA:
                out[base + CF_DATA] = 0
            elif code == OP_SET_ACKS_FROM_MSG:
                out[base + CF_ACKS_EXPECTED] = (
                    rec[9] - 1 if rec is not None and rec[8] else 0
                )
            elif code == OP_INC_ACKS:
                out[base + CF_ACKS_RECEIVED] += 1
            elif code == OP_RESET_ACKS:
                out[base + CF_ACKS_EXPECTED] = 0
                out[base + CF_ACKS_RECEIVED] = 0
            elif code == OP_SAVE_REQUESTOR:
                out[base + CF_SAVED + op[1]] = (
                    rec[5] - 1 if rec is not None and rec[4] else 0
                )
            else:  # OP_PERFORM_ACCESS
                if ai is None:
                    continue  # nothing pending: a replayed hit is a no-op
                if ai == self.ai_load:
                    data = out[base + CF_DATA]
                    if data == 0 or data < out[base + CF_LAST_OBSERVED]:
                        return False  # load without data / went backwards
                    out[base + CF_LAST_OBSERVED] = data
                elif ai == self.ai_store:
                    data = out[base + CF_DATA]
                    if data == 0 or data - 1 != out[vo]:
                        return False  # store without data / data-value violation
                    version = out[vo] + 1
                    out[vo] = version
                    out[base + CF_DATA] = version + 1
                    out[base + CF_LAST_OBSERVED] = version + 1
                else:  # replacement: the block leaves the cache
                    out[base + CF_DATA] = 0
        return True

    def _apply_directory(self, enc, rec, ct, net, where):
        out = list(enc[: self.net_offset])
        d0 = self.dir_offset
        n = self.num_caches
        mem_i = d0 + 2 + n
        owner = out[d0 + 1]
        sharers = {v for v in enc[d0 + 2 : mem_i] if v}
        reqf, reqv = rec[4], rec[5]
        sends: list = []
        for op in ct.ops:
            code = op[0]
            if code == OP_DIR_SEND:
                _, mt, vnet, dest, with_data, with_ack = op
                if with_data:
                    df, dv = 1, out[mem_i] + 2
                else:
                    df, dv = 0, 0
                if with_ack:
                    count = len(sharers) - (1 if reqf and reqv in sharers else 0)
                    af, av = 1, count + 2
                else:
                    af, av = 0, 0
                if dest == DEST_REQUESTOR:
                    if not reqf:
                        return None  # "needs a requestor"
                    targets = (reqv,)
                elif dest == DEST_OWNER:
                    if owner == 0:
                        return None  # "needs an owner"
                    targets = (owner,)
                else:  # DEST_SHARERS
                    targets = sorted(
                        s for s in sharers if not (reqf and s == reqv)
                    )
                for dst in targets:
                    sends.append((mt, 1, dst, vnet, reqf, reqv, df, dv, af, av))
            elif code == OP_WRITE_MEMORY:
                if not rec[6]:
                    return None  # "expected data in <message>"
                out[mem_i] = rec[7] - 2
            elif code == OP_SET_OWNER_REQ:
                owner = reqv if reqf else 0
            elif code == OP_CLEAR_OWNER:
                owner = 0
            elif code == OP_ADD_REQ_SHARER:
                if not reqf:
                    return None  # object path would record a null sharer
                sharers.add(reqv)
            elif code == OP_ADD_OWNER_SHARER:
                if owner:
                    sharers.add(owner)
            elif code == OP_RM_REQ_SHARER:
                if reqf:
                    sharers.discard(reqv)
            else:  # OP_CLEAR_SHARERS
                sharers.clear()
        out[d0] = ct.next_state
        out[d0 + 1] = owner
        run = sorted(sharers)
        run.extend(0 for _ in range(n - len(run)))
        out[d0 + 2 : mem_i] = run
        self._emit_net(out, net, where, sends)
        return tuple(out)

    def _emit_net(self, out: list, net: list, where: int | None, sends: list) -> None:
        """Append the successor network section: *net* minus the delivered
        message (channel/record index *where*) plus *sends*, re-normalized
        exactly like ``Network.deliver`` + ``Network.send``."""
        if self.ordered:
            channels: dict = {}
            for idx, (src, dst, vnet, msgs) in enumerate(net):
                if idx == where:
                    msgs = msgs[1:]
                    if not msgs:
                        continue
                channels[(src, dst, vnet)] = list(msgs)
            for m in sends:
                channels.setdefault((m[1], m[2], m[3]), []).append(m)
            out.append(len(channels))
            for key in sorted(channels):
                queue = channels[key]
                out.extend(key)
                out.append(len(queue))
                for m in queue:
                    out.extend(m)
        else:
            msgs = [m for i, m in enumerate(net) if i != where]
            if sends:
                msgs.extend(sends)
                msgs.sort()
            out.append(len(msgs))
            for m in msgs:
                out.extend(m)

    # -- predicates and invariants --------------------------------------------------
    def is_quiescent(self, enc: tuple) -> bool:
        """Encoded mirror of :meth:`repro.system.System.is_quiescent`."""
        if enc[self.net_offset] != 0:
            return False
        if not self.spec.directory.stable[enc[self.dir_offset]]:
            return False
        stable = self.spec.cache.stable
        width = CACHE_ENCODED_WIDTH
        return all(stable[enc[cid * width]] for cid in range(self.num_caches))

    def workload_remaining(self, enc: tuple) -> bool:
        """True when some cache still has accesses left in its budget."""
        width = CACHE_ENCODED_WIDTH
        max_accesses = self.max_accesses
        return any(
            enc[cid * width + CF_ISSUED] < max_accesses
            for cid in range(self.num_caches)
        )

    def check(self, enc: tuple, codes: tuple[str, ...]) -> bool:
        """Evaluate the compiled invariants named by *codes*; True = all hold.

        On a False return the caller decodes the state and re-runs the object
        invariants to build the exact violation report -- verdicts are a
        function of the state alone, so the slow path reproduces them.
        """
        permission = self.spec.cache.permission
        stable = self.spec.cache.stable
        width = CACHE_ENCODED_WIDTH
        n = self.num_caches
        for code in codes:
            if code == INV_SWMR:
                writers = readers = 0
                for cid in range(n):
                    p = permission[enc[cid * width]]
                    if p == 2:
                        writers += 1
                    elif p == 1:
                        readers += 1
                if writers > 1 or (writers and readers):
                    return False
            else:  # INV_SINGLE_OWNER
                stable_writers = 0
                for cid in range(n):
                    si = enc[cid * width]
                    if stable[si] and permission[si] == 2:
                        stable_writers += 1
                if stable_writers > 1:
                    return False
        return True


__all__ = ["TransitionKernel", "AMBIGUOUS", "INV_SWMR", "INV_SINGLE_OWNER"]
