"""Compiled transition kernel: the search hot path over encoded states.

The object execution substrate (:mod:`repro.system.system` /
:mod:`repro.system.executor`) interprets the generated FSMs over dataclass
trees -- the right representation for clarity and for counterexample
replay, but every explored transition pays for event objects, dataclass
construction and a full re-encode.  Murphi gets its throughput by compiling
the transition relation down to operations on packed bit-vector states; the
:class:`TransitionKernel` is that representation shift for this engine:

* the generated protocol is lowered once into integer-indexed dispatch
  tables (:func:`repro.core.fsm.compile_spec`);
* at kernel construction every transition's opcode list is additionally
  specialized into a flat generated function with its constants, lane
  offsets and destination kinds burned in (:meth:`TransitionKernel._compile_cache_fn`
  / :meth:`TransitionKernel._compile_directory_fn`), and plans carry their
  bound apply handler so the search loop dispatches without a single
  string comparison;
* enabled-event enumeration, guard evaluation, successor construction,
  quiescence and the default invariants (SWMR, single-owner) then run
  directly on the flat int-tuple encoding of
  :class:`~repro.system.codec.StateCodec` -- no :class:`GlobalState`,
  :class:`Message` or event object is ever materialized on the hot path,
  and network re-normalization copies untouched channels as single slices
  of the parent encoding.

The kernel is **exact by construction where it is fast, and delegating
where it is not**: every successor it produces is bit-identical to
``codec.encode(system.apply(state, event).state)`` (property-tested across
all bundled protocols in ``tests/verification/test_kernel.py``), and any
path that would produce an error outcome -- unexpected message, ambiguous
guards, missing data/requestor, a data-value violation -- returns ``None``
instead, telling the caller to decode the state and replay the single event
through the object executor, which is kept as the differential oracle and
produces the exact seed-identical error text.

Layout knowledge (field offsets, +1/+2 shifts) mirrors
:mod:`repro.system.codec`; both import their widths from
:mod:`repro.system.node_state` and :mod:`repro.system.message`.
"""

from __future__ import annotations

from repro.core.fsm import (
    DEST_DIRECTORY,
    DEST_OWNER,
    DEST_REQUESTOR,
    DEST_SAVED_SLOT,
    DEST_SELF,
    DEST_SHARERS,
    OP_ADD_OWNER_SHARER,
    OP_ADD_REQ_SHARER,
    OP_CLEAR_OWNER,
    OP_CLEAR_SHARERS,
    OP_COPY_DATA,
    OP_DIR_SEND,
    OP_INC_ACKS,
    OP_INVALIDATE_DATA,
    OP_PERFORM_ACCESS,
    OP_RM_REQ_SHARER,
    OP_RESET_ACKS,
    OP_SAVE_REQUESTOR,
    OP_SEND,
    OP_SET_ACKS_FROM_MSG,
    OP_SET_OWNER_REQ,
    OP_WRITE_MEMORY,
    CompilationUnsupported,
)
from repro.dsl.types import AccessKind
from repro.system.message import MESSAGE_ENCODED_WIDTH
from repro.system.node_state import CACHE_ENCODED_WIDTH, NUM_SAVED_SLOTS

#: Offsets inside one encoded cache block (see ``CacheNodeState.encoded``).
CF_STATE = 0
CF_ISSUED = 1
CF_DATA = 2
CF_ACKS_EXPECTED = 3
CF_ACKS_RECEIVED = 4
CF_SAVED = 5
CF_PENDING = 5 + NUM_SAVED_SLOTS
CF_LAST_OBSERVED = 6 + NUM_SAVED_SLOTS

#: Sentinel plan: more than one transition matched (the object executor
#: raises the "ambiguous transitions" protocol error for these).
AMBIGUOUS = object()

#: Compiled invariant codes accepted by :meth:`TransitionKernel.check`.
INV_SWMR = "swmr"
INV_SINGLE_OWNER = "single_owner"

#: The default invariant pair, fused into one pass by :meth:`TransitionKernel.check`.
#: Public under ``DEFAULT_CODES`` so the vectorized kernel's lane-mask batch
#: checker can recognize exactly the code tuple the fused pass covers.
_DEFAULT_CODES = DEFAULT_CODES = (INV_SWMR, INV_SINGLE_OWNER)


class TransitionKernel:
    """Successor generation and invariant checking on encoded states."""

    def __init__(self, system):
        self.system = system
        self.codec = codec = system.codec()
        spec = system.protocol.compiled()  # may raise CompilationUnsupported
        if (
            spec.cache.state_names != codec.cache_states
            or spec.directory.state_names != codec.dir_states
            or spec.mtype_names != codec.mtypes
            or spec.access_kinds != codec.access_kinds
        ):
            raise CompilationUnsupported("spec/codec index tables disagree")
        if spec.mtype_vnet != tuple(
            0 if name in system._request_names else 1 for name in spec.mtype_names
        ):
            # The spec derives vnets from the message catalog on its own;
            # they must match the tagging System._tag applies to sends.
            raise CompilationUnsupported("spec/system vnet tagging disagrees")
        for row in spec.cache.on_message:
            for cands in row.values():
                if any(ct.guard > 4 for ct in cands):
                    raise CompilationUnsupported("directory guard on a cache")
        for row in spec.directory.on_message:
            for cands in row.values():
                if any(0 < ct.guard <= 4 for ct in cands):
                    raise CompilationUnsupported("cache guard on the directory")
        self.spec = spec
        self.num_caches = system.num_caches
        self.ordered = system.ordered
        self.dir_offset = codec.dir_offset
        self.version_offset = codec.version_offset
        self.net_offset = codec.net_offset
        self.num_addresses = codec.num_addresses
        self.plane_stride = codec.plane_stride
        self.fault_offset = codec.fault_offset
        faults = system.faults
        self.fault_budget = faults.budget if faults is not None else 0
        self.fault_duplicate = bool(faults is not None and faults.duplicate)
        self.fault_reorder = bool(faults is not None and faults.reorder)
        self.fault_requeue = bool(faults is not None and faults.requeue)
        from repro.system.system import LitmusWorkload

        workload = system.workload
        if isinstance(workload, LitmusWorkload):
            self.max_accesses = 0
            self.access_order = ()
            #: Per-cache compiled programs: ``(access_index, addr)`` per op.
            self._litmus_ops = tuple(
                tuple(
                    (codec.access_kinds.index(kind), addr) for kind, addr in program
                )
                for program in workload.programs
            )
        else:
            self.max_accesses = workload.max_accesses_per_cache
            #: Access-kind indices in *workload enumeration order* (the object
            #: model iterates ``workload.access_kinds``, not the sorted catalog).
            self.access_order = tuple(
                codec.access_kinds.index(kind) for kind in workload.access_kinds
            )
            self._litmus_ops = None
        #: Single-plane, fault-free, non-litmus configs keep the historical
        #: fast enumeration/apply path bit-for-bit; everything else routes
        #: through the general (plane-aware) path.
        self._simple = (
            self.num_addresses == 1
            and self.fault_offset is None
            and self._litmus_ops is None
        )
        self.ai_load = codec.access_kinds.index(AccessKind.LOAD)
        self.ai_store = codec.access_kinds.index(AccessKind.STORE)
        def touches_sharers(ct) -> bool:
            for op in ct.ops:
                code = op[0]
                if code in (OP_ADD_REQ_SHARER, OP_ADD_OWNER_SHARER,
                            OP_RM_REQ_SHARER, OP_CLEAR_SHARERS):
                    return True
                if code == OP_DIR_SEND and (op[5] or op[3] == DEST_SHARERS):
                    return True
            return False

        #: Per-transition specialized op functions (see
        #: :meth:`_compile_cache_fn`); keyed by ``id(ct)`` -- the spec is
        #: compiled fresh per kernel, so the transitions are kernel-owned.
        self._cache_fns: dict[int, object] = {}
        for row in spec.cache.on_access:
            for ct in row:
                if ct is not None and id(ct) not in self._cache_fns:
                    self._cache_fns[id(ct)] = self._compile_cache_fn(ct)
        for row in spec.cache.on_message:
            for cands in row.values():
                for ct in cands:
                    if id(ct) not in self._cache_fns:
                        self._cache_fns[id(ct)] = self._compile_cache_fn(ct)

        #: Directory transitions that read or write the sharer set (ack
        #: counts, sharer fan-out, add/remove/clear).  Every other directory
        #: transition leaves the sharer run lanes untouched, so `apply`
        #: skips the set build and the sorted writeback for them.
        self._dir_sharer_cts = {
            id(ct)
            for row in spec.directory.on_message
            for cands in row.values()
            for ct in cands
            if touches_sharers(ct)
        }

        #: Specialized directory-transition functions, keyed like
        #: ``_cache_fns`` (see :meth:`_compile_directory_fn`).
        self._dir_fns: dict[int, object] = {}
        for row in spec.directory.on_message:
            for cands in row.values():
                for ct in cands:
                    if id(ct) not in self._dir_fns:
                        self._dir_fns[id(ct)] = self._compile_directory_fn(ct)

        #: Per-state-index issuable ``(access_index, transition, op_fn)``
        #: triples in workload order -- the access half of ``enabled()``
        #: reduces to a table walk (stall/None filtering done once here, at
        #: build time).
        self._access_plans = tuple(
            tuple(
                (ai, row[ai], self._cache_fns[id(row[ai])])
                for ai in self.access_order
                if row[ai] is not None and not row[ai].stall
            )
            for row in self.spec.cache.on_access
        )

    # -- event enumeration -------------------------------------------------------
    def enabled(self, enc: tuple) -> tuple[list, tuple]:
        """``(plans, net)`` for *enc*: one plan per enabled event, in exactly
        the order :meth:`repro.system.System.enabled_events` yields them.

        A plan is ``(handler, eev, cache_id, ct)`` for an access or
        ``(handler, eev, record, ct, where)`` for a delivery -- ``handler``
        is the bound apply specialization for that plan kind (so the hot
        loop dispatches with zero string comparisons) -- where ``eev`` is the
        codec event encoding, ``ct`` the selected compiled transition
        (``None`` when no transition matches -- applying will error -- or
        :data:`AMBIGUOUS`), and ``where`` locates the delivered message in
        the network (channel index when ordered, record index when
        unordered).  *net* is the state's parsed-network handle — opaque to
        callers, who only thread it back into :meth:`apply` (internally the
        memoized ``(items, channel lane offsets)`` pair of the codec, parsed
        once per distinct section).
        """
        if not self._simple:
            return self._enabled_general(enc)
        plans: list = []
        apply_access = self._apply_access_plan
        apply_delivery = self._apply_delivery_plan
        stable = self.spec.cache.stable
        access_plans = self._access_plans
        width = CACHE_ENCODED_WIDTH
        max_accesses = self.max_accesses
        for cid in range(self.num_caches):
            base = cid * width
            if enc[base + CF_ISSUED] >= max_accesses:
                continue
            si = enc[base]
            if stable[si]:
                for ai, ct, fn in access_plans[si]:
                    plans.append((apply_access, (0, cid, ai), cid, ct, fn))
        net = self.codec.parsed_network(enc)
        items = net[0]
        # Delivery planning, inlined (one call per in-flight message adds up):
        # pick the receiving controller's candidate row, resolve the unique
        # unguarded candidate without the `_select` call, and drop stalled
        # deliveries -- they are not enabled.
        dir_rows = self.spec.directory.on_message
        cache_rows = self.spec.cache.on_message
        cache_fns = self._cache_fns
        d0 = self.dir_offset
        select = self._select
        if self.ordered:
            deliverable = enumerate(item[3][0] for item in items)
        else:
            def _deduped(records):
                # Identical in-flight messages lead to the same successor;
                # the object model de-duplicates them the same way.
                previous = None
                for idx, rec in enumerate(records):
                    if rec != previous:
                        previous = rec
                        yield idx, rec
            deliverable = _deduped(items)
        for idx, rec in deliverable:
            fn = None
            if rec[2] == 1:  # destination is the directory (id -1, +2 shift)
                cands = dir_rows[enc[d0]].get(rec[0])
                base = None
            else:
                base = (rec[2] - 2) * width
                cands = cache_rows[enc[base]].get(rec[0])
            if cands:
                if len(cands) == 1 and cands[0].guard == 0:
                    ct = cands[0]
                else:
                    ct = select(cands, rec, enc, base, d0)
                if ct is not None and ct is not AMBIGUOUS:
                    if ct.stall:
                        continue  # stalled deliveries are not enabled
                    if base is not None:
                        fn = cache_fns[id(ct)]
            else:
                ct = None
            plans.append((apply_delivery, (1,) + rec, rec, ct, idx, fn))
        return plans, net

    @staticmethod
    def _deduped_records(records):
        """Distinct unordered-network records (the bag is sorted, so equal
        records are adjacent); mirrors ``UnorderedNetwork.deliverable``."""
        previous = None
        for idx, rec in enumerate(records):
            if rec != previous:
                previous = rec
                yield idx, rec

    def _enabled_general(self, enc: tuple) -> tuple[list, tuple]:
        """Plane-aware twin of :meth:`enabled` for multi-address, fault-model
        and litmus configurations.  Returns ``(plans, planes)`` where
        *planes* is the :meth:`StateCodec.parsed_planes` handle; plan order
        mirrors :meth:`repro.system.System.enabled_events` exactly
        (accesses, then deliveries plane by plane, then faults)."""
        plans: list = []
        planes = self.codec.parsed_planes(enc)
        num_addresses = self.num_addresses
        stride = self.plane_stride
        width = CACHE_ENCODED_WIDTH
        stable = self.spec.cache.stable
        single = num_addresses == 1
        apply_access = self._apply_access_plan_general
        if self._litmus_ops is not None:
            on_access = self.spec.cache.on_access
            for cid in range(self.num_caches):
                ops = self._litmus_ops[cid]
                pc = sum(
                    enc[a * stride + cid * width + CF_ISSUED]
                    for a in range(num_addresses)
                )
                if pc >= len(ops):
                    continue
                if not all(
                    stable[enc[a * stride + cid * width]]
                    for a in range(num_addresses)
                ):
                    continue
                ai, addr = ops[pc]
                ct = on_access[enc[addr * stride + cid * width]][ai]
                if ct is None or ct.stall:
                    continue
                eev = (0, cid, ai) if single else (0, cid, ai, addr)
                plans.append(
                    (apply_access, eev, cid, ct, self._cache_fns[id(ct)], addr)
                )
        else:
            access_plans = self._access_plans
            max_accesses = self.max_accesses
            for cid in range(self.num_caches):
                for addr in range(num_addresses):
                    base = addr * stride + cid * width
                    if enc[base + CF_ISSUED] >= max_accesses:
                        continue
                    si = enc[base]
                    if stable[si]:
                        for ai, ct, fn in access_plans[si]:
                            eev = (0, cid, ai) if single else (0, cid, ai, addr)
                            plans.append((apply_access, eev, cid, ct, fn, addr))
        apply_delivery = self._apply_delivery_plan_general
        dir_rows = self.spec.directory.on_message
        cache_rows = self.spec.cache.on_message
        cache_fns = self._cache_fns
        select = self._select
        bypass = self.fault_offset is not None and self.fault_requeue and self.ordered
        for addr in range(num_addresses):
            items = planes[addr][0]
            d0 = addr * stride + self.dir_offset
            if bypass:
                # Re-queue semantics (mirrors the object model's fault-mode
                # `_delivery_events`): per channel, plan the first record
                # whose transition does not stall -- stalled heads are
                # bypassed rather than blocking the channel.
                for idx, item in enumerate(items):
                    for pos, rec in enumerate(item[3]):
                        fn = None
                        if rec[2] == 1:  # destination is the directory
                            cands = dir_rows[enc[d0]].get(rec[0])
                            base = None
                        else:
                            base = addr * stride + (rec[2] - 2) * width
                            cands = cache_rows[enc[base]].get(rec[0])
                        if cands:
                            if len(cands) == 1 and cands[0].guard == 0:
                                ct = cands[0]
                            else:
                                ct = select(cands, rec, enc, base, d0)
                            if ct is not None and ct is not AMBIGUOUS:
                                if ct.stall:
                                    continue  # bypass: try the next record
                                if base is not None:
                                    fn = cache_fns[id(ct)]
                        else:
                            ct = None
                        eev = (1,) + rec if single else (1,) + rec + (addr,)
                        plans.append(
                            (apply_delivery, eev, rec, ct, idx, fn, addr, pos)
                        )
                        break
                continue
            if self.ordered:
                deliverable = enumerate(item[3][0] for item in items)
            else:
                deliverable = self._deduped_records(items)
            for idx, rec in deliverable:
                fn = None
                if rec[2] == 1:  # destination is the directory
                    cands = dir_rows[enc[d0]].get(rec[0])
                    base = None
                else:
                    base = addr * stride + (rec[2] - 2) * width
                    cands = cache_rows[enc[base]].get(rec[0])
                if cands:
                    if len(cands) == 1 and cands[0].guard == 0:
                        ct = cands[0]
                    else:
                        ct = select(cands, rec, enc, base, d0)
                    if ct is not None and ct is not AMBIGUOUS:
                        if ct.stall:
                            continue  # stalled deliveries are not enabled
                        if base is not None:
                            fn = cache_fns[id(ct)]
                else:
                    ct = None
                eev = (1,) + rec if single else (1,) + rec + (addr,)
                plans.append((apply_delivery, eev, rec, ct, idx, fn, addr, 0))
        fault_lane = self.fault_offset
        if fault_lane is not None and enc[fault_lane] < self.fault_budget:
            if self.fault_duplicate:
                apply_dup = self._apply_duplicate_plan
                for addr in range(num_addresses):
                    items = planes[addr][0]
                    if self.ordered:
                        candidates = enumerate(item[3][0] for item in items)
                    else:
                        candidates = self._deduped_records(items)
                    for idx, rec in candidates:
                        eev = (2,) + rec if single else (2,) + rec + (addr,)
                        plans.append((apply_dup, eev, addr, idx))
            if self.fault_reorder and self.ordered:
                apply_reorder = self._apply_reorder_plan
                for addr in range(num_addresses):
                    items = planes[addr][0]
                    for idx, (src, dst, vnet, msgs) in enumerate(items):
                        for pos in range(len(msgs) - 1):
                            if msgs[pos] != msgs[pos + 1]:
                                eev = (
                                    (3, src, dst, vnet, pos)
                                    if single
                                    else (3, src, dst, vnet, pos, addr)
                                )
                                plans.append((apply_reorder, eev, addr, idx, pos))
        return plans, planes

    def _select(
        self, cands: tuple, rec: tuple, enc: tuple, base: int | None, d0: int
    ):
        """Mirror of :func:`repro.system.executor.select_transition` over
        encoded fields: evaluate guards, prefer a unique guarded match.
        The caller (``enabled``) resolves the single-unguarded-candidate
        case inline, so every *cands* seen here needs the full walk."""
        matching = []
        guarded = []
        for ct in cands:
            g = ct.guard
            if g and not self._guard(g, rec, enc, base, d0):
                continue
            matching.append(ct)
            if g:
                guarded.append(ct)
        if len(guarded) == 1:
            return guarded[0]
        if len(matching) == 1:
            return matching[0]
        if not matching:
            return None
        return AMBIGUOUS

    def _guard(
        self, g: int, rec: tuple, enc: tuple, base: int | None, d0: int
    ) -> bool:
        """Encoded mirror of :func:`repro.system.executor.evaluate_guard`."""
        if g <= 2:  # ack_count_zero / ack_count_nonzero
            outstanding = (rec[9] - 2 if rec[8] else 0) - enc[base + CF_ACKS_RECEIVED]
            return outstanding <= 0 if g == 1 else outstanding > 0
        if g <= 4:  # acks_complete / acks_incomplete
            expected = enc[base + CF_ACKS_EXPECTED]
            complete = expected != 0 and enc[base + CF_ACKS_RECEIVED] + 1 >= expected - 1
            return complete if g == 3 else not complete
        if g <= 6:  # from_owner / not_from_owner
            owner = enc[d0 + 1]
            is_owner = owner != 0 and rec[1] == owner
            return is_owner if g == 5 else not is_owner
        if g >= 11:  # owner_is_requestor / owner_not_requestor
            # rec[5] is requestor+2; the owner lane uses the same +2 encoding,
            # so equality holds exactly when the carried requestor is owner.
            # Both guards require a recorded owner; with none, neither
            # matches and an unguarded default wins.
            owner = enc[d0 + 1]
            is_req_owner = bool(rec[4]) and owner != 0 and rec[5] == owner
            if g == 11:
                return is_req_owner
            return owner != 0 and not is_req_owner
        run = enc[d0 + 2 : d0 + 2 + self.num_caches]
        if g <= 8:  # last_sharer / not_last_sharer
            last = run[0] == rec[1] and (self.num_caches == 1 or run[1] == 0)
            return last if g == 7 else not last
        # from_sharer / not_from_sharer (padding zeros can never equal src+2)
        is_sharer = rec[1] in run
        return is_sharer if g == 9 else not is_sharer

    # -- successor construction ---------------------------------------------------
    def apply(self, enc: tuple, plan: tuple, net: tuple) -> tuple | None:
        """The successor encoding for *plan*, or ``None`` for "take the slow
        path": decode and replay the one event through ``System.apply`` (it
        reproduces the exact error outcome, or in rare benign cases the
        successor, at object speed).

        ``plan[0]`` *is* the bound apply handler (set by :meth:`enabled`),
        so the per-transition hot loops may call ``plan[0](enc, plan, net)``
        directly; this method is the equivalent stable entry point.
        """
        return plan[0](enc, plan, net)

    def _apply_access_plan(self, enc: tuple, plan: tuple, net: tuple):
        return self._apply_access(enc, plan[2], plan[1][2], plan[3], net, plan[4])

    def _apply_delivery_plan(self, enc: tuple, plan: tuple, net: tuple):
        ct = plan[3]
        if ct is None or ct is AMBIGUOUS:
            return None  # unexpected message / ambiguous guards -> object error
        rec = plan[2]
        if rec[2] == 1:
            return self._apply_directory(enc, rec, ct, net, plan[4])
        return self._apply_cache_delivery(enc, rec, ct, net, plan[4], plan[5])

    def _apply_access(self, enc, cid, ai, ct, net, fn):
        out = list(enc[: self.net_offset])
        base = cid * CACHE_ENCODED_WIDTH
        out[base + CF_ISSUED] += 1
        out[base + CF_PENDING] = ai + 1
        sends: list = []
        if fn is not None and not fn(out, base, cid, None, ai, sends):
            return None
        out[base + CF_STATE] = ct.next_state
        if ct.has_perform:
            out[base + CF_PENDING] = 0
        self._emit_net(out, enc, net, None, sends, self.net_offset, len(enc))
        return tuple(out)

    def _apply_cache_delivery(self, enc, rec, ct, net, where, fn):
        cid = rec[2] - 2
        out = list(enc[: self.net_offset])
        base = cid * CACHE_ENCODED_WIDTH
        pending = out[base + CF_PENDING]
        ai = pending - 1 if pending else None
        sends: list = []
        if fn is not None and not fn(out, base, cid, rec, ai, sends):
            return None
        out[base + CF_STATE] = ct.next_state
        if ct.has_perform:
            out[base + CF_PENDING] = 0
        self._emit_net(out, enc, net, where, sends, self.net_offset, len(enc))
        return tuple(out)

    # -- general (plane-aware) apply handlers -------------------------------------
    def _emit_net_plane(self, out, enc, planes, addr, where, sends, pos=0):
        """Emit the successor's network sections: earlier planes verbatim,
        plane *addr* through :meth:`_emit_net`, later planes verbatim."""
        items, offsets, start = planes[addr]
        end = start + offsets[-1]
        out.extend(enc[self.net_offset : start])
        self._emit_net(out, enc, (items, offsets), where, sends, start, end, pos)
        out.extend(enc[end:])

    def _apply_access_plan_general(self, enc: tuple, plan: tuple, planes: tuple):
        addr = plan[5]
        cid = plan[2]
        ai = plan[1][2]
        ct = plan[3]
        fn = plan[4]
        plane = addr * self.plane_stride
        out = list(enc[: self.net_offset])
        base = plane + cid * CACHE_ENCODED_WIDTH
        out[base + CF_ISSUED] += 1
        out[base + CF_PENDING] = ai + 1
        sends: list = []
        if fn is not None and not fn(
            out, base, cid, None, ai, sends, plane + self.version_offset
        ):
            return None
        out[base + CF_STATE] = ct.next_state
        if ct.has_perform:
            out[base + CF_PENDING] = 0
        self._emit_net_plane(out, enc, planes, addr, None, sends)
        return tuple(out)

    def _apply_delivery_plan_general(self, enc: tuple, plan: tuple, planes: tuple):
        ct = plan[3]
        if ct is None or ct is AMBIGUOUS:
            return None  # unexpected message / ambiguous guards -> object error
        rec = plan[2]
        addr = plan[6]
        where = plan[4]
        plane = addr * self.plane_stride
        out = list(enc[: self.net_offset])
        sends: list = []
        if rec[2] == 1:  # directory delivery
            d0 = plane + self.dir_offset
            if not self._dir_fns[id(ct)](
                out, rec, sends, d0, d0 + 2 + self.num_caches
            ):
                return None
        else:
            cid = rec[2] - 2
            base = plane + cid * CACHE_ENCODED_WIDTH
            pending = out[base + CF_PENDING]
            ai = pending - 1 if pending else None
            fn = plan[5]
            if fn is not None and not fn(
                out, base, cid, rec, ai, sends, plane + self.version_offset
            ):
                return None
            out[base + CF_STATE] = ct.next_state
            if ct.has_perform:
                out[base + CF_PENDING] = 0
        self._emit_net_plane(out, enc, planes, addr, where, sends, plan[7])
        return tuple(out)

    def _apply_duplicate_plan(self, enc: tuple, plan: tuple, planes: tuple):
        """Decode-free duplication: splice an extra copy of the duplicated
        record into its section (behind the head for ordered channels,
        adjacent to its twin in the sorted unordered bag)."""
        addr, where = plan[2], plan[3]
        items, offsets, start = planes[addr]
        end = start + offsets[-1]
        mw = MESSAGE_ENCODED_WIDTH
        out = list(enc[: self.net_offset])
        out[self.fault_offset] += 1
        out.extend(enc[self.net_offset : start])
        if self.ordered:
            at = start + offsets[where]  # channel header
            out.extend(enc[start : at + 3])
            out.append(enc[at + 3] + 1)
            out.extend(enc[at + 4 : at + 4 + mw])  # the head, again
            out.extend(enc[at + 4 : end])
        else:
            at = start + offsets[where]  # the record itself
            out.append(enc[start] + 1)
            out.extend(enc[start + 1 : at])
            out.extend(enc[at : at + mw])  # the copy, kept adjacent (sorted)
            out.extend(enc[at : end])
        out.extend(enc[end:])
        return tuple(out)

    def _apply_reorder_plan(self, enc: tuple, plan: tuple, planes: tuple):
        """Decode-free reorder: swap two adjacent message records in place."""
        addr, chan, pos = plan[2], plan[3], plan[4]
        offsets, start = planes[addr][1], planes[addr][2]
        mw = MESSAGE_ENCODED_WIDTH
        out = list(enc[: self.net_offset])
        out[self.fault_offset] += 1
        first = start + offsets[chan] + 4 + pos * mw
        out.extend(enc[self.net_offset : first])
        out.extend(enc[first + mw : first + 2 * mw])
        out.extend(enc[first : first + mw])
        out.extend(enc[first + 2 * mw :])
        return tuple(out)

    def _compile_cache_fn(self, ct):
        """Specialize one cache transition's opcode list into a flat function.

        The opcode interpreter paid a dispatch chain per op per applied
        transition; here every op's constants (message type, vnet,
        destination kind, slot numbers, lane offsets) are burned into
        generated straight-line source instead, executed once per kernel
        construction.  ``fn(out, base, cid, rec, ai, sends) -> bool`` has
        the exact interpreter semantics: mutate the cache block in place,
        append encoded send records, and return False to route the event to
        the object-executor slow path.  Returns ``None`` for an empty op
        list (callers skip the call entirely).
        """
        if not ct.ops:
            return None
        # Plane-0 version offset as a default arg: single-plane callers omit
        # it, multi-address callers pass their plane's absolute offset.
        lines = [f"def fn(out, base, cid, rec, ai, sends, vo={self.version_offset}):"]
        emit = lines.append
        tmp = 0
        for op in ct.ops:
            code = op[0]
            if code == OP_SEND:
                _, mt, vnet, dest, arg, from_slot, with_data = op
                if dest == DEST_DIRECTORY:
                    dst = "1"
                elif dest == DEST_REQUESTOR:
                    emit(" if rec is None or not rec[4]:")
                    emit("  return False  # no requestor available")
                    dst = "rec[5]"
                elif dest == DEST_SELF:
                    dst = "cid + 2"
                else:  # DEST_SAVED_SLOT
                    emit(f" s{tmp} = out[base + {CF_SAVED + arg}]")
                    emit(f" if s{tmp} == 0:")
                    emit("  return False  # deferred response without saved requestor")
                    dst = f"s{tmp} + 1"
                    tmp += 1
                if from_slot is not None:
                    emit(f" s{tmp} = out[base + {CF_SAVED + from_slot}]")
                    emit(f" if s{tmp} == 0:")
                    emit("  return False")
                    req = f"s{tmp} + 1"
                    tmp += 1
                else:
                    emit(" req = rec[5] if rec is not None and rec[4] else cid + 2")
                    req = "req"
                head = f"({mt}, cid + 2, {dst}, {vnet}, 1, {req}"
                if with_data:
                    emit(f" data = out[base + {CF_DATA}]")
                    emit(" if data:")
                    emit(f"  sends.append({head}, 1, data + 1, 0, 0))")
                    emit(" else:")
                    emit(f"  sends.append({head}, 0, 0, 0, 0))")
                else:
                    emit(f" sends.append({head}, 0, 0, 0, 0))")
            elif code == OP_COPY_DATA:
                emit(" if rec is None or not rec[6]:")
                emit('  return False  # "expected data in <message>"')
                emit(f" out[base + {CF_DATA}] = rec[7] - 1")
            elif code == OP_INVALIDATE_DATA:
                emit(f" out[base + {CF_DATA}] = 0")
            elif code == OP_SET_ACKS_FROM_MSG:
                emit(
                    f" out[base + {CF_ACKS_EXPECTED}] ="
                    " rec[9] - 1 if rec is not None and rec[8] else 0"
                )
            elif code == OP_INC_ACKS:
                emit(f" out[base + {CF_ACKS_RECEIVED}] += 1")
            elif code == OP_RESET_ACKS:
                emit(f" out[base + {CF_ACKS_EXPECTED}] = 0")
                emit(f" out[base + {CF_ACKS_RECEIVED}] = 0")
            elif code == OP_SAVE_REQUESTOR:
                emit(
                    f" out[base + {CF_SAVED + op[1]}] ="
                    " rec[5] - 1 if rec is not None and rec[4] else 0"
                )
            else:  # OP_PERFORM_ACCESS
                emit(" if ai is not None:")
                emit(f"  if ai == {self.ai_load}:")
                emit(f"   data = out[base + {CF_DATA}]")
                emit(f"   if data == 0 or data < out[base + {CF_LAST_OBSERVED}]:")
                emit("    return False  # load without data / went backwards")
                emit(f"   out[base + {CF_LAST_OBSERVED}] = data")
                emit(f"  elif ai == {self.ai_store}:")
                emit(f"   data = out[base + {CF_DATA}]")
                emit("   if data == 0 or data - 1 != out[vo]:")
                emit("    return False  # store without data / data-value violation")
                emit("   version = out[vo] + 1")
                emit("   out[vo] = version")
                emit(f"   out[base + {CF_DATA}] = version + 1")
                emit(f"   out[base + {CF_LAST_OBSERVED}] = version + 1")
                emit("  else:  # replacement: the block leaves the cache")
                emit(f"   out[base + {CF_DATA}] = 0")
        emit(" return True")
        namespace: dict = {}
        exec("\n".join(lines), namespace)  # noqa: S102 - trusted generated source
        return namespace["fn"]

    def _apply_directory(self, enc, rec, ct, net, where):
        out = list(enc[: self.net_offset])
        sends: list = []
        if not self._dir_fns[id(ct)](out, rec, sends):
            return None
        self._emit_net(out, enc, net, where, sends, self.net_offset, len(enc))
        return tuple(out)

    def _compile_directory_fn(self, ct):
        """Directory twin of :meth:`_compile_cache_fn`.

        ``fn(out, rec, sends) -> bool`` runs the whole directory-side
        mutation for one transition: lane offsets, destination kinds and
        data/ack flags are burned in at generation time, the owner local and
        the sharer set are materialized only when some op actually reads or
        writes them, and the sorted sharer-run writeback happens only for
        transitions that touch the set.  False routes to the object-executor
        slow path, exactly like the interpreted loop it replaces.
        """
        d0 = self.dir_offset
        n = self.num_caches
        mem_i = d0 + 2 + n
        codes = [op[0] for op in ct.ops]
        touches_sharers = id(ct) in self._dir_sharer_cts
        uses_owner = any(
            c in (OP_SET_OWNER_REQ, OP_CLEAR_OWNER, OP_ADD_OWNER_SHARER)
            for c in codes
        ) or any(
            op[0] == OP_DIR_SEND and op[3] == DEST_OWNER for op in ct.ops
        )
        # Plane-0 lanes as default args: single-plane callers omit them,
        # multi-address callers pass their plane's absolute offsets.
        lines = [f"def fn(out, rec, sends, d0={d0}, mem_i={mem_i}):"]
        emit = lines.append
        emit(" reqf = rec[4]")
        emit(" reqv = rec[5]")
        if uses_owner:
            emit(" owner = out[d0 + 1]")
        if touches_sharers:
            emit(" sharers = {v for v in out[d0 + 2:mem_i] if v}")
        for op in ct.ops:
            code = op[0]
            if code == OP_DIR_SEND:
                _, mt, vnet, dest, with_data, with_ack = op
                if with_data:
                    emit(" dv = out[mem_i] + 2")
                    df, dv = "1", "dv"
                else:
                    df, dv = "0", "0"
                if with_ack:
                    emit(" av = len(sharers) - (1 if reqf and reqv in sharers else 0) + 2")
                    af, av = "1", "av"
                else:
                    af, av = "0", "0"
                record_tail = f"{vnet}, reqf, reqv, {df}, {dv}, {af}, {av})"
                if dest == DEST_REQUESTOR:
                    emit(" if not reqf:")
                    emit('  return False  # "needs a requestor"')
                    emit(f" sends.append(({mt}, 1, reqv, {record_tail})")
                elif dest == DEST_OWNER:
                    emit(" if owner == 0:")
                    emit('  return False  # "needs an owner"')
                    emit(f" sends.append(({mt}, 1, owner, {record_tail})")
                else:  # DEST_SHARERS
                    emit(" for dst in sorted(s for s in sharers if not (reqf and s == reqv)):")
                    emit(f"  sends.append(({mt}, 1, dst, {record_tail})")
            elif code == OP_WRITE_MEMORY:
                emit(" if not rec[6]:")
                emit('  return False  # "expected data in <message>"')
                emit(" out[mem_i] = rec[7] - 2")
            elif code == OP_SET_OWNER_REQ:
                emit(" owner = reqv if reqf else 0")
            elif code == OP_CLEAR_OWNER:
                emit(" owner = 0")
            elif code == OP_ADD_REQ_SHARER:
                emit(" if not reqf:")
                emit("  return False  # object path would record a null sharer")
                emit(" sharers.add(reqv)")
            elif code == OP_ADD_OWNER_SHARER:
                emit(" if owner:")
                emit("  sharers.add(owner)")
            elif code == OP_RM_REQ_SHARER:
                emit(" if reqf:")
                emit("  sharers.discard(reqv)")
            else:  # OP_CLEAR_SHARERS
                emit(" sharers.clear()")
        emit(f" out[d0] = {ct.next_state}")
        if uses_owner:
            emit(" out[d0 + 1] = owner")
        if touches_sharers:
            emit(" run = sorted(sharers)")
            emit(f" run.extend(0 for _ in range({n} - len(run)))")
            emit(" out[d0 + 2:mem_i] = run")
        emit(" return True")
        namespace: dict = {}
        exec("\n".join(lines), namespace)  # noqa: S102 - trusted generated source
        return namespace["fn"]

    def _emit_net(
        self, out: list, enc: tuple, net: tuple, where: int | None, sends: list,
        no: int, end: int, pos: int = 0,
    ) -> None:
        """Append the successor network section: the parent's section minus
        the delivered message (record *pos* of channel *where* when ordered
        -- non-zero only under fault-mode re-queue bypass -- or record index
        *where* when unordered) plus *sends*, re-normalized exactly like
        ``Network.deliver`` + ``Network.send``.

        The parent section is already normalized (channels sorted, FIFO
        order inside each), so the successor section is a sorted merge with
        at most a couple of touched channels, built from *enc* slices: a
        transition with no sends and no delivery copies the section
        verbatim, a pure absorption splices out one message record (and its
        channel header, if emptied), and sends rebuild only the channels
        they touch -- every untouched channel is one slice copy through the
        per-section channel offsets of *net* (the parse handle built by
        :meth:`enabled`).  *no*/*end* bound the section's lanes in *enc*
        (the whole suffix for single-plane states, one plane's section for
        multi-address states -- *net*'s offsets are relative to *no*).
        """
        if not sends and where is None:
            out.extend(enc[no:end])
            return
        items, offsets = net
        mw = MESSAGE_ENCODED_WIDTH
        if not self.ordered:
            if not sends:
                at = no + 1 + where * mw
                out.append(enc[no] - 1)
                out.extend(enc[no + 1 : at])
                out.extend(enc[at + mw : end])
                return
            msgs = [m for i, m in enumerate(items) if i != where]
            msgs.extend(sends)
            msgs.sort()
            out.append(len(msgs))
            for m in msgs:
                out.extend(m)
            return
        if not sends:
            # Drop record `pos` of channel `where` by lane splicing alone.
            at = no + offsets[where]
            nmsgs = enc[at + 3]
            if nmsgs == 1:
                out.append(enc[no] - 1)
                out.extend(enc[no + 1 : at])
                out.extend(enc[at + 4 + mw : end])
                return
            rec0 = at + 4 + pos * mw
            out.append(enc[no])
            out.extend(enc[no + 1 : at + 3])
            out.append(nmsgs - 1)
            out.extend(enc[at + 4 : rec0])
            out.extend(enc[rec0 + mw : end])
            return
        if len(sends) == 1:
            self._emit_net_single(
                out, enc, items, offsets, where, sends[0], no, end, pos
            )
            return
        send_map: dict = {}
        for m in sends:
            key = (m[1], m[2], m[3])
            queue = send_map.get(key)
            if queue is None:
                send_map[key] = [m]
            else:
                queue.append(m)
        emptied = where is not None and len(items[where][3]) == 1
        pending = []
        for key in send_map:
            for idx, item in enumerate(items):
                if (
                    item[0] == key[0]
                    and item[1] == key[1]
                    and item[2] == key[2]
                    and not (emptied and idx == where)
                ):
                    break
            else:
                pending.append(key)
        pending.sort()
        flush_at = len(pending)
        out.append(len(items) - (1 if emptied else 0) + flush_at)
        flushed = 0
        for idx, item in enumerate(items):
            if flushed < flush_at:
                key = item[:3]
                while flushed < flush_at and pending[flushed] < key:
                    fresh = pending[flushed]
                    queue = send_map[fresh]
                    out.extend(fresh)
                    out.append(len(queue))
                    for m in queue:
                        out.extend(m)
                    flushed += 1
            if idx == where and emptied:
                # Removed; if a send re-opens this key the merge above (or
                # the tail flush) emits it at the same sorted position.
                continue
            extra = send_map.get(item[:3])
            if extra is None:
                if idx != where:
                    out.extend(enc[no + offsets[idx] : no + offsets[idx + 1]])
                    continue
                msgs = item[3][:pos] + item[3][pos + 1 :]
            elif idx == where:
                msgs = item[3][:pos] + item[3][pos + 1 :] + tuple(extra)
            else:
                msgs = item[3] + tuple(extra)
            out.extend((item[0], item[1], item[2], len(msgs)))
            for m in msgs:
                out.extend(m)
        while flushed < flush_at:
            fresh = pending[flushed]
            queue = send_map[fresh]
            out.extend(fresh)
            out.append(len(queue))
            for m in queue:
                out.extend(m)
            flushed += 1

    def _emit_net_single(
        self, out: list, enc: tuple, items: list, offsets: tuple,
        where: int | None, m: tuple, no: int, end: int, pos: int = 0,
    ) -> None:
        """One-send ordered specialization of :meth:`_emit_net`.

        The vast majority of sending transitions emit exactly one message,
        and a single send plus (at most) one absorbed record touch at most
        two channels of an already-sorted section -- so the successor section
        is the parent's lanes with one or two local edits, emitted as slice
        copies around them.  Bit-identical to the general merge (*pos* is the
        absorbed record's index in channel *where*; non-zero only under
        fault-mode re-queue bypass).
        """
        mw = MESSAGE_ENCODED_WIDTH
        k0, k1, k2 = m[1], m[2], m[3]
        nchan = enc[no]
        emptied = False
        if where is not None:
            at_w = no + offsets[where]
            emptied = enc[at_w + 3] == 1
        # Locate the send's channel: a match to append into, or the first
        # channel whose key sorts above (the insertion point).  The emptied
        # channel is no match -- re-opening its key recreates the channel in
        # place, which the combined edit below handles.
        target = insert_before = None
        for idx in range(len(items)):
            at = no + offsets[idx]
            c0, c1, c2 = enc[at], enc[at + 1], enc[at + 2]
            if c0 < k0 or (c0 == k0 and (c1 < k1 or (c1 == k1 and c2 <= k2))):
                if c0 == k0 and c1 == k1 and c2 == k2 and not (
                    emptied and idx == where
                ):
                    target = idx
                    break
                continue
            insert_before = idx
            break
        edits: list[tuple] = []  # (abs_start, skip_lanes, replacement)
        #: The delivery edit is folded into the send edit when both touch
        #: the same channel; only an unhandled `where` takes the standalone
        #: head-removal edit below.
        where_handled = where is None
        if target is not None:
            at_t = no + offsets[target]
            if target == where:
                # Record absorbed, send appended: the count is unchanged.
                edits.append((at_t + 4 + pos * mw, mw, ()))
                edits.append((no + offsets[target + 1], 0, m))
                where_handled = True
            else:
                edits.append((at_t + 3, 1, (enc[at_t + 3] + 1,)))
                edits.append((no + offsets[target + 1], 0, m))
        else:
            if emptied and enc[at_w] == k0 and enc[at_w + 1] == k1 and enc[at_w + 2] == k2:
                # Re-opened in place: the old single message becomes `m`,
                # the channel (and the count) survives.
                edits.append((at_w + 4, mw, m))
                where_handled = True
            else:
                at_i = (
                    no + offsets[insert_before]
                    if insert_before is not None
                    else end
                )
                edits.append((at_i, 0, (k0, k1, k2, 1) + m))
                nchan += 1
        if not where_handled:
            if emptied:
                edits.append((at_w, 4 + mw, ()))
                nchan -= 1
            else:
                edits.append((at_w + 3, 1, (enc[at_w + 3] - 1,)))
                edits.append((at_w + 4 + pos * mw, mw, ()))
        # Plain tuple sort: same-position edits order by skip width, which
        # puts an insertion (skip 0) before a removal at the same lane.
        edits.sort()
        out.append(nchan)
        pos = no + 1
        for start, skip, replacement in edits:
            out.extend(enc[pos:start])
            out.extend(replacement)
            pos = start + skip
        out.extend(enc[pos:end])

    # -- predicates and invariants --------------------------------------------------
    def is_quiescent(self, enc: tuple) -> bool:
        """Encoded mirror of :meth:`repro.system.System.is_quiescent`."""
        stable = self.spec.cache.stable
        width = CACHE_ENCODED_WIDTH
        if self.num_addresses == 1:
            if enc[self.net_offset] != 0:
                return False
            if not self.spec.directory.stable[enc[self.dir_offset]]:
                return False
            return all(stable[enc[cid * width]] for cid in range(self.num_caches))
        # All sections empty <=> the suffix is exactly one zero count lane
        # per plane (a non-empty section is always longer than one lane).
        num_addresses = self.num_addresses
        if len(enc) != self.net_offset + num_addresses:
            return False
        stride = self.plane_stride
        dir_stable = self.spec.directory.stable
        for addr in range(num_addresses):
            plane = addr * stride
            if not dir_stable[enc[plane + self.dir_offset]]:
                return False
            if not all(
                stable[enc[plane + cid * width]] for cid in range(self.num_caches)
            ):
                return False
        return True

    def workload_remaining(self, enc: tuple) -> bool:
        """True when some cache still has accesses left in its budget."""
        width = CACHE_ENCODED_WIDTH
        if self._litmus_ops is not None:
            stride = self.plane_stride
            num_addresses = self.num_addresses
            return any(
                sum(
                    enc[a * stride + cid * width + CF_ISSUED]
                    for a in range(num_addresses)
                )
                < len(self._litmus_ops[cid])
                for cid in range(self.num_caches)
            )
        max_accesses = self.max_accesses
        stride = self.plane_stride
        return any(
            enc[addr * stride + cid * width + CF_ISSUED] < max_accesses
            for addr in range(self.num_addresses)
            for cid in range(self.num_caches)
        )

    def is_complete(self, enc: tuple) -> bool:
        """Encoded mirror of :meth:`repro.system.System.is_complete`."""
        return self.is_quiescent(enc) and not self.workload_remaining(enc)

    def check(self, enc: tuple, codes: tuple) -> bool:
        """Evaluate the compiled invariants named by *codes*; True = all hold.

        On a False return the caller decodes the state and re-runs the object
        invariants to build the exact violation report -- verdicts are a
        function of the state alone, so the slow path reproduces them.  The
        default pair (SWMR + single-owner) runs as one fused pass over the
        cache state lanes.  SWMR and single-owner are per-address properties:
        with several planes each plane is checked independently.  A litmus
        invariant arrives as the tuple code ``("litmus", clauses)`` with each
        clause a tuple of ``(cache_id, addr, version)`` observations, and
        fires only on complete states where some clause matches in full.
        """
        permission = self.spec.cache.permission
        stable = self.spec.cache.stable
        width = CACHE_ENCODED_WIDTH
        n = self.num_caches
        stride = self.plane_stride
        if codes == _DEFAULT_CODES:
            for addr in range(self.num_addresses):
                plane = addr * stride
                writers = readers = stable_writers = 0
                for cid in range(n):
                    si = enc[plane + cid * width]
                    p = permission[si]
                    if p == 2:
                        writers += 1
                        if stable[si]:
                            stable_writers += 1
                    elif p == 1:
                        readers += 1
                if writers > 1 or (writers and readers) or stable_writers > 1:
                    return False
            return True
        complete = None  # lazily evaluated, shared across litmus codes
        for code in codes:
            if code == INV_SWMR:
                for addr in range(self.num_addresses):
                    plane = addr * stride
                    writers = readers = 0
                    for cid in range(n):
                        p = permission[enc[plane + cid * width]]
                        if p == 2:
                            writers += 1
                        elif p == 1:
                            readers += 1
                    if writers > 1 or (writers and readers):
                        return False
            elif code == INV_SINGLE_OWNER:
                for addr in range(self.num_addresses):
                    plane = addr * stride
                    stable_writers = 0
                    for cid in range(n):
                        si = enc[plane + cid * width]
                        if stable[si] and permission[si] == 2:
                            stable_writers += 1
                    if stable_writers > 1:
                        return False
            else:  # ("litmus", clauses)
                if complete is None:
                    complete = self.is_complete(enc)
                if not complete:
                    continue
                for clause in code[1]:
                    if all(
                        enc[a * stride + c * width + CF_LAST_OBSERVED] == v + 1
                        for c, a, v in clause
                    ):
                        return False
        return True


__all__ = [
    "TransitionKernel",
    "AMBIGUOUS",
    "INV_SWMR",
    "INV_SINGLE_OWNER",
    "DEFAULT_CODES",
]
