"""Concrete in-flight coherence messages used by the execution substrate."""

from __future__ import annotations

from dataclasses import dataclass, replace

#: Node id of the directory / LLC in the system model.
DIRECTORY_ID = -1


def message_sort_key(message: "Message") -> tuple:
    """Total ordering key for messages (None fields sort before integers)."""

    def k(value):
        return (0, 0) if value is None else (1, value)

    return (
        message.mtype,
        message.src,
        message.dst,
        message.vnet,
        k(message.requestor),
        k(message.data),
        k(message.ack_count),
    )


def relabeled_message_sort_key(message: "Message", perm: tuple[int, ...]) -> tuple:
    """``message_sort_key(message.relabeled(perm))`` without building the message.

    Canonicalization tie-breaking only needs relabeled *keys*, never the
    relabeled message objects; skipping ``dataclasses.replace`` keeps the
    symmetry-reduction hot path allocation-free.
    """

    def m(i):
        return i if i < 0 else perm[i]

    def k(value):
        return (0, 0) if value is None else (1, value)

    requestor = message.requestor
    return (
        message.mtype,
        m(message.src),
        m(message.dst),
        message.vnet,
        k(requestor if requestor is None or requestor < 0 else perm[requestor]),
        k(message.data),
        k(message.ack_count),
    )


#: Number of integers in one encoded message record (see :meth:`Message.encoded`).
MESSAGE_ENCODED_WIDTH = 10


def decode_message(fields: tuple, mtypes: tuple[str, ...]) -> "Message":
    """Inverse of :meth:`Message.encoded` (*fields* is one 10-int record)."""

    def pair(flag: int, value: int) -> int | None:
        return None if flag == 0 else value - 2

    return Message(
        mtype=mtypes[fields[0]],
        src=fields[1] - 2,
        dst=fields[2] - 2,
        vnet=fields[3],
        requestor=pair(fields[4], fields[5]),
        data=pair(fields[6], fields[7]),
        ack_count=pair(fields[8], fields[9]),
    )


def relabel_encoded_message(fields: tuple, perm: tuple[int, ...]) -> tuple:
    """``message.relabeled(perm).encoded(...)`` computed on the encoded record."""

    def node(e: int) -> int:
        raw = e - 2
        return perm[raw] + 2 if raw >= 0 else e

    requestor = fields[5]
    if fields[4] == 1 and requestor - 2 >= 0:
        requestor = perm[requestor - 2] + 2
    return (
        fields[0],
        node(fields[1]),
        node(fields[2]),
        fields[3],
        fields[4],
        requestor,
        *fields[6:],
    )


def translate_encoded_message(fields: tuple, table: tuple[int, ...]) -> tuple:
    """:func:`relabel_encoded_message` through a precomputed +2-shift table.

    *table* maps every encoded node-ID lane value to its relabeled value
    (``table[0] = 0`` for the absent-requestor placeholder, ``table[1] = 1``
    for the directory, ``table[v] = perm[v - 2] + 2`` for caches — see
    :meth:`repro.system.codec.StateCodec.perm_tables`), so the branchy
    per-value arithmetic of :func:`relabel_encoded_message` collapses into
    three lookups.  Both entry points produce bit-identical records.
    """
    return (
        fields[0],
        table[fields[1]],
        table[fields[2]],
        fields[3],
        fields[4],
        table[fields[5]],
        *fields[6:],
    )


@dataclass(frozen=True)
class Message:
    """One coherence message in flight.

    ``data`` carries the ghost *version number* of the block (the substrate
    models data values as monotonically increasing versions, which is enough
    to check the data-value invariant).  ``requestor`` identifies the cache on
    whose behalf the message was sent: for requests it equals ``src``; for
    forwarded requests it is the cache that sent the original request, so the
    receiving cache knows where to send its response.
    """

    mtype: str
    src: int
    dst: int
    requestor: int | None = None
    data: int | None = None
    ack_count: int | None = None
    #: Virtual network: 0 for requests, 1 for forwards and responses.  The
    #: ordered interconnect keeps per-pair FIFO order *within* a virtual
    #: network; requests travel separately so a directory that stalls a
    #: request never blocks the response it is waiting for behind it.
    vnet: int = 1

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        def node(i: int | None) -> str:
            if i is None:
                return "?"
            return "Dir" if i == DIRECTORY_ID else f"C{i}"

        extra = []
        if self.requestor is not None:
            extra.append(f"req={node(self.requestor)}")
        if self.data is not None:
            extra.append(f"v{self.data}")
        if self.ack_count is not None:
            extra.append(f"acks={self.ack_count}")
        suffix = f" ({', '.join(extra)})" if extra else ""
        return f"{self.mtype} {node(self.src)}->{node(self.dst)}{suffix}"

    def redirect(self, dst: int) -> "Message":
        return replace(self, dst=dst)

    def encoded(self, mtype_index: dict[str, int]) -> tuple:
        """Flat 10-int record, order-isomorphic to :func:`message_sort_key`.

        Field layout mirrors the sort key position by position: the message
        type becomes its index in the *sorted* type catalog (so integer order
        matches string order), node IDs are shifted by +2 (the directory's
        ``-1`` stays representable and ordering is preserved), and each
        optional field becomes a ``(flag, value)`` pair exactly like the
        ``k()`` helper of the sort key.  Comparing two encoded records
        therefore gives the same answer as comparing the two messages'
        sort keys -- the property the encoded canonicalization relies on.
        """

        def pair(value: int | None) -> tuple[int, int]:
            return (0, 0) if value is None else (1, value + 2)

        return (
            mtype_index[self.mtype],
            self.src + 2,
            self.dst + 2,
            self.vnet,
            *pair(self.requestor),
            *pair(self.data),
            *pair(self.ack_count),
        )

    def relabeled(self, perm: tuple[int, ...]) -> "Message":
        """Remap every cache-ID field through *perm* (``perm[old] = new``).

        The directory (and any other negative node id) is a fixed point of
        every cache permutation.  This is the message-level hook the symmetry
        engine (:mod:`repro.verification.engine.canonical`) uses to relabel
        in-flight messages when it permutes a global state.
        """

        def m(i: int | None) -> int | None:
            return i if i is None or i < 0 else perm[i]

        src, dst, requestor = m(self.src), m(self.dst), m(self.requestor)
        if (src, dst, requestor) == (self.src, self.dst, self.requestor):
            return self
        return replace(self, src=src, dst=dst, requestor=requestor)
