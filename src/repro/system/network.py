"""Interconnection network models.

Two models are provided, matching the two system models discussed in the
paper:

* :class:`OrderedNetwork` -- point-to-point ordering: messages between the
  same (source, destination) pair are delivered in the order they were sent.
  This is the assumption made by the bundled MSI / MESI / MOSI protocols.
* :class:`UnorderedNetwork` -- no ordering at all: any in-flight message may
  be delivered next.  Used by the MSI variant of Section VI-C.

Both networks are immutable value objects: ``send`` and ``deliver`` return
new network instances, so the model checker can hash and store them as part
of a global state snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.system.message import (
    MESSAGE_ENCODED_WIDTH,
    Message,
    decode_message,
    message_sort_key,
    relabeled_message_sort_key,
)


class Network:
    """Interface shared by both network models."""

    def send(self, *messages: Message) -> "Network":
        raise NotImplementedError

    def deliverable(self) -> tuple[Message, ...]:
        """Messages that may be delivered next (one per ordered channel, or
        every in-flight message for the unordered network)."""
        raise NotImplementedError

    def deliver(self, message: Message) -> "Network":
        """Remove *message* (which must be deliverable) and return the new network."""
        raise NotImplementedError

    def deliver_at(self, message: Message, position: int) -> "Network":
        """Remove *message* from *position* in its channel (re-queue
        semantics: a stalled channel head is bypassed, so deliveries may
        target a message behind it).  Ordered networks only -- the unordered
        bag has no positions to bypass."""
        raise ValueError("positional delivery applies to ordered networks only")

    def duplicate(self, message: Message) -> "Network":
        """Fault injection: add an extra copy of *message* (which must be
        deliverable) and return the new network."""
        raise NotImplementedError

    def reorderable(self) -> tuple[tuple[int, int, int, int], ...]:
        """Fault injection: the ``(src, dst, vnet, position)`` swaps that
        change the network (adjacent differing messages in one FIFO).  Empty
        for unordered networks -- the bag already admits every order."""
        return ()

    def reorder(self, src: int, dst: int, vnet: int, position: int) -> "Network":
        """Fault injection: swap the messages at ``position`` and
        ``position + 1`` in the ``(src, dst, vnet)`` channel."""
        raise ValueError("reorder faults apply to ordered networks only")

    @property
    def empty(self) -> bool:
        raise NotImplementedError

    def in_flight(self) -> tuple[Message, ...]:
        raise NotImplementedError

    @property
    def ordered(self) -> bool:
        raise NotImplementedError

    def relabeled(self, perm: tuple[int, ...]) -> "Network":
        """Return this network with every cache ID remapped through *perm*."""
        raise NotImplementedError

    def sort_key(self) -> tuple:
        """Total-order key over networks (symmetry-canonicalization hook)."""
        raise NotImplementedError

    def relabeled_sort_key(self, perm: tuple[int, ...]) -> tuple:
        """``self.relabeled(perm).sort_key()`` without building the network.

        Tie-breaking in :func:`repro.verification.engine.canonical.canonicalize`
        evaluates this once per candidate permutation; computing the key
        directly avoids materializing relabeled message and network objects
        on the search hot path.
        """
        raise NotImplementedError

    def encoded(self, mtype_index: dict[str, int]) -> tuple:
        """Flat variable-length int section (codec hook; see
        :mod:`repro.system.codec` for the layout and its invariants)."""
        raise NotImplementedError


@dataclass(frozen=True)
class OrderedNetwork(Network):
    """Per (source, destination, virtual network) FIFO channels.

    Within a virtual network, ordering is enforced across *all* message
    classes between a pair of nodes: forwards and responses share one
    channel, so (for example) an Invalidation is never overtaken by a later
    Put-Ack from the directory -- an ordering the textbook protocols rely on.
    Requests travel on their own virtual network so a controller that stalls
    a request never blocks a response queued behind it.
    """

    channels: tuple[tuple[tuple[int, int, int], tuple[Message, ...]], ...] = ()

    def _as_dict(self) -> dict[tuple[int, int, int], tuple[Message, ...]]:
        return {key: msgs for key, msgs in self.channels}

    @staticmethod
    def _from_dict(
        channels: dict[tuple[int, int, int], tuple[Message, ...]]
    ) -> "OrderedNetwork":
        non_empty = {key: msgs for key, msgs in channels.items() if msgs}
        return OrderedNetwork(channels=tuple(sorted(non_empty.items())))

    def send(self, *messages: Message) -> "OrderedNetwork":
        channels = self._as_dict()
        for message in messages:
            key = (message.src, message.dst, message.vnet)
            channels[key] = channels.get(key, ()) + (message,)
        return self._from_dict(channels)

    def deliverable(self) -> tuple[Message, ...]:
        return tuple(msgs[0] for _, msgs in self.channels if msgs)

    def deliver(self, message: Message) -> "OrderedNetwork":
        channels = self._as_dict()
        key = (message.src, message.dst, message.vnet)
        queue = channels.get(key, ())
        if not queue or queue[0] != message:
            raise ValueError(f"message {message} is not at the head of its channel")
        channels[key] = queue[1:]
        return self._from_dict(channels)

    def deliver_at(self, message: Message, position: int) -> "OrderedNetwork":
        channels = self._as_dict()
        key = (message.src, message.dst, message.vnet)
        queue = channels.get(key, ())
        if not (0 <= position < len(queue)) or queue[position] != message:
            raise ValueError(
                f"message {message} is not at position {position} of its channel"
            )
        channels[key] = queue[:position] + queue[position + 1 :]
        return self._from_dict(channels)

    def duplicate(self, message: Message) -> "OrderedNetwork":
        channels = self._as_dict()
        key = (message.src, message.dst, message.vnet)
        queue = channels.get(key, ())
        if not queue or queue[0] != message:
            raise ValueError(f"message {message} is not at the head of its channel")
        channels[key] = (message,) + queue
        return self._from_dict(channels)

    def reorderable(self) -> tuple[tuple[int, int, int, int], ...]:
        swaps = []
        for (src, dst, vnet), msgs in self.channels:
            for pos in range(len(msgs) - 1):
                if msgs[pos] != msgs[pos + 1]:
                    swaps.append((src, dst, vnet, pos))
        return tuple(swaps)

    def reorder(self, src: int, dst: int, vnet: int, position: int) -> "OrderedNetwork":
        channels = self._as_dict()
        key = (src, dst, vnet)
        queue = channels.get(key, ())
        if not 0 <= position < len(queue) - 1:
            raise ValueError(
                f"no adjacent pair at position {position} in channel {key}"
            )
        msgs = list(queue)
        msgs[position], msgs[position + 1] = msgs[position + 1], msgs[position]
        channels[key] = tuple(msgs)
        return self._from_dict(channels)

    @property
    def empty(self) -> bool:
        return not self.channels

    def in_flight(self) -> tuple[Message, ...]:
        return tuple(m for _, msgs in self.channels for m in msgs)

    @property
    def ordered(self) -> bool:
        return True

    def relabeled(self, perm: tuple[int, ...]) -> "OrderedNetwork":
        channels: dict[tuple[int, int, int], tuple[Message, ...]] = {}
        for (src, dst, vnet), msgs in self.channels:
            key = (
                src if src < 0 else perm[src],
                dst if dst < 0 else perm[dst],
                vnet,
            )
            channels[key] = tuple(m.relabeled(perm) for m in msgs)
        return self._from_dict(channels)

    def sort_key(self) -> tuple:
        return tuple(
            (key, tuple(message_sort_key(m) for m in msgs))
            for key, msgs in self.channels
        )

    def relabeled_sort_key(self, perm: tuple[int, ...]) -> tuple:
        return tuple(
            sorted(
                (
                    (
                        (
                            src if src < 0 else perm[src],
                            dst if dst < 0 else perm[dst],
                            vnet,
                        ),
                        tuple(relabeled_message_sort_key(m, perm) for m in msgs),
                    )
                    for (src, dst, vnet), msgs in self.channels
                ),
                key=lambda item: item[0],
            )
        )

    def encoded(self, mtype_index: dict[str, int]) -> tuple:
        """``(n_channels, then per channel: src+2, dst+2, vnet, count, msgs...)``.

        Channels appear in their stored order (sorted by raw channel key,
        which the +2 shift preserves); messages keep their FIFO order within
        a channel.
        """
        out = [len(self.channels)]
        for (src, dst, vnet), msgs in self.channels:
            out.extend((src + 2, dst + 2, vnet, len(msgs)))
            for m in msgs:
                out.extend(m.encoded(mtype_index))
        return tuple(out)

    @staticmethod
    def from_encoded(fields: tuple, offset: int, mtypes: tuple[str, ...]) -> "OrderedNetwork":
        """Inverse of :meth:`encoded`, reading from ``fields[offset:]``."""
        channels = []
        pos = offset + 1
        for _ in range(fields[offset]):
            src, dst, vnet, count = fields[pos : pos + 4]
            pos += 4
            msgs = []
            for _ in range(count):
                msgs.append(decode_message(fields[pos : pos + MESSAGE_ENCODED_WIDTH], mtypes))
                pos += MESSAGE_ENCODED_WIDTH
            channels.append(((src - 2, dst - 2, vnet), tuple(msgs)))
        return OrderedNetwork(channels=tuple(channels))


@dataclass(frozen=True)
class UnorderedNetwork(Network):
    """A bag of in-flight messages; any of them may be delivered next."""

    messages: tuple[Message, ...] = ()

    def send(self, *new_messages: Message) -> "UnorderedNetwork":
        return UnorderedNetwork(
            messages=tuple(
                sorted(self.messages + tuple(new_messages), key=message_sort_key)
            )
        )

    def deliverable(self) -> tuple[Message, ...]:
        # Deduplicate identical messages: delivering either copy leads to the
        # same successor state.
        seen: list[Message] = []
        for message in self.messages:
            if message not in seen:
                seen.append(message)
        return tuple(seen)

    def deliver(self, message: Message) -> "UnorderedNetwork":
        messages = list(self.messages)
        try:
            messages.remove(message)
        except ValueError:
            raise ValueError(f"message {message} is not in flight") from None
        return UnorderedNetwork(messages=tuple(messages))

    def duplicate(self, message: Message) -> "UnorderedNetwork":
        if message not in self.messages:
            raise ValueError(f"message {message} is not in flight")
        return self.send(message)

    @property
    def empty(self) -> bool:
        return not self.messages

    def in_flight(self) -> tuple[Message, ...]:
        return self.messages

    @property
    def ordered(self) -> bool:
        return False

    def relabeled(self, perm: tuple[int, ...]) -> "UnorderedNetwork":
        return UnorderedNetwork(
            messages=tuple(
                sorted((m.relabeled(perm) for m in self.messages), key=message_sort_key)
            )
        )

    def sort_key(self) -> tuple:
        return tuple(message_sort_key(m) for m in self.messages)

    def relabeled_sort_key(self, perm: tuple[int, ...]) -> tuple:
        return tuple(
            sorted(relabeled_message_sort_key(m, perm) for m in self.messages)
        )

    def encoded(self, mtype_index: dict[str, int]) -> tuple:
        """``(n_messages, then the message records in stored order)``.

        The stored order is already sorted by :func:`message_sort_key`, and
        encoded records are order-isomorphic to that key, so the section is
        sorted under integer comparison too.
        """
        out = [len(self.messages)]
        for m in self.messages:
            out.extend(m.encoded(mtype_index))
        return tuple(out)

    @staticmethod
    def from_encoded(fields: tuple, offset: int, mtypes: tuple[str, ...]) -> "UnorderedNetwork":
        """Inverse of :meth:`encoded`, reading from ``fields[offset:]``."""
        messages = []
        pos = offset + 1
        for _ in range(fields[offset]):
            messages.append(decode_message(fields[pos : pos + MESSAGE_ENCODED_WIDTH], mtypes))
            pos += MESSAGE_ENCODED_WIDTH
        return UnorderedNetwork(messages=tuple(messages))


def make_network(ordered: bool) -> Network:
    """Create an empty network of the requested kind."""
    return OrderedNetwork() if ordered else UnorderedNetwork()
