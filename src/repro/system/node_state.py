"""Immutable per-node states used in global system snapshots.

Both node-state classes expose two symmetry hooks consumed by the
verification engine (:mod:`repro.verification.engine`):

* ``relabeled(perm)`` -- remap every cache-ID reference held in auxiliary
  state (saved requestor slots, directory owner / sharer sets) through a
  cache permutation ``perm`` (``perm[old] = new``);
* ``sort_key()`` -- a total-order key over node states, used to pick the
  lexicographically smallest permutation of a global state as its canonical
  representative (the Murphi scalarset trick).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.dsl.types import AccessKind

#: Number of saved-requestor slots a cache keeps for deferred responses.
#: Directory protocols bound the number of forwarded requests a cache can
#: observe before settling (paper Section V-D2); four is comfortably above
#: the bound for MOESIF-style protocols.
NUM_SAVED_SLOTS = 4


@dataclass(frozen=True)
class CacheNodeState:
    """Architectural + auxiliary state of one cache for one block."""

    fsm_state: str
    data: int | None = None
    acks_expected: int | None = None
    acks_received: int = 0
    saved: tuple[int | None, ...] = (None,) * NUM_SAVED_SLOTS
    pending_access: AccessKind | None = None
    #: Version observed by this cache's most recent load (monotonicity check).
    last_observed: int = -1
    #: Number of accesses this cache has issued so far (bounds the workload).
    issued: int = 0

    def with_state(self, fsm_state: str) -> "CacheNodeState":
        return replace(self, fsm_state=fsm_state)

    def relabeled(self, perm: tuple[int, ...]) -> "CacheNodeState":
        """Remap the cache IDs in the saved-requestor slots through *perm*."""
        saved = tuple(s if s is None or s < 0 else perm[s] for s in self.saved)
        if saved == self.saved:
            return self
        return replace(self, saved=saved)

    def sort_key(self) -> tuple:
        """Total-order key (``None`` fields sort below every integer)."""
        return (
            self.fsm_state,
            self.issued,
            -1 if self.data is None else self.data,
            -1 if self.acks_expected is None else self.acks_expected,
            self.acks_received,
            tuple(-1 if s is None else s for s in self.saved),
            "" if self.pending_access is None else self.pending_access.value,
            self.last_observed,
        )

    def relabeled_sort_key(self, perm: tuple[int, ...]) -> tuple:
        """``self.relabeled(perm).sort_key()`` without building the node state."""
        return (
            self.fsm_state,
            self.issued,
            -1 if self.data is None else self.data,
            -1 if self.acks_expected is None else self.acks_expected,
            self.acks_received,
            tuple(-1 if s is None else s if s < 0 else perm[s] for s in self.saved),
            "" if self.pending_access is None else self.pending_access.value,
            self.last_observed,
        )


@dataclass(frozen=True)
class DirectoryNodeState:
    """Architectural + auxiliary state of the directory / LLC for one block."""

    fsm_state: str
    owner: int | None = None
    sharers: frozenset[int] = frozenset()
    memory: int = 0

    def with_state(self, fsm_state: str) -> "DirectoryNodeState":
        return replace(self, fsm_state=fsm_state)

    def relabeled(self, perm: tuple[int, ...]) -> "DirectoryNodeState":
        """Remap the owner and sharer cache IDs through *perm*."""
        owner = self.owner if self.owner is None or self.owner < 0 else perm[self.owner]
        sharers = frozenset(s if s < 0 else perm[s] for s in self.sharers)
        if owner == self.owner and sharers == self.sharers:
            return self
        return replace(self, owner=owner, sharers=sharers)

    def sort_key(self) -> tuple:
        return (
            self.fsm_state,
            -2 if self.owner is None else self.owner,
            tuple(sorted(self.sharers)),
            self.memory,
        )

    def relabeled_sort_key(self, perm: tuple[int, ...]) -> tuple:
        """``self.relabeled(perm).sort_key()`` without building the node state."""
        owner = self.owner
        return (
            self.fsm_state,
            -2 if owner is None else owner if owner < 0 else perm[owner],
            tuple(sorted(s if s < 0 else perm[s] for s in self.sharers)),
            self.memory,
        )
