"""Immutable per-node states used in global system snapshots.

Both node-state classes expose two symmetry hooks consumed by the
verification engine (:mod:`repro.verification.engine`):

* ``relabeled(perm)`` -- remap every cache-ID reference held in auxiliary
  state (saved requestor slots, directory owner / sharer sets) through a
  cache permutation ``perm`` (``perm[old] = new``);
* ``sort_key()`` -- a total-order key over node states, used to pick the
  lexicographically smallest permutation of a global state as its canonical
  representative (the Murphi scalarset trick).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.dsl.types import AccessKind

#: Number of saved-requestor slots a cache keeps for deferred responses.
#: Directory protocols bound the number of forwarded requests a cache can
#: observe before settling (paper Section V-D2); four is comfortably above
#: the bound for MOESIF-style protocols.
NUM_SAVED_SLOTS = 4

#: Width of one encoded cache block (see :meth:`CacheNodeState.encoded`).
CACHE_ENCODED_WIDTH = 7 + NUM_SAVED_SLOTS


def decode_cache_block(
    block: tuple, state_names: tuple[str, ...], access_kinds: tuple
) -> "CacheNodeState":
    """Inverse of :meth:`CacheNodeState.encoded`."""
    pending = block[5 + NUM_SAVED_SLOTS]
    return CacheNodeState(
        fsm_state=state_names[block[0]],
        issued=block[1],
        data=None if block[2] == 0 else block[2] - 1,
        acks_expected=None if block[3] == 0 else block[3] - 1,
        acks_received=block[4],
        saved=tuple(None if s == 0 else s - 1 for s in block[5 : 5 + NUM_SAVED_SLOTS]),
        pending_access=None if pending == 0 else access_kinds[pending - 1],
        last_observed=block[6 + NUM_SAVED_SLOTS] - 1,
    )


def decode_directory_block(block: tuple, state_names: tuple[str, ...]) -> "DirectoryNodeState":
    """Inverse of :meth:`DirectoryNodeState.encoded` (*block* has ``3 + n`` ints)."""
    return DirectoryNodeState(
        fsm_state=state_names[block[0]],
        owner=None if block[1] == 0 else block[1] - 2,
        sharers=frozenset(s - 2 for s in block[2:-1] if s != 0),
        memory=block[-1],
    )


@dataclass(frozen=True)
class CacheNodeState:
    """Architectural + auxiliary state of one cache for one block."""

    fsm_state: str
    data: int | None = None
    acks_expected: int | None = None
    acks_received: int = 0
    saved: tuple[int | None, ...] = (None,) * NUM_SAVED_SLOTS
    pending_access: AccessKind | None = None
    #: Version observed by this cache's most recent load (monotonicity check).
    last_observed: int = -1
    #: Number of accesses this cache has issued so far (bounds the workload).
    issued: int = 0

    def with_state(self, fsm_state: str) -> "CacheNodeState":
        # Direct construction: ``dataclasses.replace`` resolves fields through
        # the descriptor machinery on every call, and this runs once per
        # applied transition on the search hot path.
        return CacheNodeState(
            fsm_state=fsm_state,
            data=self.data,
            acks_expected=self.acks_expected,
            acks_received=self.acks_received,
            saved=self.saved,
            pending_access=self.pending_access,
            last_observed=self.last_observed,
            issued=self.issued,
        )

    def relabeled(self, perm: tuple[int, ...]) -> "CacheNodeState":
        """Remap the cache IDs in the saved-requestor slots through *perm*."""
        saved = tuple(s if s is None or s < 0 else perm[s] for s in self.saved)
        if saved == self.saved:
            return self
        return replace(self, saved=saved)

    def sort_key(self) -> tuple:
        """Total-order key (``None`` fields sort below every integer)."""
        return (
            self.fsm_state,
            self.issued,
            -1 if self.data is None else self.data,
            -1 if self.acks_expected is None else self.acks_expected,
            self.acks_received,
            tuple(-1 if s is None else s for s in self.saved),
            "" if self.pending_access is None else self.pending_access.value,
            self.last_observed,
        )

    def relabeled_sort_key(self, perm: tuple[int, ...]) -> tuple:
        """``self.relabeled(perm).sort_key()`` without building the node state."""
        return (
            self.fsm_state,
            self.issued,
            -1 if self.data is None else self.data,
            -1 if self.acks_expected is None else self.acks_expected,
            self.acks_received,
            tuple(-1 if s is None else s if s < 0 else perm[s] for s in self.saved),
            "" if self.pending_access is None else self.pending_access.value,
            self.last_observed,
        )

    def encoded(self, state_index: dict[str, int], access_index: dict) -> tuple:
        """Flat fixed-width int block, order-isomorphic to :meth:`sort_key`.

        Every field is shifted into the non-negative range by the exact
        transformation the sort key applies plus a constant (``None`` maps
        below every integer, the FSM state becomes its index in the *sorted*
        state-name list so integer order matches string order), and fields
        appear in sort-key order -- so comparing two encoded blocks compares
        the two node states' sort keys.
        """
        return (
            state_index[self.fsm_state],
            self.issued,
            0 if self.data is None else self.data + 1,
            0 if self.acks_expected is None else self.acks_expected + 1,
            self.acks_received,
            *((0 if s is None else s + 1) for s in self.saved),
            0 if self.pending_access is None else access_index[self.pending_access] + 1,
            self.last_observed + 1,
        )


@dataclass(frozen=True)
class DirectoryNodeState:
    """Architectural + auxiliary state of the directory / LLC for one block."""

    fsm_state: str
    owner: int | None = None
    sharers: frozenset[int] = frozenset()
    memory: int = 0

    def with_state(self, fsm_state: str) -> "DirectoryNodeState":
        return DirectoryNodeState(
            fsm_state=fsm_state,
            owner=self.owner,
            sharers=self.sharers,
            memory=self.memory,
        )

    def relabeled(self, perm: tuple[int, ...]) -> "DirectoryNodeState":
        """Remap the owner and sharer cache IDs through *perm*."""
        owner = self.owner if self.owner is None or self.owner < 0 else perm[self.owner]
        sharers = frozenset(s if s < 0 else perm[s] for s in self.sharers)
        if owner == self.owner and sharers == self.sharers:
            return self
        return replace(self, owner=owner, sharers=sharers)

    def sort_key(self) -> tuple:
        return (
            self.fsm_state,
            -2 if self.owner is None else self.owner,
            tuple(sorted(self.sharers)),
            self.memory,
        )

    def relabeled_sort_key(self, perm: tuple[int, ...]) -> tuple:
        """``self.relabeled(perm).sort_key()`` without building the node state."""
        owner = self.owner
        return (
            self.fsm_state,
            -2 if owner is None else owner if owner < 0 else perm[owner],
            tuple(sorted(s if s < 0 else perm[s] for s in self.sharers)),
            self.memory,
        )

    def encoded(self, state_index: dict[str, int], num_caches: int) -> tuple:
        """Flat ``3 + num_caches``-int block, order-isomorphic to :meth:`sort_key`.

        The sharer set becomes a fixed-width ascending run padded with zeros;
        since every encoded sharer is ``>= 2`` and a shorter sorted tuple that
        is a prefix of a longer one must compare smaller, the zero padding
        preserves the sort key's variable-length tuple ordering.
        """
        sharers = sorted(self.sharers)
        return (
            state_index[self.fsm_state],
            0 if self.owner is None else self.owner + 2,
            *(s + 2 for s in sharers),
            *((0,) * (num_caches - len(sharers))),
            self.memory,
        )
