"""Immutable per-node states used in global system snapshots."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.dsl.types import AccessKind

#: Number of saved-requestor slots a cache keeps for deferred responses.
#: Directory protocols bound the number of forwarded requests a cache can
#: observe before settling (paper Section V-D2); four is comfortably above
#: the bound for MOESIF-style protocols.
NUM_SAVED_SLOTS = 4


@dataclass(frozen=True)
class CacheNodeState:
    """Architectural + auxiliary state of one cache for one block."""

    fsm_state: str
    data: int | None = None
    acks_expected: int | None = None
    acks_received: int = 0
    saved: tuple[int | None, ...] = (None,) * NUM_SAVED_SLOTS
    pending_access: AccessKind | None = None
    #: Version observed by this cache's most recent load (monotonicity check).
    last_observed: int = -1
    #: Number of accesses this cache has issued so far (bounds the workload).
    issued: int = 0

    def with_state(self, fsm_state: str) -> "CacheNodeState":
        return replace(self, fsm_state=fsm_state)


@dataclass(frozen=True)
class DirectoryNodeState:
    """Architectural + auxiliary state of the directory / LLC for one block."""

    fsm_state: str
    owner: int | None = None
    sharers: frozenset[int] = frozenset()
    memory: int = 0

    def with_state(self, fsm_state: str) -> "DirectoryNodeState":
        return replace(self, fsm_state=fsm_state)
