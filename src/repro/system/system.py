"""Whole-system model: N caches + directory + interconnect for one block.

The :class:`System` assembles a generated protocol into an executable model
that the model checker (:mod:`repro.verification`) explores exhaustively and
the random-walk simulator samples.  The model is deliberately the same kind
of model the paper verifies with Murphi: a small number of caches, a single
cache block, non-deterministic core accesses bounded per cache, and
non-deterministic message delivery.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Iterable

from repro.core.fsm import AccessEvent, GeneratedProtocol, MessageEvent
from repro.dsl.types import AccessKind, Permission
from repro.system.executor import (
    Observation,
    ProtocolRuntimeError,
    execute_cache_transition,
    execute_directory_transition,
    select_transition,
)
from repro.system.message import DIRECTORY_ID, Message
from repro.system.network import Network, make_network
from repro.system.node_state import CacheNodeState, DirectoryNodeState


# ---------------------------------------------------------------------------
# Global state and events
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GlobalState:
    """One hashable snapshot of the whole system.

    Cache IDs are interchangeable (the workload and the protocol treat all
    caches identically), so global states that differ only by a renaming of
    the caches are behaviourally equivalent.  ``relabeled`` applies such a
    renaming consistently -- to the cache tuple itself and to every cache-ID
    reference buried in directory auxiliary state and in-flight messages --
    and ``sort_key`` provides the total order the verification engine uses
    to pick one representative per equivalence class.
    """

    caches: tuple[CacheNodeState, ...]
    directory: DirectoryNodeState
    network: Network
    latest_version: int = 0

    def relabeled(self, perm: tuple[int, ...]) -> "GlobalState":
        """Apply the cache permutation *perm* (``perm[old] = new``) everywhere."""
        caches: list[CacheNodeState | None] = [None] * len(self.caches)
        for old_id, cache in enumerate(self.caches):
            caches[perm[old_id]] = cache.relabeled(perm)
        return GlobalState(
            caches=tuple(caches),  # type: ignore[arg-type]
            directory=self.directory.relabeled(perm),
            network=self.network.relabeled(perm),
            latest_version=self.latest_version,
        )

    def sort_key(self) -> tuple:
        """Total-order key over global states (canonicalization hook)."""
        return (
            tuple(c.sort_key() for c in self.caches),
            self.directory.sort_key(),
            self.network.sort_key(),
            self.latest_version,
        )


@dataclass(frozen=True)
class SystemEvent:
    """Base class of the two kinds of non-deterministic events."""


@dataclass(frozen=True)
class IssueAccess(SystemEvent):
    cache_id: int
    access: AccessKind

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"C{self.cache_id}: {self.access}"


@dataclass(frozen=True)
class DeliverMessage(SystemEvent):
    message: Message

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"deliver {self.message}"


@dataclass
class StepOutcome:
    """Result of applying one event to a global state."""

    state: GlobalState
    observations: tuple[Observation, ...] = ()
    error: str | None = None


# ---------------------------------------------------------------------------
# Workload description
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Workload:
    """Bounded non-deterministic workload: each cache may issue up to
    ``max_accesses_per_cache`` accesses, each chosen from ``access_kinds``."""

    max_accesses_per_cache: int = 2
    access_kinds: tuple[AccessKind, ...] = (
        AccessKind.LOAD,
        AccessKind.STORE,
        AccessKind.REPLACEMENT,
    )


class System:
    """Executable model of a generated protocol."""

    def __init__(
        self,
        protocol: GeneratedProtocol,
        num_caches: int = 2,
        *,
        workload: Workload | None = None,
        ordered: bool | None = None,
    ):
        if num_caches < 1:
            raise ValueError("need at least one cache")
        self.protocol = protocol
        self.num_caches = num_caches
        self.workload = workload or Workload()
        if ordered is None:
            ordered = getattr(protocol.source_spec, "ordered_network", True)
        self.ordered = ordered
        try:
            self._request_names = {m.name for m in protocol.messages.requests}
        except AttributeError:  # pragma: no cover - untyped message catalogs
            self._request_names = set()
        self._codec = None
        self._kernel = None

    def codec(self):
        """The :class:`~repro.system.codec.StateCodec` for this configuration.

        Built lazily and cached: the codec's index tables depend only on the
        generated protocol, the cache count and the network kind, so one
        instance (and its sub-object memo tables) serves a whole search.
        """
        if self._codec is None:
            from repro.system.codec import StateCodec

            self._codec = StateCodec.for_system(self)
        return self._codec

    def kernel(self):
        """The compiled :class:`~repro.system.kernel.TransitionKernel` for
        this configuration (built lazily, cached like the codec).

        Raises :class:`repro.core.fsm.CompilationUnsupported` when the
        protocol uses constructs the table form cannot express; callers fall
        back to interpreting this object model directly.
        """
        if self._kernel is None:
            from repro.system.kernel import TransitionKernel

            self._kernel = TransitionKernel(self)
        return self._kernel

    def _tag(self, sends: tuple[Message, ...]) -> tuple[Message, ...]:
        """Assign each outgoing message to its virtual network (0 = requests).

        Messages are built with the response vnet (1), so only requests need
        the rebuild -- responses and forwards pass through untouched.
        """
        return tuple(
            replace(m, vnet=0) if m.mtype in self._request_names and m.vnet != 0 else m
            for m in sends
        )

    # -- construction ---------------------------------------------------------
    def initial_state(self) -> GlobalState:
        caches = tuple(
            CacheNodeState(fsm_state=self.protocol.cache.initial_state)
            for _ in range(self.num_caches)
        )
        directory = DirectoryNodeState(fsm_state=self.protocol.directory.initial_state)
        return GlobalState(
            caches=caches,
            directory=directory,
            network=make_network(self.ordered),
            latest_version=0,
        )

    def symmetry_permutations(self) -> tuple[tuple[int, ...], ...]:
        """All cache permutations, identity first.

        The workload bounds and access kinds are uniform across caches, so
        the full symmetric group on cache IDs is a valid symmetry of the
        transition system (``apply(perm(s), perm(e)) == perm(apply(s, e))``).
        """
        return tuple(itertools.permutations(range(self.num_caches)))

    # -- event enumeration ------------------------------------------------------
    def enabled_events(self, state: GlobalState) -> list[SystemEvent]:
        events: list[SystemEvent] = []
        events.extend(self._access_events(state))
        events.extend(self._delivery_events(state))
        return events

    def _access_events(self, state: GlobalState) -> Iterable[SystemEvent]:
        fsm = self.protocol.cache
        for cache_id, cache in enumerate(state.caches):
            if cache.issued >= self.workload.max_accesses_per_cache:
                continue
            if not fsm.state(cache.fsm_state).is_stable:
                # One outstanding transaction per block and per cache.
                continue
            for access in self.workload.access_kinds:
                transition = select_transition(
                    fsm, cache.fsm_state, AccessEvent(access), message=None, cache=cache
                )
                if transition is None or transition.stall:
                    continue
                yield IssueAccess(cache_id=cache_id, access=access)

    def _delivery_events(self, state: GlobalState) -> Iterable[SystemEvent]:
        for message in state.network.deliverable():
            if self._delivery_enabled(state, message):
                yield DeliverMessage(message=message)

    def _delivery_enabled(self, state: GlobalState, message: Message) -> bool:
        """A delivery is enabled unless the receiving controller stalls it.

        A message the receiver has *no* entry for at all is still enabled:
        applying it produces an error outcome that the model checker reports
        as a protocol bug (this mirrors Murphi's "unexpected message" error).
        """
        try:
            transition, _ = self._transition_for_message(state, message)
        except ProtocolRuntimeError:
            return True
        if transition is None:
            return True
        return not transition.stall

    def _transition_for_message(self, state: GlobalState, message: Message):
        if message.dst == DIRECTORY_ID:
            fsm = self.protocol.directory
            node = state.directory
            transition = select_transition(
                fsm, node.fsm_state, MessageEvent(message.mtype),
                message=message, directory=node,
            )
            return transition, node
        fsm = self.protocol.cache
        node = state.caches[message.dst]
        transition = select_transition(
            fsm, node.fsm_state, MessageEvent(message.mtype),
            message=message, cache=node,
        )
        return transition, node

    # -- event application -------------------------------------------------------
    def apply(self, state: GlobalState, event: SystemEvent) -> StepOutcome:
        if isinstance(event, IssueAccess):
            return self._apply_access(state, event)
        if isinstance(event, DeliverMessage):
            return self._apply_delivery(state, event)
        raise TypeError(f"unknown event {event!r}")

    def _apply_access(self, state: GlobalState, event: IssueAccess) -> StepOutcome:
        fsm = self.protocol.cache
        cache = state.caches[event.cache_id]
        transition = select_transition(
            fsm, cache.fsm_state, AccessEvent(event.access), message=None, cache=cache
        )
        if transition is None or transition.stall:
            return StepOutcome(state=state, error=f"access {event} issued while not enabled")
        issuing = replace(cache, pending_access=event.access, issued=cache.issued + 1)
        result = execute_cache_transition(
            transition,
            issuing,
            event.cache_id,
            message=None,
            access=event.access,
            latest_version=state.latest_version,
        )
        if result.error:
            return StepOutcome(state=state, error=result.error)
        caches = list(state.caches)
        caches[event.cache_id] = result.node
        new_state = GlobalState(
            caches=tuple(caches),
            directory=state.directory,
            network=state.network.send(*self._tag(result.sends)),
            latest_version=result.latest_version,
        )
        return StepOutcome(state=new_state, observations=result.observations)

    def _apply_delivery(self, state: GlobalState, event: DeliverMessage) -> StepOutcome:
        message = event.message
        try:
            transition, node = self._transition_for_message(state, message)
        except ProtocolRuntimeError as exc:
            return StepOutcome(state=state, error=str(exc))
        if transition is None:
            receiver = "directory" if message.dst == DIRECTORY_ID else f"cache {message.dst}"
            holder_state = node.fsm_state
            return StepOutcome(
                state=state,
                error=f"{receiver} in state {holder_state!r} cannot handle message {message}",
            )
        if transition.stall:
            return StepOutcome(state=state, error=f"stalled message {message} was delivered")

        network = state.network.deliver(message)
        if message.dst == DIRECTORY_ID:
            result = execute_directory_transition(transition, state.directory, message=message)
            if result.error:
                return StepOutcome(state=state, error=result.error)
            new_state = GlobalState(
                caches=state.caches,
                directory=result.node,
                network=network.send(*self._tag(result.sends)),
                latest_version=state.latest_version,
            )
            return StepOutcome(state=new_state, observations=result.observations)

        try:
            result = execute_cache_transition(
                transition,
                state.caches[message.dst],
                message.dst,
                message=message,
                access=None,
                latest_version=state.latest_version,
            )
        except ProtocolRuntimeError as exc:
            return StepOutcome(state=state, error=str(exc))
        if result.error:
            return StepOutcome(state=state, error=result.error)
        caches = list(state.caches)
        caches[message.dst] = result.node
        new_state = GlobalState(
            caches=tuple(caches),
            directory=state.directory,
            network=network.send(*self._tag(result.sends)),
            latest_version=result.latest_version,
        )
        return StepOutcome(state=new_state, observations=result.observations)

    # -- predicates ----------------------------------------------------------------
    def is_quiescent(self, state: GlobalState) -> bool:
        """True when nothing is in flight and every controller is in a stable state."""
        if not state.network.empty:
            return False
        if not self.protocol.directory.state(state.directory.fsm_state).is_stable:
            return False
        return all(
            self.protocol.cache.state(c.fsm_state).is_stable for c in state.caches
        )

    def is_complete(self, state: GlobalState) -> bool:
        """Quiescent and every cache has exhausted its workload."""
        return self.is_quiescent(state) and all(
            c.issued >= self.workload.max_accesses_per_cache for c in state.caches
        )

    def writers_and_readers(self, state: GlobalState) -> tuple[list[int], list[int]]:
        """Cache IDs currently holding write / read permission (for SWMR)."""
        writers: list[int] = []
        readers: list[int] = []
        for cache_id, cache in enumerate(state.caches):
            permission = self.protocol.cache.state(cache.fsm_state).permission
            if permission is Permission.READ_WRITE:
                writers.append(cache_id)
            elif permission is Permission.READ:
                readers.append(cache_id)
        return writers, readers
