"""Whole-system model: N caches + directory + interconnect for one block.

The :class:`System` assembles a generated protocol into an executable model
that the model checker (:mod:`repro.verification`) explores exhaustively and
the random-walk simulator samples.  The model is deliberately the same kind
of model the paper verifies with Murphi: a small number of caches, a single
cache block, non-deterministic core accesses bounded per cache, and
non-deterministic message delivery.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Iterable

from repro.core.fsm import AccessEvent, GeneratedProtocol, MessageEvent
from repro.dsl.types import AccessKind, Permission
from repro.system.executor import (
    Observation,
    ProtocolRuntimeError,
    execute_cache_transition,
    execute_directory_transition,
    select_transition,
)
from repro.system.message import DIRECTORY_ID, Message
from repro.system.network import Network, make_network
from repro.system.node_state import CacheNodeState, DirectoryNodeState


# ---------------------------------------------------------------------------
# Global state and events
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GlobalState:
    """One hashable snapshot of the whole system.

    Cache IDs are interchangeable (the workload and the protocol treat all
    caches identically), so global states that differ only by a renaming of
    the caches are behaviourally equivalent.  ``relabeled`` applies such a
    renaming consistently -- to the cache tuple itself and to every cache-ID
    reference buried in directory auxiliary state and in-flight messages --
    and ``sort_key`` provides the total order the verification engine uses
    to pick one representative per equivalence class.

    Multi-address systems hold one protocol *plane* per address: ``caches``
    grows address-major (``caches[addr * num_caches + cache_id]``) and the
    extra planes' directories, ghost versions and networks ride in the
    ``extra_*`` tuples (address 0 keeps the original field names, so
    single-address states -- and their hashes and encodings -- are
    unchanged).  ``faults_used`` counts injected network faults against the
    fault model's budget; it stays 0 whenever no fault model is active.
    """

    caches: tuple[CacheNodeState, ...]
    directory: DirectoryNodeState
    network: Network
    latest_version: int = 0
    extra_dirs: tuple[DirectoryNodeState, ...] = ()
    extra_versions: tuple[int, ...] = ()
    extra_networks: tuple[Network, ...] = ()
    faults_used: int = 0

    def relabeled(self, perm: tuple[int, ...]) -> "GlobalState":
        """Apply the cache permutation *perm* (``perm[old] = new``) everywhere."""
        n = len(perm)
        caches: list[CacheNodeState | None] = [None] * len(self.caches)
        for idx, cache in enumerate(self.caches):
            plane = idx - idx % n
            caches[plane + perm[idx % n]] = cache.relabeled(perm)
        return GlobalState(
            caches=tuple(caches),  # type: ignore[arg-type]
            directory=self.directory.relabeled(perm),
            network=self.network.relabeled(perm),
            latest_version=self.latest_version,
            extra_dirs=tuple(d.relabeled(perm) for d in self.extra_dirs),
            extra_versions=self.extra_versions,
            extra_networks=tuple(nw.relabeled(perm) for nw in self.extra_networks),
            faults_used=self.faults_used,
        )

    def sort_key(self) -> tuple:
        """Total-order key over global states (canonicalization hook)."""
        return (
            tuple(c.sort_key() for c in self.caches),
            self.directory.sort_key(),
            self.network.sort_key(),
            self.latest_version,
            tuple(d.sort_key() for d in self.extra_dirs),
            self.extra_versions,
            tuple(n.sort_key() for n in self.extra_networks),
            self.faults_used,
        )


@dataclass(frozen=True)
class SystemEvent:
    """Base class of the kinds of non-deterministic events."""


@dataclass(frozen=True)
class IssueAccess(SystemEvent):
    cache_id: int
    access: AccessKind
    addr: int = 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        suffix = f" @{self.addr}" if self.addr else ""
        return f"C{self.cache_id}: {self.access}{suffix}"


@dataclass(frozen=True)
class DeliverMessage(SystemEvent):
    message: Message
    addr: int = 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        suffix = f" @{self.addr}" if self.addr else ""
        return f"deliver {self.message}{suffix}"


@dataclass(frozen=True)
class DuplicateMessage(SystemEvent):
    """Fault event: the network delivers an extra copy of *message*.

    On an ordered network only the channel head may be duplicated (the copy
    queues directly behind the original, preserving FIFO for everything
    else); on an unordered network any in-flight message may be duplicated.
    """

    message: Message
    addr: int = 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        suffix = f" @{self.addr}" if self.addr else ""
        return f"duplicate {self.message}{suffix}"


@dataclass(frozen=True)
class ReorderMessage(SystemEvent):
    """Fault event: swap two adjacent differing messages in one ordered
    channel, modelling a bounded reordering/extra-delay fault beyond the
    FIFO guarantee.  Meaningless on unordered networks (the bag already
    admits every ordering)."""

    src: int
    dst: int
    vnet: int
    position: int
    addr: int = 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        suffix = f" @{self.addr}" if self.addr else ""
        return (
            f"reorder ({self.src}->{self.dst} vnet{self.vnet})"
            f" at {self.position}{suffix}"
        )


@dataclass
class StepOutcome:
    """Result of applying one event to a global state."""

    state: GlobalState
    observations: tuple[Observation, ...] = ()
    error: str | None = None


# ---------------------------------------------------------------------------
# Workload description
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Workload:
    """Bounded non-deterministic workload: each cache may issue up to
    ``max_accesses_per_cache`` accesses *per address*, each chosen from
    ``access_kinds``.  With several addresses a cache may run transactions
    on different blocks concurrently (each block gates its own issue)."""

    max_accesses_per_cache: int = 2
    access_kinds: tuple[AccessKind, ...] = (
        AccessKind.LOAD,
        AccessKind.STORE,
        AccessKind.REPLACEMENT,
    )


@dataclass(frozen=True)
class LitmusWorkload:
    """Per-cache straight-line programs of ``(AccessKind, address)`` ops.

    Each cache issues its program strictly in order, and an op is enabled
    only once *all* of that cache's blocks are stable again -- every access
    completes (its value is observed) before the next one issues.  That
    makes the issuing cores sequentially consistent by construction, so any
    forbidden-outcome reachability is the protocol's fault, not the
    workload's.  The program counter is recovered from the per-block
    ``issued`` lanes (their sum), so litmus mode adds no new state."""

    programs: tuple[tuple[tuple[AccessKind, int], ...], ...]

    @property
    def num_addresses(self) -> int:
        return 1 + max(
            (addr for program in self.programs for _, addr in program), default=0
        )

    @property
    def access_kinds(self) -> tuple[AccessKind, ...]:
        """Catalog of kinds for codec index tables (full, for stability)."""
        return (AccessKind.LOAD, AccessKind.STORE, AccessKind.REPLACEMENT)


@dataclass(frozen=True)
class FaultModel:
    """Network fault-injection axes, bounded by a total fault ``budget``.

    ``duplicate`` enables :class:`DuplicateMessage` events; ``reorder``
    enables :class:`ReorderMessage` events (ordered networks only -- an
    unordered network already admits every delivery order).  The budget
    caps the *total* number of injected faults along any one execution,
    which keeps the fault-augmented state space finite and small.

    ``requeue`` (default) gives stalled ordered-channel heads re-queue
    semantics -- deliverable messages behind a stalled head may bypass it,
    so one adjacent reorder no longer head-of-line-deadlocks the stalling
    configurations.  ``requeue=False`` restores strict head-of-line
    blocking, which keeps the original reorder-deadlock counterexamples
    replayable (see ``tests/verification/test_fault_regressions.py``)."""

    duplicate: bool = False
    reorder: bool = False
    budget: int = 1
    requeue: bool = True

    def __post_init__(self):
        if self.budget < 0:
            raise ValueError("fault budget must be non-negative")
        if not (self.duplicate or self.reorder):
            raise ValueError("fault model enables no fault kind")


class System:
    """Executable model of a generated protocol."""

    def __init__(
        self,
        protocol: GeneratedProtocol,
        num_caches: int = 2,
        *,
        workload: Workload | LitmusWorkload | None = None,
        ordered: bool | None = None,
        num_addresses: int | None = None,
        faults: FaultModel | None = None,
        symmetry: bool = False,
    ):
        if num_caches < 1:
            raise ValueError("need at least one cache")
        self.protocol = protocol
        self.num_caches = num_caches
        self.workload = workload or Workload()
        if isinstance(self.workload, LitmusWorkload):
            if len(self.workload.programs) != num_caches:
                raise ValueError(
                    f"litmus workload has {len(self.workload.programs)} programs "
                    f"for {num_caches} caches"
                )
            needed = self.workload.num_addresses
            if num_addresses is None:
                num_addresses = needed
            elif num_addresses < needed:
                raise ValueError(
                    f"litmus workload touches {needed} addresses, "
                    f"num_addresses={num_addresses}"
                )
        if num_addresses is None:
            num_addresses = 1
        if num_addresses < 1:
            raise ValueError("need at least one address")
        self.num_addresses = num_addresses
        self.faults = faults
        # Declaring symmetry intent up front fails fast: the unsupported
        # combinations are rejected here, at construction, instead of
        # surfacing from deep inside a verify/random-walk run.
        if symmetry and num_caches > 1:
            if isinstance(self.workload, LitmusWorkload):
                raise ValueError(
                    "symmetry=True is unsupported with a litmus workload: "
                    "litmus programs distinguish the caches, so permuting "
                    "cache IDs is unsound"
                )
            if num_addresses > 1:
                raise ValueError(
                    f"symmetry=True is unsupported with num_addresses="
                    f"{num_addresses}: the encoded canonicalizer only "
                    "handles single-plane layouts"
                )
        self.symmetry = symmetry
        if ordered is None:
            ordered = getattr(protocol.source_spec, "ordered_network", True)
        self.ordered = ordered
        try:
            self._request_names = {m.name for m in protocol.messages.requests}
        except AttributeError:  # pragma: no cover - untyped message catalogs
            self._request_names = set()
        self._codec = None
        self._kernel = None
        self._vkernel = None

    @property
    def supports_symmetry(self) -> bool:
        """Whether the cache-ID symmetry reduction applies to this config.

        Litmus programs distinguish caches, so permuting IDs is unsound
        there.  Multi-address plain workloads are symmetric in principle,
        but the encoded canonicalizer only handles single-plane layouts --
        an engine limitation, reported as unsupported rather than silently
        producing an unsound reduction.  Fault models compose fine (faults
        are cache-ID symmetric)."""
        return self.num_addresses == 1 and not isinstance(
            self.workload, LitmusWorkload
        )

    def value_bound(self) -> int:
        """Exclusive upper bound on ghost data versions per address."""
        if isinstance(self.workload, LitmusWorkload):
            total_ops = sum(len(p) for p in self.workload.programs)
            return total_ops + 1
        return self.num_caches * self.workload.max_accesses_per_cache + 1

    def codec(self):
        """The :class:`~repro.system.codec.StateCodec` for this configuration.

        Built lazily and cached: the codec's index tables depend only on the
        generated protocol, the cache count and the network kind, so one
        instance (and its sub-object memo tables) serves a whole search.
        """
        if self._codec is None:
            from repro.system.codec import StateCodec

            self._codec = StateCodec.for_system(self)
        return self._codec

    def kernel(self):
        """The compiled :class:`~repro.system.kernel.TransitionKernel` for
        this configuration (built lazily, cached like the codec).

        Raises :class:`repro.core.fsm.CompilationUnsupported` when the
        protocol uses constructs the table form cannot express; callers fall
        back to interpreting this object model directly.
        """
        if self._kernel is None:
            from repro.system.kernel import TransitionKernel

            self._kernel = TransitionKernel(self)
        return self._kernel

    def vectorized_kernel(self):
        """The :class:`~repro.system.vectorized.VectorizedKernel` for this
        configuration (built lazily, cached like the codec; wraps and caches
        :meth:`kernel`).

        Raises :class:`repro.system.vectorized.VectorizedUnavailable` when
        NumPy is not installed, and propagates
        :class:`repro.core.fsm.CompilationUnsupported` from the underlying
        compiled kernel.  A returned kernel may still have
        ``supported=False`` (fault models, litmus workloads, multi-address
        planes): the search then falls back to the compiled kernel.
        """
        if self._vkernel is None:
            from repro.system.vectorized import VectorizedKernel

            self._vkernel = VectorizedKernel(self)
        return self._vkernel

    def _tag(self, sends: tuple[Message, ...]) -> tuple[Message, ...]:
        """Assign each outgoing message to its virtual network (0 = requests).

        Messages are built with the response vnet (1), so only requests need
        the rebuild -- responses and forwards pass through untouched.
        """
        return tuple(
            replace(m, vnet=0) if m.mtype in self._request_names and m.vnet != 0 else m
            for m in sends
        )

    # -- construction ---------------------------------------------------------
    def initial_state(self) -> GlobalState:
        n_planes = self.num_addresses
        caches = tuple(
            CacheNodeState(fsm_state=self.protocol.cache.initial_state)
            for _ in range(self.num_caches * n_planes)
        )
        directory = DirectoryNodeState(fsm_state=self.protocol.directory.initial_state)
        return GlobalState(
            caches=caches,
            directory=directory,
            network=make_network(self.ordered),
            latest_version=0,
            extra_dirs=tuple(
                DirectoryNodeState(fsm_state=self.protocol.directory.initial_state)
                for _ in range(n_planes - 1)
            ),
            extra_versions=(0,) * (n_planes - 1),
            extra_networks=tuple(
                make_network(self.ordered) for _ in range(n_planes - 1)
            ),
        )

    # -- per-address plane accessors -----------------------------------------
    def _plane_network(self, state: GlobalState, addr: int) -> Network:
        return state.network if addr == 0 else state.extra_networks[addr - 1]

    def _plane_directory(self, state: GlobalState, addr: int) -> DirectoryNodeState:
        return state.directory if addr == 0 else state.extra_dirs[addr - 1]

    def _plane_version(self, state: GlobalState, addr: int) -> int:
        return state.latest_version if addr == 0 else state.extra_versions[addr - 1]

    def _with_plane(
        self,
        state: GlobalState,
        addr: int,
        *,
        caches: tuple[CacheNodeState, ...] | None = None,
        directory: DirectoryNodeState | None = None,
        network: Network | None = None,
        version: int | None = None,
        faults_used: int | None = None,
    ) -> GlobalState:
        """Rebuild *state* with plane-*addr* components replaced."""
        changes: dict = {}
        if caches is not None:
            changes["caches"] = caches
        if faults_used is not None:
            changes["faults_used"] = faults_used
        if addr == 0:
            if directory is not None:
                changes["directory"] = directory
            if network is not None:
                changes["network"] = network
            if version is not None:
                changes["latest_version"] = version
        else:
            if directory is not None:
                dirs = list(state.extra_dirs)
                dirs[addr - 1] = directory
                changes["extra_dirs"] = tuple(dirs)
            if network is not None:
                nets = list(state.extra_networks)
                nets[addr - 1] = network
                changes["extra_networks"] = tuple(nets)
            if version is not None:
                versions = list(state.extra_versions)
                versions[addr - 1] = version
                changes["extra_versions"] = tuple(versions)
        return replace(state, **changes)

    def symmetry_permutations(self) -> tuple[tuple[int, ...], ...]:
        """All cache permutations, identity first.

        The workload bounds and access kinds are uniform across caches, so
        the full symmetric group on cache IDs is a valid symmetry of the
        transition system (``apply(perm(s), perm(e)) == perm(apply(s, e))``).
        """
        return tuple(itertools.permutations(range(self.num_caches)))

    # -- event enumeration ------------------------------------------------------
    def enabled_events(self, state: GlobalState) -> list[SystemEvent]:
        events: list[SystemEvent] = []
        events.extend(self._access_events(state))
        events.extend(self._delivery_events(state))
        events.extend(self._fault_events(state))
        return events

    def _access_events(self, state: GlobalState) -> Iterable[SystemEvent]:
        if isinstance(self.workload, LitmusWorkload):
            yield from self._litmus_access_events(state)
            return
        fsm = self.protocol.cache
        n = self.num_caches
        for cache_id in range(n):
            for addr in range(self.num_addresses):
                cache = state.caches[addr * n + cache_id]
                if cache.issued >= self.workload.max_accesses_per_cache:
                    continue
                if not fsm.state(cache.fsm_state).is_stable:
                    # One outstanding transaction per block and per cache.
                    continue
                for access in self.workload.access_kinds:
                    transition = select_transition(
                        fsm, cache.fsm_state, AccessEvent(access),
                        message=None, cache=cache,
                    )
                    if transition is None or transition.stall:
                        continue
                    yield IssueAccess(cache_id=cache_id, access=access, addr=addr)

    def _litmus_access_events(self, state: GlobalState) -> Iterable[SystemEvent]:
        fsm = self.protocol.cache
        n = self.num_caches
        for cache_id in range(n):
            program = self.workload.programs[cache_id]
            blocks = [
                state.caches[addr * n + cache_id]
                for addr in range(self.num_addresses)
            ]
            pc = sum(block.issued for block in blocks)
            if pc >= len(program):
                continue
            if not all(fsm.state(b.fsm_state).is_stable for b in blocks):
                # Strict program order: the previous op must fully complete.
                continue
            access, addr = program[pc]
            cache = blocks[addr]
            transition = select_transition(
                fsm, cache.fsm_state, AccessEvent(access), message=None, cache=cache
            )
            if transition is None or transition.stall:
                continue
            yield IssueAccess(cache_id=cache_id, access=access, addr=addr)

    def _delivery_events(self, state: GlobalState) -> Iterable[SystemEvent]:
        for addr in range(self.num_addresses):
            network = self._plane_network(state, addr)
            if self.faults is not None and self.faults.requeue and network.ordered:
                # Re-queue semantics under a fault model: a stalled channel
                # head no longer blocks the channel -- the first deliverable
                # message behind it may be delivered instead (one candidate
                # per channel keeps FIFO among the non-stalled messages and
                # the branching bounded).
                for _, msgs in network.channels:
                    for message in msgs:
                        if self._delivery_enabled(state, message, addr):
                            yield DeliverMessage(message=message, addr=addr)
                            break
                continue
            for message in network.deliverable():
                if self._delivery_enabled(state, message, addr):
                    yield DeliverMessage(message=message, addr=addr)

    def _fault_events(self, state: GlobalState) -> Iterable[SystemEvent]:
        faults = self.faults
        if faults is None or state.faults_used >= faults.budget:
            return
        if faults.duplicate:
            for addr in range(self.num_addresses):
                # deliverable() enumerates exactly the duplication candidates:
                # channel heads (ordered) / distinct messages (unordered).
                for message in self._plane_network(state, addr).deliverable():
                    yield DuplicateMessage(message=message, addr=addr)
        if faults.reorder and self.ordered:
            for addr in range(self.num_addresses):
                for src, dst, vnet, pos in self._plane_network(
                    state, addr
                ).reorderable():
                    yield ReorderMessage(
                        src=src, dst=dst, vnet=vnet, position=pos, addr=addr
                    )

    def _delivery_enabled(
        self, state: GlobalState, message: Message, addr: int = 0
    ) -> bool:
        """A delivery is enabled unless the receiving controller stalls it.

        A message the receiver has *no* entry for at all is still enabled:
        applying it produces an error outcome that the model checker reports
        as a protocol bug (this mirrors Murphi's "unexpected message" error).
        """
        try:
            transition, _ = self._transition_for_message(state, message, addr)
        except ProtocolRuntimeError:
            return True
        if transition is None:
            return True
        return not transition.stall

    def _bypass_position(
        self, state: GlobalState, network: Network, message: Message, addr: int
    ) -> int | None:
        """Position of *message* in its channel under re-queue order.

        The first *enabled* message of a channel is the only one deliverable
        (stalled messages ahead of it are bypassed); returns ``None`` when
        *message* is not that first enabled message."""
        key = (message.src, message.dst, message.vnet)
        for chan_key, msgs in network.channels:
            if chan_key != key:
                continue
            for position, queued in enumerate(msgs):
                if self._delivery_enabled(state, queued, addr):
                    return position if queued == message else None
            return None
        return None

    def _transition_for_message(
        self, state: GlobalState, message: Message, addr: int = 0
    ):
        if message.dst == DIRECTORY_ID:
            fsm = self.protocol.directory
            node = self._plane_directory(state, addr)
            transition = select_transition(
                fsm, node.fsm_state, MessageEvent(message.mtype),
                message=message, directory=node,
            )
            return transition, node
        fsm = self.protocol.cache
        node = state.caches[addr * self.num_caches + message.dst]
        transition = select_transition(
            fsm, node.fsm_state, MessageEvent(message.mtype),
            message=message, cache=node,
        )
        return transition, node

    # -- event application -------------------------------------------------------
    def apply(self, state: GlobalState, event: SystemEvent) -> StepOutcome:
        if isinstance(event, IssueAccess):
            return self._apply_access(state, event)
        if isinstance(event, DeliverMessage):
            return self._apply_delivery(state, event)
        if isinstance(event, DuplicateMessage):
            return self._apply_duplicate(state, event)
        if isinstance(event, ReorderMessage):
            return self._apply_reorder(state, event)
        raise TypeError(f"unknown event {event!r}")

    def _apply_access(self, state: GlobalState, event: IssueAccess) -> StepOutcome:
        fsm = self.protocol.cache
        addr = event.addr
        idx = addr * self.num_caches + event.cache_id
        cache = state.caches[idx]
        transition = select_transition(
            fsm, cache.fsm_state, AccessEvent(event.access), message=None, cache=cache
        )
        if transition is None or transition.stall:
            return StepOutcome(state=state, error=f"access {event} issued while not enabled")
        issuing = replace(cache, pending_access=event.access, issued=cache.issued + 1)
        result = execute_cache_transition(
            transition,
            issuing,
            event.cache_id,
            message=None,
            access=event.access,
            latest_version=self._plane_version(state, addr),
        )
        if result.error:
            return StepOutcome(state=state, error=result.error)
        caches = list(state.caches)
        caches[idx] = result.node
        new_state = self._with_plane(
            state,
            addr,
            caches=tuple(caches),
            network=self._plane_network(state, addr).send(*self._tag(result.sends)),
            version=result.latest_version,
        )
        return StepOutcome(state=new_state, observations=result.observations)

    def _apply_delivery(self, state: GlobalState, event: DeliverMessage) -> StepOutcome:
        message = event.message
        addr = event.addr
        try:
            transition, node = self._transition_for_message(state, message, addr)
        except ProtocolRuntimeError as exc:
            return StepOutcome(state=state, error=str(exc))
        if transition is None:
            receiver = "directory" if message.dst == DIRECTORY_ID else f"cache {message.dst}"
            holder_state = node.fsm_state
            return StepOutcome(
                state=state,
                error=f"{receiver} in state {holder_state!r} cannot handle message {message}",
            )
        if transition.stall:
            return StepOutcome(state=state, error=f"stalled message {message} was delivered")

        network = self._plane_network(state, addr)
        if self.faults is not None and self.faults.requeue and network.ordered:
            position = self._bypass_position(state, network, message, addr)
            if position is None:
                return StepOutcome(
                    state=state,
                    error=f"message {message} is not deliverable under re-queue order",
                )
            network = network.deliver_at(message, position)
        else:
            network = network.deliver(message)
        if message.dst == DIRECTORY_ID:
            result = execute_directory_transition(
                transition, self._plane_directory(state, addr), message=message
            )
            if result.error:
                return StepOutcome(state=state, error=result.error)
            new_state = self._with_plane(
                state,
                addr,
                directory=result.node,
                network=network.send(*self._tag(result.sends)),
            )
            return StepOutcome(state=new_state, observations=result.observations)

        idx = addr * self.num_caches + message.dst
        try:
            result = execute_cache_transition(
                transition,
                state.caches[idx],
                message.dst,
                message=message,
                access=None,
                latest_version=self._plane_version(state, addr),
            )
        except ProtocolRuntimeError as exc:
            return StepOutcome(state=state, error=str(exc))
        if result.error:
            return StepOutcome(state=state, error=result.error)
        caches = list(state.caches)
        caches[idx] = result.node
        new_state = self._with_plane(
            state,
            addr,
            caches=tuple(caches),
            network=network.send(*self._tag(result.sends)),
            version=result.latest_version,
        )
        return StepOutcome(state=new_state, observations=result.observations)

    def _fault_precondition(self, state: GlobalState) -> str | None:
        if self.faults is None:
            return "fault event applied without an active fault model"
        if state.faults_used >= self.faults.budget:
            return "fault event applied with the fault budget exhausted"
        return None

    def _apply_duplicate(
        self, state: GlobalState, event: DuplicateMessage
    ) -> StepOutcome:
        error = self._fault_precondition(state)
        if error is None and not self.faults.duplicate:
            error = "duplication fault applied but the model does not enable it"
        if error is not None:
            return StepOutcome(state=state, error=error)
        try:
            network = self._plane_network(state, event.addr).duplicate(event.message)
        except ValueError as exc:
            return StepOutcome(state=state, error=str(exc))
        new_state = self._with_plane(
            state, event.addr, network=network, faults_used=state.faults_used + 1
        )
        return StepOutcome(state=new_state)

    def _apply_reorder(self, state: GlobalState, event: ReorderMessage) -> StepOutcome:
        error = self._fault_precondition(state)
        if error is None and not self.faults.reorder:
            error = "reorder fault applied but the model does not enable it"
        if error is not None:
            return StepOutcome(state=state, error=error)
        try:
            network = self._plane_network(state, event.addr).reorder(
                event.src, event.dst, event.vnet, event.position
            )
        except ValueError as exc:
            return StepOutcome(state=state, error=str(exc))
        new_state = self._with_plane(
            state, event.addr, network=network, faults_used=state.faults_used + 1
        )
        return StepOutcome(state=new_state)

    # -- predicates ----------------------------------------------------------------
    def is_quiescent(self, state: GlobalState) -> bool:
        """True when nothing is in flight and every controller is in a stable state."""
        if not state.network.empty:
            return False
        if any(not network.empty for network in state.extra_networks):
            return False
        if not self.protocol.directory.state(state.directory.fsm_state).is_stable:
            return False
        if any(
            not self.protocol.directory.state(d.fsm_state).is_stable
            for d in state.extra_dirs
        ):
            return False
        return all(
            self.protocol.cache.state(c.fsm_state).is_stable for c in state.caches
        )

    def is_complete(self, state: GlobalState) -> bool:
        """Quiescent and every cache has exhausted its workload."""
        if not self.is_quiescent(state):
            return False
        if isinstance(self.workload, LitmusWorkload):
            n = self.num_caches
            return all(
                sum(
                    state.caches[addr * n + cache_id].issued
                    for addr in range(self.num_addresses)
                )
                >= len(self.workload.programs[cache_id])
                for cache_id in range(n)
            )
        return all(
            c.issued >= self.workload.max_accesses_per_cache for c in state.caches
        )

    def writers_and_readers(
        self, state: GlobalState, addr: int = 0
    ) -> tuple[list[int], list[int]]:
        """Cache IDs currently holding write / read permission on *addr*."""
        writers: list[int] = []
        readers: list[int] = []
        base = addr * self.num_caches
        for cache_id in range(self.num_caches):
            cache = state.caches[base + cache_id]
            permission = self.protocol.cache.state(cache.fsm_state).permission
            if permission is Permission.READ_WRITE:
                writers.append(cache_id)
            elif permission is Permission.READ:
                readers.append(cache_id)
        return writers, readers
