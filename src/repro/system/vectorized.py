"""Batch-vectorized frontier expansion: the NumPy lane-matrix kernel.

The compiled kernel (:mod:`repro.system.kernel`) already runs on flat int
tuples, but it still pays one Python dispatch per state per transition --
the measured ~11-12 us/transition bound of ROADMAP direction 1.  This module
shifts the unit of work from *one state* to *one frontier level*: states
become rows of a 2-D NumPy lane matrix, and expansion becomes batch
gather / mask / scatter operations plus per-distinct-input Python work that
is shared across every row it applies to.

The design splits an encoding at the network boundary:

* the **fixed-width prefix** (cache blocks, directory block, latest
  version -- ``codec.layout()["net_offset"]`` lanes) lives in the matrix;
* the **variable-width network section** is hash-consed into a side table
  of section IDs, so each row is ``(prefix lanes..., section id)`` and the
  matrix stays rectangular.

Expansion then exploits the locality the lane-op descriptors
(:func:`repro.core.fsm.transition_lane_ops`) prove: a compiled transition
reads and writes nothing outside *its controller's block*, the shared
version lane, the delivered message, and the network section.  Its effect
is therefore a pure function of a small key -- ``(message, receiver block,
version)`` for deliveries, ``(cache id, block, version)`` for accesses,
``(section id, delivered slot, sends)`` for the network splice -- and those
keys recur across far more rows than they have distinct values.  Each
distinct key is evaluated **once**, by running the existing per-transition
specialized function (:meth:`TransitionKernel._compile_cache_fn` /
``_compile_directory_fn``) on a representative row and diffing -- exact by
construction -- and the resulting lane delta is scattered into every
matching row of the successor matrix with NumPy fancy indexing.  Raw
successors then dedup **vectorized**: one ``np.unique`` over the packed row
bytes (+ section-ID column) per level replaces per-successor set probes.

The compiled interpreter stays on as the differential oracle and the
fallback: any plan the batch path cannot express (unexpected message,
ambiguous guards, missing data/requestor -- anything the compiled kernel
itself would route to the object executor) flips its whole frontier level
to the per-state compiled loop, preserving the exact serial failure order;
fault models, multi-address planes and litmus workloads fall back
whole-search (``VectorizedKernel.supported`` is False).  The fault-free
single-address hot path never leaves the batch loop -- pinned as zero
fallback transitions and zero object decodes in the engine tests.
"""

from __future__ import annotations

from repro.core.fsm import (
    CompilationUnsupported,
    transition_lane_ops,
)
from repro.system.kernel import (
    AMBIGUOUS,
    CF_PENDING,
    CF_STATE,
    DEFAULT_CODES,
    TransitionKernel,
)

try:  # NumPy is an optional dependency of the engine (requirements-dev).
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via monkeypatching
    _np = None


class VectorizedUnavailable(RuntimeError):
    """``kernel="vectorized"`` was requested but NumPy is not installed."""


#: Memo outcome: this plan must take the compiled/object slow path.
_FALLBACK = object()
#: Memo probe miss sentinel (distinguishes from the ``None`` = stalled entry).
_MISS = object()

#: Bound on the per-kernel outcome/tail memos (cleared when hit, like the
#: codec's component memos -- correctness never depends on a memo hit).
_MEMO_LIMIT = 1 << 20


class LevelExpansion:
    """One collected frontier level, ready for matrix assembly.

    Parallel per-successor arrays (``parent_pos``/``eevs``/``sids`` plus the
    flat scatter triple) in exact serial plan order; ``leaves`` are the
    zero-plan rows and ``fallbacks`` the row positions that need the
    compiled per-state path (non-empty ``fallbacks`` invalidates the
    collected successors -- the driver re-runs the level serially).  A leaf
    records the number of successors collected before it, which totally
    orders leaves against successors: leaf ``(k, ...)`` precedes successor
    index ``u`` exactly when ``k <= u``, so failure detection replays in
    exact serial stream order without per-successor sequence bookkeeping.
    """

    __slots__ = (
        "parent_pos", "eevs", "sids",
        "flat_cols", "flat_vals", "lens", "leaves", "fallbacks",
    )

    def __init__(self):
        self.parent_pos: list[int] = []   # parent row index per successor
        self.eevs: list[tuple] = []       # encoded event per successor
        self.sids: list[int] = []         # successor network-section ID
        self.flat_cols: list[int] = []    # scatter columns, flattened
        self.flat_vals: list[int] = []    # scatter values, flattened
        self.lens: list[int] = []         # delta width per successor
        self.leaves: list[tuple] = []     # (successors_before, state_id, row_pos)
        self.fallbacks: list[int] = []    # row positions needing slow path

    @property
    def transitions(self) -> int:
        return len(self.parent_pos)


class VectorizedKernel:
    """Frontier-batch expansion over a NumPy lane matrix.

    Wraps a system's :class:`TransitionKernel` (the lowering input and the
    oracle for memo misses) and its codec.  Construction requires NumPy
    (:class:`VectorizedUnavailable` otherwise); ``supported`` reports
    whether this configuration can run the batch path at all -- fault
    models, litmus workloads, multi-address planes and any transition whose
    lane-op descriptor is not block-confined make the whole search fall
    back to the compiled kernel.
    """

    def __init__(self, system):
        if _np is None:
            raise VectorizedUnavailable(
                "kernel=\"vectorized\" requires numpy, which is not "
                "installed (pip install numpy, or see requirements-dev.txt); "
                "verify() falls back to the compiled kernel without it"
            )
        self.np = _np
        self.system = system
        self.kernel: TransitionKernel = system.kernel()
        self.codec = codec = system.codec()
        layout = codec.layout()
        self.num_caches = layout["num_caches"]
        self.cache_width = layout["cache_width"]
        self.dir_offset = layout["dir_offset"]
        self.version_offset = layout["version_offset"]
        self.net_offset = layout["net_offset"]
        self.dtype = _np.dtype(layout["numpy_dtype"])
        self.supported = self.kernel._simple and self._lane_ops_confined()
        # Hash-consed network sections: tail tuple <-> dense section ID.
        self._section_ids: dict[tuple, int] = {}
        # Per-ID (tail, fake_enc, net_handle, deliveries, packed_tail).
        self._section_info: list[tuple] = []
        self._zero_prefix = (0,) * self.net_offset
        # Hot-loop key compression: guard-lane slices (cache block + version,
        # directory block), message records and send lists are interned to
        # dense small ints at first sight, so every memo probe on the
        # per-row path hashes a tuple of 2-3 machine ints instead of 10-20
        # lane values.  Guard interning itself is vectorized: one
        # ``np.unique`` per cache per level maps every row to its guard ID
        # and access-outcome tuple (computed once per distinct guard through
        # the compiled per-transition functions).  The tables are unbounded
        # but tiny -- they key on *distinct component values*, which
        # saturate early -- and IDs stay valid across memo clears.
        self._guard_tables: list[dict] = [{} for _ in range(self.num_caches)]
        self._dir_table: dict[bytes, int] = {}
        self._next_gid = 0
        self._rec_ids: dict[tuple, int] = {}
        self._sends_ids: dict[tuple, int] = {(): 0}
        # Outcome memos (see class docstring): distinct keys are evaluated
        # once through the compiled per-transition functions.
        self._deliv_memo: dict[tuple, object] = {}
        self._tail_memo: dict[tuple, int] = {}
        # Invariant lane tables for the batch checker: permission/stability
        # of each cache FSM state, indexed by the cache-state lane value.
        spec = self.kernel.spec
        self._perm_table = _np.asarray(spec.cache.permission, dtype=_np.int8)
        self._stable_table = _np.asarray(spec.cache.stable, dtype=bool)
        # Batch canonicalization side table: raw region bytes -> orbit
        # record (:meth:`EncodedCanonicalizer.orbit_for`).  Region orbits
        # are classified once per distinct cache-block region, found in
        # bulk by the driver's per-level ``np.unique`` over the successor
        # matrix.  Sound because ``verify`` only ever canonicalizes with
        # the system's full symmetric group (records are perm-set pure).
        self._region_orbits: dict[bytes, tuple] = {}

    def _lane_ops_confined(self) -> bool:
        """Every compiled transition's footprint fits the batch model.

        The lane-op descriptors are the soundness proof for delta reuse: a
        transition reading or writing outside the known field catalog would
        make the memo keys incomplete, so it must force the whole-search
        fallback rather than be silently mis-batched.
        """
        spec = self.kernel.spec
        try:
            for row in spec.cache.on_access:
                for ct in row:
                    if ct is not None:
                        transition_lane_ops(ct, is_cache=True)
            for row in spec.cache.on_message:
                for cands in row.values():
                    for ct in cands:
                        transition_lane_ops(ct, is_cache=True)
            for row in spec.directory.on_message:
                for cands in row.values():
                    for ct in cands:
                        transition_lane_ops(ct, is_cache=False)
        except CompilationUnsupported:
            return False
        return True

    # -- network-section interning -------------------------------------------------
    def intern_section(self, tail: tuple) -> int:
        """Dense ID for a network-section lane tuple (hash-consed)."""
        sid = self._section_ids.get(tail)
        if sid is None:
            sid = len(self._section_info)
            self._section_ids[tail] = sid
            fake_enc = self._zero_prefix + tail
            net = self.codec.parsed_network(fake_enc)
            items = net[0]
            if self.kernel.ordered:
                pairs = [(idx, item[3][0]) for idx, item in enumerate(items)]
            else:
                pairs = list(self.kernel._deduped_records(items))
            rec_ids = self._rec_ids
            deliveries = []
            for where, rec in pairs:
                rid = rec_ids.get(rec)
                if rid is None:
                    rid = rec_ids[rec] = len(rec_ids)
                deliveries.append((where, rec, rid))
            self._section_info.append(
                (tail, fake_enc, net, tuple(deliveries), self.codec.pack_tail(tail))
            )
        return sid

    def section_tail(self, sid: int) -> tuple:
        return self._section_info[sid][0]

    def section_packed(self, sid: int) -> bytes:
        return self._section_info[sid][4]

    # -- level collection ----------------------------------------------------------
    def _guard_ids_level(self, F):
        """Vectorized guard interning for one frontier matrix.

        One ``np.unique`` per cache maps every row to its guard ID (a dense
        int naming the distinct ``(cache block, version)`` slice) and its
        access-outcome tuple; one more handles the directory block.  Memo
        misses -- the only place transition code actually runs -- evaluate
        the compiled per-transition functions on the first row carrying the
        guard as the representative.  Returns ``(acc_rows, gid_rows,
        dgid_rows)``: per-cache outcome/ID lists indexed by row position,
        plus the per-row directory guard IDs.
        """
        np = self.np
        width = self.cache_width
        vo = self.version_offset
        d0 = self.dir_offset
        nrows = F.shape[0]
        itemsize = F.dtype.itemsize
        acc_rows = []
        gid_rows = []
        for cid in range(self.num_caches):
            base = cid * width
            gsub = np.empty((nrows, width + 1), dtype=F.dtype)
            gsub[:, :width] = F[:, base : base + width]
            gsub[:, width] = F[:, vo]
            gb = gsub.view(np.dtype((np.void, (width + 1) * itemsize))).ravel()
            uniq, first, inv = np.unique(
                gb, return_index=True, return_inverse=True
            )
            table = self._guard_tables[cid]
            pairs = []
            for vb, fi in zip(uniq, first.tolist()):
                key = vb.tobytes()
                pair = table.get(key)
                if pair is None:
                    prefix = tuple(F[fi].tolist())
                    gid = self._next_gid
                    self._next_gid = gid + 1
                    pair = table[key] = (gid, self._compute_access(cid, prefix))
                pairs.append(pair)
            inv_list = inv.tolist()
            gid_rows.append([pairs[k][0] for k in inv_list])
            acc_rows.append([pairs[k][1] for k in inv_list])
        dsub = np.ascontiguousarray(F[:, d0:vo])
        db = dsub.view(np.dtype((np.void, (vo - d0) * itemsize))).ravel()
        uniq, _first, inv = np.unique(db, return_index=True, return_inverse=True)
        dtable = self._dir_table
        dgids = []
        for vb in uniq:
            key = vb.tobytes()
            dgid = dtable.get(key)
            if dgid is None:
                dgid = dtable[key] = len(dtable)
            dgids.append(dgid)
        dgid_rows = [dgids[k] for k in inv.tolist()]
        return acc_rows, gid_rows, dgid_rows

    def collect_level(self, ids: list, F, sids: list) -> LevelExpansion:
        """Enumerate every row's plans in exact serial order via memo probes.

        Guard lanes are interned in bulk (:meth:`_guard_ids_level`), so the
        per-row loop -- the batch path's only per-row Python code -- touches
        nothing but small-int list lookups and small-int-tuple memo probes
        while emitting flat successor/delta arrays for :meth:`assemble`.
        """
        n = self.num_caches
        width = self.cache_width
        deliv_memo = self._deliv_memo
        tail_memo = self._tail_memo
        section_info = self._section_info
        acc_rows, gid_rows, dgid_rows = self._guard_ids_level(F)
        level = LevelExpansion()
        parent_pos = level.parent_pos
        eevs = level.eevs
        out_sids = level.sids
        flat_cols = level.flat_cols
        flat_vals = level.flat_vals
        lens = level.lens
        nrows = F.shape[0]
        for pos in range(nrows):
            succ_start = len(parent_pos)
            flat_start = len(flat_cols)
            fallback = False
            sid = sids[pos]
            row_prefix = None  # built lazily, only on a delivery-memo miss
            for cid in range(n):
                for out in acc_rows[cid][pos]:
                    if out is _FALLBACK:
                        fallback = True
                        break
                    eev, cols, vals, nlanes, sends, sends_id = out
                    if sends_id:
                        tkey = (sid, -1, sends_id)
                        sid2 = tail_memo.get(tkey)
                        if sid2 is None:
                            sid2 = self._emit_tail(sid, None, sends, tkey)
                    else:
                        sid2 = sid  # no sends, nothing delivered: same section
                    parent_pos.append(pos)
                    eevs.append(eev)
                    out_sids.append(sid2)
                    flat_cols.extend(cols)
                    flat_vals.extend(vals)
                    lens.append(nlanes)
                if fallback:
                    break
            if not fallback:
                for where, rec, rec_id in section_info[sid][3]:
                    dst = rec[2]
                    if dst == 1:
                        dkey = (rec_id, -1, dgid_rows[pos])
                        out = deliv_memo.get(dkey, _MISS)
                        if out is _MISS:
                            if row_prefix is None:
                                row_prefix = tuple(F[pos].tolist())
                            out = self._compute_delivery(
                                rec, None, None, row_prefix, dkey
                            )
                    else:
                        cid = dst - 2
                        dkey = (rec_id, cid, gid_rows[cid][pos])
                        out = deliv_memo.get(dkey, _MISS)
                        if out is _MISS:
                            if row_prefix is None:
                                row_prefix = tuple(F[pos].tolist())
                            out = self._compute_delivery(
                                rec, cid * width, cid, row_prefix, dkey
                            )
                    if out is None:  # stalled delivery: not an enabled plan
                        continue
                    if out is _FALLBACK:
                        fallback = True
                        break
                    eev, cols, vals, nlanes, sends, sends_id = out
                    tkey = (sid, where, sends_id)
                    sid2 = tail_memo.get(tkey)
                    if sid2 is None:
                        sid2 = self._emit_tail(sid, where, sends, tkey)
                    parent_pos.append(pos)
                    eevs.append(eev)
                    out_sids.append(sid2)
                    flat_cols.extend(cols)
                    flat_vals.extend(vals)
                    lens.append(nlanes)
            if fallback:
                # Invalidate the row's collected successors; the driver
                # replays the whole level through the compiled per-state
                # loop to preserve exact serial failure order.
                del parent_pos[succ_start:]
                del eevs[succ_start:]
                del out_sids[succ_start:]
                del flat_cols[flat_start:]
                del flat_vals[flat_start:]
                del lens[succ_start:]
                level.fallbacks.append(pos)
                continue
            if len(parent_pos) == succ_start:
                level.leaves.append((succ_start, ids[pos], pos))
        return level

    def assemble(self, F, level: LevelExpansion):
        """Build the successor lane matrix and dedup it, all vectorized.

        ``gather`` (parent rows fan out to successor rows via fancy
        indexing), ``scatter`` (every collected lane delta lands in one
        flat indexed assignment), ``dedup`` (one ``np.unique`` over the
        packed row bytes + section-ID lanes).  Returns ``(M, order)``: the
        widened successor matrix (prefix lanes plus section-ID lanes, so a
        row's bytes key the whole raw successor) and the indices of the
        distinct raw successors in first-occurrence (serial stream) order.
        """
        np = self.np
        S = F[np.asarray(level.parent_pos, dtype=np.intp)]
        if level.flat_cols:
            rows = np.repeat(
                np.arange(len(level.lens), dtype=np.intp),
                np.asarray(level.lens, dtype=np.intp),
            )
            S[rows, np.asarray(level.flat_cols, dtype=np.intp)] = np.asarray(
                level.flat_vals, dtype=self.dtype
            )
        # Widen each row with its successor section ID (split across lanes
        # when the lane dtype is narrower than 32 bits) so one void view of
        # the row bytes keys the whole raw successor -- prefix and tail.
        itemsize = S.dtype.itemsize
        extra = max(1, 4 // itemsize)
        sid_arr = np.asarray(level.sids, dtype=np.uint64)
        M = np.empty((S.shape[0], S.shape[1] + extra), dtype=S.dtype)
        M[:, : S.shape[1]] = S
        if extra == 1:
            M[:, -1] = sid_arr.astype(S.dtype)
        else:
            M[:, -2] = (sid_arr >> 16).astype(S.dtype)
            M[:, -1] = (sid_arr & 0xFFFF).astype(S.dtype)
        row_bytes = np.ascontiguousarray(M).view(
            np.dtype((np.void, M.shape[1] * itemsize))
        ).ravel()
        _, first = np.unique(row_bytes, return_index=True)
        first.sort()
        return M, first

    def check_level(self, V, codes: tuple):
        """Default-invariant verdicts for a successor matrix, as a lane mask.

        *V* is any matrix whose leading lanes are codec prefix lanes (the
        driver passes the widened distinct-successor matrix; trailing
        section-ID lanes are ignored).  Returns a boolean row mask -- True
        where SWMR **and** single-owner hold -- or ``None`` when *codes* is
        not the fused default pair (custom/litmus codes keep the per-row
        ``TransitionKernel.check``).  Soundness note: SWMR and single-owner
        aggregate over the cache-state lanes symmetrically, so the mask
        computed on *raw* successor rows equals the verdicts of their
        canonical representatives -- which is what lets the driver mask the
        whole level before any per-row canonical encoding is even built.
        """
        if codes != DEFAULT_CODES:
            return None
        np = self.np
        width = self.cache_width
        cols = np.arange(self.num_caches, dtype=np.intp) * width
        S = V[:, cols].astype(np.intp, copy=False)
        P = self._perm_table[S]
        is_writer = P == 2
        writers = is_writer.sum(axis=1)
        readers = (P == 1).sum(axis=1)
        stable_writers = (is_writer & self._stable_table[S]).sum(axis=1)
        return ~(
            (writers > 1)
            | ((writers > 0) & (readers > 0))
            | (stable_writers > 1)
        )

    # -- memo-miss evaluation (the only transition code on the batch path) ---------
    def _confined_delta(self, prefix: tuple, out: list, base):
        """Changed-lane delta, verified confined to the expected block.

        *base* is the cache-block offset (allowed lanes: the block plus the
        version lane) or ``None`` for the directory (allowed lanes: the
        directory block).  A write outside the allowance would make the
        memo key unsound, so it routes to the fallback instead.
        """
        cols = []
        vals = []
        for lane, (old, new) in enumerate(zip(prefix, out)):
            if old != new:
                cols.append(lane)
                vals.append(new)
        if base is None:
            lo, hi = self.dir_offset, self.version_offset
            for lane in cols:
                if not lo <= lane < hi:
                    return None
        else:
            hi = base + self.cache_width
            vo = self.version_offset
            for lane in cols:
                if not (base <= lane < hi or lane == vo):
                    return None
        return (tuple(cols), tuple(vals))

    def _intern_sends(self, sends: tuple) -> int:
        """Dense integer ID for an outbound-message tuple (``() -> 0``)."""
        sends_id = self._sends_ids.get(sends)
        if sends_id is None:
            sends_id = self._sends_ids[sends] = len(self._sends_ids)
        return sends_id

    def _compute_access(self, cid: int, prefix: tuple) -> tuple:
        """All access outcomes for one distinct cache guard slice; computed
        once per guard ID and stored in the guard table by the caller."""
        k = self.kernel
        base = cid * self.cache_width
        si = prefix[base + CF_STATE]
        if prefix[base + 1] >= k.max_accesses or not k.spec.cache.stable[si]:
            return ()  # CF_ISSUED budget spent / transient: no plans
        acc = []
        for ai, ct, fn in k._access_plans[si]:
            out = list(prefix)
            out[base + 1] += 1          # CF_ISSUED
            out[base + CF_PENDING] = ai + 1
            sends: list = []
            if fn is not None and not fn(out, base, cid, None, ai, sends):
                acc.append(_FALLBACK)
                continue
            out[base + CF_STATE] = ct.next_state
            if ct.has_perform:
                out[base + CF_PENDING] = 0
            delta = self._confined_delta(prefix, out, base)
            if delta is None:
                acc.append(_FALLBACK)
                continue
            cols, vals = delta
            s = tuple(sends)
            acc.append(
                ((0, cid, ai), cols, vals, len(cols), s, self._intern_sends(s))
            )
        return tuple(acc)

    def _compute_delivery(self, rec: tuple, base, cid, prefix: tuple, dkey: tuple):
        """Outcome for one delivery key; mirrors ``TransitionKernel.enabled``
        + ``apply`` for a single plan, minus the network splice (which is
        keyed separately on the section).  Stores into the memo itself."""
        k = self.kernel
        if base is None:  # directory delivery
            cands = k.spec.directory.on_message[prefix[self.dir_offset]].get(rec[0])
        else:
            cands = k.spec.cache.on_message[prefix[base + CF_STATE]].get(rec[0])
        outcome = self._delivery_outcome(k, rec, base, cid, prefix, cands)
        if len(self._deliv_memo) >= _MEMO_LIMIT:
            self._deliv_memo.clear()
        self._deliv_memo[dkey] = outcome
        return outcome

    def _delivery_outcome(self, k, rec, base, cid, prefix, cands):
        if not cands:
            return _FALLBACK  # unexpected message -> object-executor error
        if len(cands) == 1 and cands[0].guard == 0:
            ct = cands[0]
        else:
            ct = k._select(cands, rec, prefix, base, self.dir_offset)
        if ct is None or ct is AMBIGUOUS:
            return _FALLBACK
        if ct.stall:
            return None
        out = list(prefix)
        sends: list = []
        if base is None:
            if not k._dir_fns[id(ct)](out, rec, sends):
                return _FALLBACK
        else:
            pending = out[base + CF_PENDING]
            ai = pending - 1 if pending else None
            fn = k._cache_fns[id(ct)]
            if fn is not None and not fn(out, base, cid, rec, ai, sends):
                return _FALLBACK
            out[base + CF_STATE] = ct.next_state
            if ct.has_perform:
                out[base + CF_PENDING] = 0
        delta = self._confined_delta(prefix, out, base)
        if delta is None:
            return _FALLBACK
        cols, vals = delta
        s = tuple(sends)
        return ((1,) + rec, cols, vals, len(cols), s, self._intern_sends(s))

    def _emit_tail(self, sid: int, where, sends: tuple, tkey: tuple) -> int:
        """Successor section ID for ``(section, delivered slot, sends id)``,
        via the compiled kernel's exact re-normalization."""
        _tail, fake_enc, net, _deliv, _packed = self._section_info[sid]
        out: list = []
        self.kernel._emit_net(
            out, fake_enc, net, where, list(sends),
            self.net_offset, len(fake_enc),
        )
        sid2 = self.intern_section(tuple(out))
        if len(self._tail_memo) >= _MEMO_LIMIT:
            self._tail_memo.clear()
        self._tail_memo[tkey] = sid2
        return sid2


__all__ = ["VectorizedKernel", "VectorizedUnavailable", "LevelExpansion"]
