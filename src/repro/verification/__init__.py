"""Verification layer: explicit-state model checking and random simulation.

This is the reproduction's replacement for the Murphi model checker used in
the paper: :func:`repro.verification.verify` enumerates the reachable state
space of a generated protocol (N caches, one block, bounded non-deterministic
workload, non-deterministic message delivery) and checks SWMR, the data-value
invariant (enforced inside the execution substrate) and deadlock freedom.

The checker lives in the :mod:`repro.verification.engine` subsystem and
mirrors Murphi's scalarset machinery: ``verify(system, symmetry=True)``
canonicalizes cache IDs before de-duplication (up to ``num_caches!`` fewer
states, identical verdicts, replayable counterexample traces), states are
interned in a compact store with optional hash compaction, and the search
strategy is pluggable (BFS, DFS, or a fork-based parallel BFS).
"""

from repro.verification.engine import (
    BreadthFirst,
    DepthFirst,
    ParallelBreadthFirst,
    SearchStrategy,
    StateStore,
    VerificationResult,
    canonicalize,
    canonicalize_bruteforce,
    canonicalize_bruteforce_encoded,
    canonicalize_encoded,
    relabel_event,
    verify,
)
from repro.verification.invariants import (
    Invariant,
    InvariantViolation,
    LitmusInvariant,
    default_invariants,
    single_owner_invariant,
    swmr_invariant,
)
from repro.verification.litmus import (
    LITMUS_TESTS,
    LitmusTest,
    coherent_read_read,
    message_passing,
    store_buffering,
)
from repro.verification.random_walk import RandomWalkResult, random_walk

__all__ = [
    "BreadthFirst",
    "DepthFirst",
    "Invariant",
    "InvariantViolation",
    "LITMUS_TESTS",
    "LitmusInvariant",
    "LitmusTest",
    "ParallelBreadthFirst",
    "RandomWalkResult",
    "SearchStrategy",
    "StateStore",
    "VerificationResult",
    "canonicalize",
    "canonicalize_bruteforce",
    "canonicalize_bruteforce_encoded",
    "canonicalize_encoded",
    "coherent_read_read",
    "default_invariants",
    "message_passing",
    "random_walk",
    "relabel_event",
    "single_owner_invariant",
    "store_buffering",
    "swmr_invariant",
    "verify",
]
