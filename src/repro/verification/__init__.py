"""Verification layer: explicit-state model checking and random simulation.

This is the reproduction's replacement for the Murphi model checker used in
the paper: :func:`repro.verification.verify` enumerates the reachable state
space of a generated protocol (N caches, one block, bounded non-deterministic
workload, non-deterministic message delivery) and checks SWMR, the data-value
invariant (enforced inside the execution substrate) and deadlock freedom.
"""

from repro.verification.explorer import VerificationResult, verify
from repro.verification.invariants import (
    Invariant,
    InvariantViolation,
    default_invariants,
    single_owner_invariant,
    swmr_invariant,
)
from repro.verification.random_walk import RandomWalkResult, random_walk

__all__ = [
    "Invariant",
    "InvariantViolation",
    "RandomWalkResult",
    "VerificationResult",
    "default_invariants",
    "random_walk",
    "single_owner_invariant",
    "swmr_invariant",
    "verify",
]
