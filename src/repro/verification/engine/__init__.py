"""Symmetry-reduced, parallel-capable verification engine.

The engine is the repo's Murphi stand-in, rebuilt from the seed's flat BFS
explorer into four cooperating modules:

* :mod:`~repro.verification.engine.canonical` -- cache-ID permutation
  algebra and scalarset-style state canonicalization;
* :mod:`~repro.verification.engine.store` -- interned state store with
  columnar parent links and optional hash compaction;
* :mod:`~repro.verification.engine.search` -- pluggable search strategies
  (BFS, DFS, fork-based parallel BFS);
* :mod:`~repro.verification.engine.parallel` /
  :mod:`~repro.verification.engine.shard` -- the shared-memory parallel
  scale-out: zero-copy frontier arenas, work-stealing chunk claims, and
  digest-sharded (disk-spillable) visited sets;
* :mod:`~repro.verification.engine.checkpoint` -- budget checkpoint/resume
  for all of the above;
* :mod:`~repro.verification.engine.core` -- the :func:`verify` facade tying
  them together, including permutation-correct counterexample traces.

``verify(system)`` behaves exactly like the seed explorer;
``verify(system, symmetry=True)`` explores one representative per
cache-permutation orbit, which is what makes three-cache, two-access
workloads tractable (E7--E10).
"""

from repro.verification.engine.canonical import (
    Permutation,
    canonicalize,
    canonicalize_bruteforce,
    canonicalize_bruteforce_encoded,
    canonicalize_encoded,
    compose,
    identity_permutation,
    invert,
    relabel_event,
)
from repro.verification.engine.checkpoint import CheckpointMismatch
from repro.verification.engine.core import Exploration, VerificationResult, verify
from repro.verification.engine.parallel import ShmEngine
from repro.verification.engine.shard import SpillableKeySet, digest128
from repro.verification.engine.search import (
    BreadthFirst,
    DepthFirst,
    ParallelBreadthFirst,
    SearchStrategy,
    resolve_strategy,
)
from repro.verification.engine.store import StateStore

__all__ = [
    "BreadthFirst",
    "CheckpointMismatch",
    "DepthFirst",
    "Exploration",
    "ParallelBreadthFirst",
    "Permutation",
    "SearchStrategy",
    "ShmEngine",
    "SpillableKeySet",
    "StateStore",
    "VerificationResult",
    "digest128",
    "canonicalize",
    "canonicalize_bruteforce",
    "canonicalize_bruteforce_encoded",
    "canonicalize_encoded",
    "compose",
    "identity_permutation",
    "invert",
    "relabel_event",
    "resolve_strategy",
    "verify",
]
