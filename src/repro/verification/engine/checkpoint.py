"""Checkpoint/resume for budgeted searches.

A checkpoint is one pickle file capturing everything a search needs to
continue *bit-identically*: the store's columnar trace links (plus, for
in-process searches, the intern keys in ID order), the pending frontier, the
running counters, and -- for a search whose visited set lives sharded across
worker processes -- the concatenated shard digests instead of keys.

Three frontier shapes cover the engine's strategies:

* ``mode="deque"`` -- the serial BFS/DFS worklist, saved mid-level exactly
  as it stood when the ``max_states`` budget hit; resuming continues with
  the very next pop, so the completed search is bit-identical to an
  uninterrupted one (IDs, counts, verdict, trace).
* ``mode="level"`` -- a level-synchronous search (vectorized BFS, or the
  parallel strategy before its pool spins up) saved at a level boundary:
  when the next level would cross the budget the whole level is saved
  *unclipped* instead of partially expanded, so the resumed run explores
  the identical level sequence.
* ``mode="sharded"`` -- the shared-memory parallel engine past spin-up:
  the parent holds no key dict, so the checkpoint carries the workers'
  shard digests (re-shardable under a different worker count on resume).

The **fingerprint** binds a checkpoint to the search that wrote it: codec
index tables, cache/address counts, workload, symmetry group size, backend,
strategy and invariant names.  ``max_states`` and the worker count are
deliberately excluded -- continuing a budgeted nightly run under a new
budget (or on a box with different cores) is the whole point.
"""

from __future__ import annotations

import hashlib
import os
import pickle

#: Bumped whenever the payload layout changes; a mismatch refuses to resume.
CHECKPOINT_VERSION = 1


class CheckpointMismatch(ValueError):
    """The checkpoint on disk was written by an incompatible search."""


def fingerprint(ctx) -> str:
    """Digest of everything that must match for a resume to be sound."""
    codec = ctx.codec
    system = ctx.system
    material = repr((
        codec.cache_states,
        codec.dir_states,
        codec.mtypes,
        codec.access_kinds,
        system.num_caches,
        system.num_addresses,
        repr(system.workload),
        len(ctx.perms) if ctx.perms is not None else 0,
        ctx.vkernel is not None,
        ctx.kernel is not None,
        ctx.strategy_name,
        tuple(getattr(inv, "__name__", repr(inv)) for inv in ctx.invariants),
        ctx.check_deadlock,
        ctx.check_workload_deadlock,
        ctx.store.hash_compaction,
    )).encode()
    return hashlib.blake2b(material, digest_size=16).hexdigest()


def save(ctx, *, mode: str, frontier, level: int | None,
         shard_blobs: list[bytes] | None = None) -> None:
    """Write *ctx*'s search state to ``ctx.checkpoint_path`` atomically.

    *frontier* is a list of ``(state_id, packed_key)`` pairs in pop order.
    ``mode="sharded"`` passes the workers' digest dumps in *shard_blobs*
    and omits the store's key column (the parent no longer has one).
    """
    path = ctx.checkpoint_path
    payload = {
        "version": CHECKPOINT_VERSION,
        "fingerprint": fingerprint(ctx),
        "mode": mode,
        "level": level,
        "frontier": list(frontier),
        "store": ctx.store.snapshot(with_keys=mode != "sharded"),
        "explored": ctx.explored,
        "transitions": ctx.transitions,
        "complete_states": ctx.complete_states,
        "shards": shard_blobs,
    }
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as f:
        pickle.dump(payload, f, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp, path)


def load(ctx) -> dict | None:
    """Read, validate and apply the checkpoint at ``ctx.checkpoint_path``.

    Returns the payload (the caller's strategy picks the frontier up from
    ``ctx.resume``) or ``None`` when no checkpoint file exists.  Raises
    :class:`CheckpointMismatch` when the file was written by a different
    search configuration or payload version.
    """
    path = ctx.checkpoint_path
    if path is None or not os.path.exists(path):
        return None
    with open(path, "rb") as f:
        payload = pickle.load(f)
    if payload.get("version") != CHECKPOINT_VERSION:
        raise CheckpointMismatch(
            f"checkpoint {path!r} has payload version "
            f"{payload.get('version')!r}, expected {CHECKPOINT_VERSION}"
        )
    expected = fingerprint(ctx)
    if payload.get("fingerprint") != expected:
        raise CheckpointMismatch(
            f"checkpoint {path!r} was written by a different search "
            "configuration (protocol/workload/symmetry/backend/strategy "
            "mismatch); delete it to start over"
        )
    ctx.store.restore(payload["store"])
    ctx.explored = payload["explored"]
    ctx.transitions = payload["transitions"]
    ctx.complete_states = payload["complete_states"]
    ctx.resume = payload
    ctx.resume_level = payload["level"]
    return payload


def clear(path: str | None) -> None:
    """Remove a consumed checkpoint (the search ran to its end)."""
    if path is not None and os.path.exists(path):
        try:
            os.remove(path)
        except OSError:
            pass


__all__ = ["CHECKPOINT_VERSION", "CheckpointMismatch", "fingerprint",
           "save", "load", "clear"]
