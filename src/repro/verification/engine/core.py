"""The :func:`verify` facade and its shared exploration context.

This module replaces the seed's monolithic BFS explorer with an engine that
composes three orthogonal pieces:

* **symmetry reduction** (:mod:`repro.verification.engine.canonical`) --
  cache-ID canonicalization before de-duplication, mirroring Murphi
  scalarsets; off by default so existing callers see bit-identical state
  counts, enabled with ``verify(system, symmetry=True)``;
* **an interned state store** (:mod:`repro.verification.engine.store`) --
  dense integer IDs and columnar parent links instead of a
  ``dict[GlobalState, (GlobalState, SystemEvent)]`` parent map, with
  optional hash compaction;
* **pluggable search strategies** (:mod:`repro.verification.engine.search`)
  -- breadth-first (default), depth-first, and a fork-based multiprocessing
  breadth-first search that shards the frontier across worker processes.

Counterexample traces remain valid under symmetry reduction: every stored
transition records the permutation that canonicalized its successor, and
:meth:`Exploration.trace_events` relabels each event back through the
inverse of the accumulated permutation chain, so the reported event sequence
replays step-by-step through :meth:`repro.system.System.apply` from the real
initial state.
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.system.system import GlobalState, System, SystemEvent
from repro.verification.engine.canonical import (
    Permutation,
    canonicalize_encoded,
    compose,
    invert,
    relabel_event,
)
from repro.verification.engine import checkpoint as checkpoint_mod
from repro.verification.engine.store import StateStore
from repro.verification.invariants import (
    Invariant,
    InvariantViolation,
    compiled_invariant_codes,
    default_invariants,
)


@dataclass
class VerificationResult:
    """Outcome of an exhaustive exploration."""

    ok: bool
    states_explored: int
    transitions_explored: int
    elapsed_seconds: float
    violation: InvariantViolation | None = None
    error: str | None = None
    deadlock: bool = False
    truncated: bool = False
    trace: list[str] = field(default_factory=list)
    complete_states: int = 0
    #: The counterexample as replayable events (``trace`` is their ``str`` form).
    trace_events: list[SystemEvent] = field(default_factory=list)
    #: Whether cache-ID symmetry reduction was applied during the search.
    symmetry_reduced: bool = False
    #: Name of the search strategy that produced this result.
    strategy: str = "bfs"
    #: Which transition backend expanded states: "compiled" (the lowered
    #: table kernel over encoded states) or "object" (the dataclass executor).
    kernel: str = "object"
    #: Measured search breakdown, so bottleneck claims come from numbers
    #: instead of inference: ``kernel`` / ``strategy`` (the backends that
    #: ran), ``decode_count`` (``GlobalState`` decodes across the search,
    #: worker processes included -- 0 for a passing compiled-kernel search,
    #: reduced or not), ``canonicalization_seconds`` (CPU seconds inside
    #: symmetry canonicalization; summed across workers for the parallel
    #: strategy) and ``expansion_seconds`` (everything else: successor
    #: generation, interning, invariant checks).  For multi-process
    #: searches the worker CPU sum is not comparable against the parent's
    #: wall-clock, so ``expansion_seconds`` is ``None`` there instead of a
    #: bogus subtraction.
    stats: dict = field(default_factory=dict)

    @property
    def partial(self) -> bool:
        """True when the search stopped at the ``max_states`` budget.

        A partial PASS means *no violation was found within the budget*, not
        that the protocol is verified: only the explored prefix of the state
        space is covered.  The perf-smoke CI job and the benchmark reporter
        use budgeted runs; callers that need full coverage should check this
        flag (or ``truncated``, its storage field) before trusting ``ok``.
        """
        return self.truncated

    @property
    def summary(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        extra = ""
        if self.violation is not None:
            extra = f" [{self.violation}]"
        elif self.error is not None:
            extra = f" [{self.error}]"
        elif self.deadlock:
            extra = " [deadlock]"
        if self.truncated:
            extra += " (partial: state budget exhausted)"
        return (
            f"{status}: {self.states_explored} states, "
            f"{self.transitions_explored} transitions, "
            f"{self.elapsed_seconds:.2f}s{extra}"
        )


class Exploration:
    """Mutable context shared between :func:`verify` and a search strategy.

    Holds the system under test, the invariants, the (optional) symmetry
    permutation group, the interned state store, and the running counters;
    provides the result constructors and the permutation-aware trace
    reconstruction so every strategy reports identically-shaped results.
    """

    def __init__(
        self,
        *,
        system: System,
        invariants: tuple[Invariant, ...],
        perms: tuple[Permutation, ...] | None,
        store: StateStore,
        max_states: int,
        check_deadlock: bool,
        strategy_name: str,
        kernel=None,
        kernel_codes: tuple[str, ...] | None = None,
        check_workload_deadlock: bool = False,
        vkernel=None,
        checkpoint_path: str | None = None,
        spill_dir: str | None = None,
    ):
        self.system = system
        self.codec = system.codec()
        self.invariants = invariants
        self.perms = perms
        self.store = store
        self.max_states = max_states
        self.check_deadlock = check_deadlock
        self.strategy_name = strategy_name
        #: Compiled :class:`~repro.system.kernel.TransitionKernel`, or None
        #: to interpret the object model (``System.apply``) directly.
        self.kernel = kernel
        #: Encoded evaluator codes for ``invariants`` (compiled mode only).
        self.kernel_codes = kernel_codes
        #: Report quiescent states that still hold unissued workload budget
        #: as deadlocks (``verify(..., deadlock=True)``).
        self.check_workload_deadlock = check_workload_deadlock
        #: :class:`~repro.system.vectorized.VectorizedKernel` for the
        #: frontier-batch BFS, or None.  Requires ``kernel`` (the compiled
        #: kernel stays on as the memo-miss oracle and the fallback).
        self.vkernel = vkernel
        #: Set by the strategy that actually ran ("vectorized") to override
        #: the kernel/backed-off naming in :meth:`_result`; None means the
        #: compiled/object naming applies.
        self.kernel_name: str | None = None
        #: Batch telemetry (vectorized searches): levels expanded as one
        #: batch, total rows across those batches, and the split of applied
        #: transitions between the batch path and the serial-replay fallback.
        self.expansion_batches = 0
        self.batch_rows = 0
        self.vectorized_transitions = 0
        self.fallback_transitions = 0
        self.start = time.perf_counter()
        self.explored = 0
        self.transitions = 0
        self.complete_states = 0
        self.truncated = False
        #: Wall-clock spent inside canonicalization (strategies accumulate;
        #: workers report their share per batch).
        self.canon_seconds = 0.0
        #: ``GlobalState`` decodes reported back by worker processes (their
        #: codecs are private copies, so the parent counter cannot see them).
        self.worker_decodes = 0
        #: Worker-process count of a multi-process search, 0 when the
        #: search ran in this process (drives the stats time-split shape).
        self.parallel_workers = 0
        #: Where to save (and look for) a resumable budget checkpoint; None
        #: disables checkpointing entirely.
        self.checkpoint_path = checkpoint_path
        #: Directory for the parallel workers' cold visited-set runs; None
        #: keeps every shard fully in memory.
        self.spill_dir = spill_dir
        #: Loaded checkpoint payload (set by ``checkpoint.load``); strategies
        #: pick their frontier up from here instead of the root.
        self.resume: dict | None = None
        #: Frontier level the loaded checkpoint stopped at (None = fresh run).
        self.resume_level: int | None = None
        #: Shared-memory engine telemetry: chunk claims beyond one per worker
        #: per round (work actually stolen), states expanded per worker, and
        #: bytes of visited-set digests currently spilled to disk.
        self.steal_count = 0
        self.worker_states: list[int] | None = None
        self.spill_bytes = 0
        # Decode baseline: the codec is cached per system, so its counter
        # carries history from earlier searches; stats report the delta.
        self._decode_base = self.codec.decode_count
        self.root: tuple[int, GlobalState] | None = None
        #: Packed encoding of the (canonical) root, for strategies that ship
        #: encoded frontiers instead of state objects.
        self.root_key: bytes | None = None
        #: Flat int-tuple encoding of the (canonical) root (compiled mode).
        self.root_enc: tuple | None = None

    # -- setup -----------------------------------------------------------------
    def seed(self) -> VerificationResult | None:
        """Intern the (canonicalized, encoded) initial state and check it.

        Returns a failure result if an invariant is already violated in the
        initial state, ``None`` otherwise.
        """
        codec = self.codec
        initial = self.system.initial_state()
        enc = codec.encode(initial)
        root_perm: Permutation | None = None
        if self.perms is not None:
            enc, root_perm = canonicalize_encoded(enc, codec, self.perms)
            if root_perm != self.perms[0]:
                initial = codec.decode(enc)
        self.root_key = codec.pack(enc)
        self.root_enc = enc
        root_id, _ = self.store.intern(self.root_key, perm=root_perm)
        self.root = (root_id, initial)
        for invariant in self.invariants:
            violation = invariant(self.system, initial)
            if violation is not None:
                return self.failure(violation=violation, leaf_id=root_id)
        return None

    # -- trace reconstruction ----------------------------------------------------
    def trace_events(
        self, leaf_id: int, final_event: SystemEvent | None = None
    ) -> list[SystemEvent]:
        """Rebuild the root-to-leaf event sequence in the *concrete* frame.

        The store records events in the frame of each canonical parent.  Let
        ``sigma_i`` be the accumulated permutation mapping the concrete run
        to the canonical representatives (``sigma_0`` is the root's
        canonicalizing permutation).  The concrete event at step ``i+1`` is
        the stored event relabeled through ``sigma_i`` **inverse**, and
        ``sigma_{i+1} = perm_{i+1} . sigma_i`` where ``perm_{i+1}`` is the
        permutation that canonicalized the raw successor.  The resulting
        sequence replays through :meth:`System.apply` from
        :meth:`System.initial_state`.
        """
        links = self.store.chain(leaf_id)
        # links[0] belongs to the root: no event, just its canonicalizing perm.
        sigma = links[0][1]
        events: list[SystemEvent] = []
        decode_event = self.codec.decode_event
        for event, perm in links[1:]:
            assert event is not None
            if not isinstance(event, SystemEvent):
                # The hot path stores codec event encodings; traces are the
                # only consumer, so they decode lazily -- here, on failure.
                event = decode_event(event)
            events.append(relabel_event(event, None if sigma is None else invert(sigma)))
            if perm is not None:
                sigma = perm if sigma is None else compose(perm, sigma)
        if final_event is not None:
            events.append(
                relabel_event(final_event, None if sigma is None else invert(sigma))
            )
        return events

    # -- result constructors -----------------------------------------------------
    def _result(self, ok: bool, **kwargs) -> VerificationResult:
        elapsed = time.perf_counter() - self.start
        kernel = self.kernel_name or (
            "compiled" if self.kernel is not None else "object"
        )
        stats = {
            "kernel": kernel,
            "strategy": self.strategy_name,
            "decode_count": (
                self.codec.decode_count - self._decode_base + self.worker_decodes
            ),
            "canonicalization_seconds": round(self.canon_seconds, 6),
            # Worker canonicalization time is CPU summed across processes;
            # subtracting it from this process's wall-clock would fabricate
            # a split, so multi-process searches report no expansion figure.
            "expansion_seconds": (
                None
                if self.parallel_workers
                else round(max(0.0, elapsed - self.canon_seconds), 6)
            ),
        }
        stats["resume_level"] = self.resume_level
        if self.worker_states is not None:
            stats["steal_count"] = self.steal_count
            stats["worker_states"] = list(self.worker_states)
            stats["spill_bytes"] = self.spill_bytes
        if kernel == "vectorized":
            stats["expansion_batches"] = self.expansion_batches
            stats["mean_batch_width"] = (
                round(self.batch_rows / self.expansion_batches, 3)
                if self.expansion_batches
                else 0.0
            )
            stats["vectorized_transitions"] = self.vectorized_transitions
            stats["fallback_transitions"] = self.fallback_transitions
        return VerificationResult(
            ok=ok,
            states_explored=self.explored,
            transitions_explored=self.transitions,
            elapsed_seconds=elapsed,
            complete_states=self.complete_states,
            symmetry_reduced=self.perms is not None,
            strategy=self.strategy_name,
            kernel=kernel,
            stats=stats,
            **kwargs,
        )

    def _concretized(
        self,
        events: list[SystemEvent],
        violation: InvariantViolation | None,
        error: str | None,
    ) -> tuple[InvariantViolation | None, str | None]:
        """Re-derive failure details in the concrete frame of the trace.

        Under symmetry reduction the violation/error was produced while
        inspecting a *canonical* state, so its text mentions canonical cache
        IDs; the reconstructed trace, however, is relabeled to the concrete
        frame.  Replaying the trace once regenerates the same verdict with
        IDs consistent with the reported events.
        """
        state = self.system.initial_state()
        for event in events:
            outcome = self.system.apply(state, event)
            if outcome.error is not None:
                # Error traces end with the failing event by construction.
                return violation, outcome.error
            state = outcome.state
        if violation is not None:
            for invariant in self.invariants:
                concrete = invariant(self.system, state)
                if concrete is not None and concrete.name == violation.name:
                    return concrete, error
        return violation, error

    def failure(
        self,
        *,
        leaf_id: int | None = None,
        final_event: SystemEvent | None = None,
        violation: InvariantViolation | None = None,
        error: str | None = None,
        deadlock: bool = False,
    ) -> VerificationResult:
        events = (
            self.trace_events(leaf_id, final_event) if leaf_id is not None else []
        )
        if self.perms is not None and events:
            violation, error = self._concretized(events, violation, error)
        return self._result(
            False,
            violation=violation,
            error=error,
            deadlock=deadlock,
            trace=[str(e) for e in events],
            trace_events=events,
        )

    def success(self) -> VerificationResult:
        return self._result(True, truncated=self.truncated)


def _resolve_kernel(system, kernel, invariant_tuple):
    """Resolve the ``kernel=`` argument to ``(TransitionKernel | None, codes)``.

    "compiled" falls back to the object backend -- silently, because the two
    backends are pinned to identical exploration -- whenever the compiled
    fast path cannot reproduce the object semantics exactly:

    * *system* is a ``System`` subclass (tests and tooling override event
      enumeration or application);
    * an invariant has no encoded evaluator
      (:func:`repro.verification.invariants.compiled_invariant_codes`);
    * the protocol uses a construct the table form cannot express
      (:class:`repro.core.fsm.CompilationUnsupported`).
    """
    if kernel == "object":
        return None, None
    if kernel not in ("compiled", "vectorized"):
        raise ValueError(
            f"unknown kernel {kernel!r} "
            "(expected 'compiled', 'vectorized' or 'object')"
        )
    if type(system) is not System:
        return None, None
    codes = compiled_invariant_codes(invariant_tuple)
    if codes is None:
        return None, None
    from repro.core.fsm import CompilationUnsupported

    try:
        return system.kernel(), codes
    except CompilationUnsupported:
        return None, None


def _is_litmus(system: System) -> bool:
    from repro.system.system import LitmusWorkload

    return isinstance(system.workload, LitmusWorkload)


def verify(
    system: System,
    *,
    invariants: Sequence[Invariant] | None = None,
    max_states: int = 2_000_000,
    check_deadlock: bool = True,
    deadlock: bool = False,
    symmetry: bool | None = None,
    strategy: object = "bfs",
    processes: int | None = None,
    hash_compaction: bool = False,
    kernel: str = "compiled",
    checkpoint: str | None = None,
    spill_dir: str | None = None,
) -> VerificationResult:
    """Exhaustively explore *system* and check all invariants.

    Parameters beyond the seed API (all optional, defaults preserve the
    seed's exact behaviour and state counts):

    ``max_states``
        State budget: the search aborts cleanly once the budget is reached
        and returns a **partial** result (``result.partial`` /
        ``result.truncated`` set, counters and any found violation intact)
        instead of running unbounded.  The parallel strategy enforces the
        budget per frontier level, so its cut can land up to one level
        earlier than the serial strategies'.
    ``deadlock``
        Also report *workload deadlocks*: a canonically-reachable quiescent
        state whose caches still hold unissued workload budget but where no
        transition is enabled can never absorb the remaining accesses; with
        ``deadlock=True`` it is reported as a deadlock failure with a
        replayable trace instead of being counted as a completed run.  Off
        by default: the seed explorer counts such states as complete, and a
        mid-search failure would cut the pinned state counts short.
    ``symmetry``
        Canonicalize cache IDs before de-duplication (Murphi scalarset
        reduction).  Explores one representative per cache-permutation orbit
        -- up to ``num_caches!`` fewer states -- while preserving every
        verdict; counterexample traces are relabeled back to the concrete
        frame and stay replayable.
    ``strategy``
        ``"bfs"`` (default), ``"dfs"``, ``"parallel"`` (fork-based
        multiprocessing BFS), or a
        :class:`~repro.verification.engine.search.SearchStrategy` instance.
        All strategies explore the same state set and report the same
        verdicts; BFS yields shortest counterexamples.
    ``processes``
        Worker count for the parallel strategy (ignored otherwise).
    ``hash_compaction``
        Key the visited-set by a 128-bit digest of each state instead of the
        state object, trading a vanishing collision risk for memory.
    ``kernel``
        ``"compiled"`` (default) expands states with the compiled transition
        kernel (:mod:`repro.system.kernel`): the generated protocol is
        lowered to integer dispatch tables at setup and successors, events
        and invariant verdicts are computed directly on encoded states --
        the exploration (order, counts, verdicts, traces) is bit-identical
        to the object backend, just faster.  ``"object"`` forces the
        dataclass executor; the compiled mode also falls back to it
        automatically for ``System`` subclasses, unrecognized invariant
        callables, or protocols the table form cannot express.
        ``"vectorized"`` expands whole frontier levels at once as NumPy
        operations over a 2-D lane matrix (:mod:`repro.system.vectorized`);
        it requires NumPy (clear :class:`VectorizedUnavailable` error from
        ``System.vectorized_kernel()`` otherwise, with ``verify()`` falling
        back to the compiled kernel) and runs on the BFS strategy for
        fault-free single-address non-litmus configurations, falling back
        to the compiled kernel -- per level or whole-search -- everywhere
        else.  ``result.kernel`` records which backend actually ran.
    ``checkpoint``
        Path of a resumable budget checkpoint.  When the search stops at the
        ``max_states`` budget it saves its frontier, store links and
        counters there (atomically); a later ``verify`` call with the same
        configuration and the same path resumes where it stopped -- under a
        fresh budget -- and the completed search reports counters, verdict
        and trace identical to an uninterrupted run.  A completed (non-
        partial) search deletes the file.  A checkpoint written by a
        different configuration raises
        :class:`~repro.verification.engine.checkpoint.CheckpointMismatch`.
    ``spill_dir``
        Directory where the parallel engine's worker shards may spill cold
        visited-set partitions as sorted digest runs, bounding resident
        memory on searches whose visited set would not fit otherwise
        (ignored by the in-process strategies, which keep the store's dict).
    """
    from repro.verification.engine.search import resolve_strategy

    invariant_tuple = (
        tuple(invariants) if invariants is not None else tuple(default_invariants())
    )
    strat = resolve_strategy(strategy, processes=processes)
    if symmetry is None:
        # Symmetry intent declared at System construction (validated there).
        symmetry = system.symmetry
    if symmetry and system.num_caches > 1 and not system.supports_symmetry:
        combination = (
            "a litmus workload (litmus programs distinguish the caches)"
            if _is_litmus(system)
            else f"num_addresses={system.num_addresses} (the encoded "
            "canonicalizer only handles single-plane layouts)"
        )
        raise ValueError(
            f"symmetry=True is unsupported with {combination}; construct the "
            "System with symmetry=True to get this error at construction time"
        )
    perms = (
        system.symmetry_permutations()
        if symmetry and system.num_caches > 1
        else None
    )
    kernel_impl, kernel_codes = _resolve_kernel(system, kernel, invariant_tuple)
    vkernel = None
    if kernel == "vectorized" and kernel_impl is not None:
        from repro.system.vectorized import VectorizedUnavailable

        try:
            candidate = system.vectorized_kernel()
        except VectorizedUnavailable:
            candidate = None  # no numpy: fall back to the compiled kernel
        if candidate is not None and candidate.supported:
            vkernel = candidate
    ctx = Exploration(
        system=system,
        invariants=invariant_tuple,
        perms=perms,
        store=StateStore(hash_compaction=hash_compaction),
        max_states=max_states,
        check_deadlock=check_deadlock,
        strategy_name=strat.name,
        kernel=kernel_impl,
        kernel_codes=kernel_codes,
        check_workload_deadlock=deadlock,
        vkernel=vkernel,
        checkpoint_path=checkpoint,
        spill_dir=spill_dir,
    )
    early = ctx.seed()
    if early is not None:
        return early
    # A checkpoint (if one exists at the path) replaces the freshly seeded
    # store wholesale -- the snapshot's ID 0 is the same canonical root.
    checkpoint_mod.load(ctx)
    # The search allocates millions of short-lived, cycle-free tuples and
    # byte strings; generational GC scans buy nothing there and cost ~10 %
    # of the wall-clock, so collection pauses while the search runs.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        result = strat.run(ctx)
    finally:
        if gc_was_enabled:
            gc.enable()
    if checkpoint is not None and not result.truncated:
        # The search ran to its end: the checkpoint is consumed.
        checkpoint_mod.clear(checkpoint)
    return result
