"""The shared-memory parallel BFS engine: zero-copy frontiers, work-stealing
chunk claims, digest-sharded visited sets, and a key-free parent.

This replaces the pickled-``pool.map`` level exchange of the original
parallel strategy.  The search still proceeds in rounds (a round is one
frontier level -- the budget and verdict semantics of level-synchronous BFS
are part of the engine's contract), but *within* a round nothing is pickled
and nobody waits on a static partition:

* **Zero-copy frontier exchange.**  The parent lays the round's frontier
  out in a ``multiprocessing.shared_memory`` arena as length-prefixed
  ``(state_id, packed_key)`` records behind an offsets table; workers map
  the arena and read records in place.  Worker results (candidate
  successors, then accepted successors) travel back through worker-owned
  arenas the same way.  All arenas are grow-only rings: they are reused
  round after round and only recreated bigger when a round outgrows them.

* **Work-stealing chunk claims.**  Instead of pre-sharding the frontier,
  workers repeatedly claim the next chunk of records from a shared atomic
  cursor (``RawValue`` + lock).  A worker that drew cheap states simply
  comes back for more -- claims past the first per worker are steals, and
  the tail imbalance of a round is one chunk instead of one shard.

* **Digest-sharded visited set.**  Every canonical successor is hashed to
  the 128-bit BLAKE2b digest the store's hash compaction uses; the digest's
  owner shard (``digest % workers``) is the only process that ever answers
  membership for it (:class:`~repro.verification.engine.shard.SpillableKeySet`,
  optionally spilling cold partitions to disk).  Producers bucket candidate
  records per owner; after the round's expand phase each worker dedups its
  own bucket column, checks invariants on the genuinely new states, and
  publishes the accepted records.  The parent then assigns dense IDs and
  appends trace links **without keeping any key dict at all**
  (:meth:`~repro.verification.engine.store.StateStore.append_link` /
  ``drop_index``) -- its per-state footprint is three column appends, which
  is what keeps peak RSS roughly flat as searches grow.

* **Failure semantics.**  Errors and deadlocks are found during expansion,
  invariant violations during owner dedup; all candidates carry their
  ``(frontier position, plan ordinal)`` coordinates and the parent reports
  the minimum -- the earliest failure *of the round* in serial order.  As
  with the vectorized driver, a failing round may have interned/counted
  states past the serial stopping point; verdicts and traces stay valid
  (every stored chain to the failing state is a real counterexample).  On
  passing runs all exploration counts are schedule-independent and match
  the serial strategies exactly.

Checkpoint/resume: at a round boundary the parent can ask every worker to
dump its shard digests and write a ``mode="sharded"`` checkpoint; resuming
re-seeds the shards from the concatenated digests (re-sharded, so the
worker count may change between runs) and continues with the saved
frontier.
"""

from __future__ import annotations

import gc
import struct
import traceback
from array import array
from multiprocessing import shared_memory
from time import perf_counter

from repro.verification.engine import checkpoint as checkpoint_mod
from repro.verification.engine.canonical import canonicalizer_for
from repro.verification.engine.shard import (
    DIGEST_BYTES,
    SpillableKeySet,
    digest128,
    shard_of,
)

#: ``(item, plan_ordinal, perm_index, eev_len, key_len)`` record header.
_REC_HEADER = "<IHHBxI"
_REC_HEADER_SIZE = struct.calcsize(_REC_HEADER)
#: ``(state_id, key_len)`` input-record header.
_IN_HEADER = "<QI"
_IN_HEADER_SIZE = struct.calcsize(_IN_HEADER)

#: Permutation index meaning "no permutation recorded".
_NO_PERM = 0xFFFF

#: Bound on the workers' emitted-digest suppression caches (an optimization
#: like the raw-seen sets: clearing only re-pays IPC, never correctness).
_EMITTED_LIMIT = 1 << 19


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment (creator keeps cleanup ownership).

    On Python < 3.13 attaching re-registers the segment with the resource
    tracker, but the fleet is fork-homogeneous -- every process talks to the
    *same* tracker, whose per-type cache is a set -- so the re-register is
    idempotent and the creator's ``unlink`` clears the single entry.  (An
    explicit ``unregister`` here would double-remove and raise in the
    tracker instead.)
    """
    return shared_memory.SharedMemory(name=name)


class _Arena:
    """A grow-only shared-memory buffer (created fresh when capacity grows)."""

    __slots__ = ("shm", "capacity")

    def __init__(self):
        self.shm = None
        self.capacity = 0

    def ensure(self, size: int) -> shared_memory.SharedMemory:
        if self.shm is None or self.capacity < size:
            self.destroy()
            self.shm = shared_memory.SharedMemory(
                create=True, size=max(1, size)
            )
            self.capacity = self.shm.size
        return self.shm

    def destroy(self) -> None:
        if self.shm is not None:
            self.shm.close()
            try:
                self.shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double-clean race
                pass
            self.shm = None
            self.capacity = 0


class _WorkerCrash(RuntimeError):
    """A worker process died; carries its traceback text."""


# -- worker side ---------------------------------------------------------------


class _WorkerState:
    """Per-process expansion context (built once, after fork)."""

    def __init__(self, wid, cfg, seed_blob):
        (system, invariants, perms, kernel_codes, check_deadlock,
         check_workload_deadlock, spill_dir, nworkers) = cfg
        self.wid = wid
        self.nworkers = nworkers
        self.system = system
        self.invariants = invariants
        self.perms = perms
        self.codes = kernel_codes
        self.check_deadlock = check_deadlock
        self.check_workload_deadlock = check_workload_deadlock
        self.codec = system.codec()
        self.kernel = system.kernel() if kernel_codes is not None else None
        self.canonicalize = (
            canonicalizer_for(self.codec, perms).canonicalize
            if perms is not None
            else None
        )
        self.perm_index = (
            {perm: i for i, perm in enumerate(perms)}
            if perms is not None
            else {}
        )
        self.shard = SpillableKeySet(spill_dir, tag=f"w{wid}")
        self.shard.seed(seed_blob, nworkers, wid)
        self.raw_seen: set = set()
        self.emitted: set = set()
        self.bucket_arena = _Arena()
        self.accepted_arena = _Arena()

    def close(self):
        self.bucket_arena.destroy()
        self.accepted_arena.destroy()
        self.shard.close()


def _worker_main(wid, cfg, ctrl, results, claim, claim_lock, seed_blob):
    """Worker loop: expand -> dedup -> (dump|expand|...) until "stop"."""
    gc.disable()
    ws = _WorkerState(wid, cfg, seed_blob)
    del seed_blob  # parent's copy serves resumes; drop the fork duplicate
    try:
        while True:
            msg = ctrl.get()
            op = msg[0]
            if op == "expand":
                _worker_expand(ws, msg, results, claim, claim_lock)
            elif op == "dedup":
                _worker_dedup(ws, msg, results)
            elif op == "dump":
                results.put(("dump", wid, ws.shard.dump()))
            elif op == "stop":
                break
    except Exception:  # pragma: no cover - surfaced as _WorkerCrash in parent
        try:
            results.put(("crash", wid, traceback.format_exc()))
        except Exception:
            pass
    finally:
        ws.close()


def _encode_record(item, plan_ord, perm_idx, eev, digest, key) -> bytes:
    return (
        struct.pack(_REC_HEADER, item, plan_ord, perm_idx, len(eev), len(key))
        + digest
        + struct.pack(f"<{len(eev)}i", *eev)
        + key
    )


def _worker_expand(ws, msg, results, claim, claim_lock):
    """Claim chunks of the round's frontier and expand them.

    Candidate successors are canonicalized, packed, digested and bucketed
    per owning shard; successors this worker already knows (own shard) or
    already emitted (bounded cache) never leave the process.  Errors and
    deadlock leaves become failure candidates tagged with their
    ``(frontier position, plan ordinal)`` so the parent can pick the round's
    serial-order minimum.
    """
    _op, arena_name, count, chunk = msg
    wid = ws.wid
    nworkers = ws.nworkers
    codec = ws.codec
    kernel = ws.kernel
    system = ws.system
    canonicalize = ws.canonicalize
    perm_index = ws.perm_index
    shard = ws.shard
    raw_seen = ws.raw_seen
    emitted = ws.emitted
    unpack = codec.unpack
    pack = codec.pack
    decode_base = codec.decode_count
    canon_seconds = 0.0
    buckets = [bytearray() for _ in range(nworkers)]
    failures: list = []
    applied = 0
    expanded = 0
    complete = 0
    chunks = 0
    shm = _attach(arena_name)
    buf = shm.buf
    offsets = buf[8 : 8 + 8 * count].cast("q")
    try:
        while True:
            with claim_lock:
                start = claim.value
                claim.value = start + chunk
            if start >= count:
                break
            chunks += 1
            for i in range(start, min(count, start + chunk)):
                expanded += 1
                off = offsets[i]
                _sid, klen = struct.unpack_from(_IN_HEADER, buf, off)
                key = bytes(buf[off + _IN_HEADER_SIZE : off + _IN_HEADER_SIZE + klen])
                if kernel is not None:
                    enc = unpack(key)
                    plans, net = kernel.enabled(enc)
                    if not plans:
                        if kernel.is_quiescent(enc):
                            if ws.check_workload_deadlock and kernel.workload_remaining(enc):
                                failures.append((i, -1, "dead", None))
                            else:
                                complete += 1
                        elif ws.check_deadlock:
                            failures.append((i, -1, "dead", None))
                        continue
                    for plan_ord, plan in enumerate(plans):
                        applied += 1
                        eev = plan[1]
                        succ = plan[0](enc, plan, net)
                        if succ is None:
                            outcome = system.apply(
                                codec.decode(enc), codec.decode_event(eev)
                            )
                            if outcome.error is not None:
                                failures.append(
                                    (i, plan_ord, "err", (eev, outcome.error))
                                )
                                break
                            succ = codec.encode(outcome.state)
                        perm_idx = _NO_PERM
                        if canonicalize is not None:
                            grown = len(raw_seen) + 1
                            raw_seen.add(succ)
                            if len(raw_seen) != grown:
                                continue
                            if grown >= _EMITTED_LIMIT:
                                raw_seen.clear()
                            t0 = perf_counter()
                            succ, perm = canonicalize(succ)
                            canon_seconds += perf_counter() - t0
                            perm_idx = perm_index[perm]
                        skey = pack(succ)
                        digest = digest128(skey)
                        if digest in emitted:
                            continue
                        owner = shard_of(digest, nworkers)
                        if owner == wid and digest in shard:
                            continue
                        if len(emitted) >= _EMITTED_LIMIT:
                            emitted.clear()
                        emitted.add(digest)
                        buckets[owner] += _encode_record(
                            i, plan_ord, perm_idx, eev, digest, skey
                        )
                else:
                    state = codec.decode_packed(key)
                    events = system.enabled_events(state)
                    if not events:
                        if system.is_quiescent(state):
                            if ws.check_workload_deadlock and not system.is_complete(state):
                                failures.append((i, -1, "dead", None))
                            else:
                                complete += 1
                        elif ws.check_deadlock:
                            failures.append((i, -1, "dead", None))
                        continue
                    for plan_ord, event in enumerate(events):
                        applied += 1
                        outcome = system.apply(state, event)
                        if outcome.error is not None:
                            failures.append((
                                i, plan_ord, "err",
                                (codec.encode_event(event), outcome.error),
                            ))
                            break
                        enc = codec.encode(outcome.state)
                        perm_idx = _NO_PERM
                        if canonicalize is not None:
                            grown = len(raw_seen) + 1
                            raw_seen.add(enc)
                            if len(raw_seen) != grown:
                                continue
                            if grown >= _EMITTED_LIMIT:
                                raw_seen.clear()
                            t0 = perf_counter()
                            enc, perm = canonicalize(enc)
                            canon_seconds += perf_counter() - t0
                            perm_idx = perm_index[perm]
                        skey = pack(enc)
                        digest = digest128(skey)
                        if digest in emitted:
                            continue
                        owner = shard_of(digest, nworkers)
                        if owner == wid and digest in shard:
                            continue
                        if len(emitted) >= _EMITTED_LIMIT:
                            emitted.clear()
                        emitted.add(digest)
                        buckets[owner] += _encode_record(
                            i, plan_ord, perm_idx,
                            codec.encode_event(event), digest, skey,
                        )
    finally:
        offsets.release()
        del buf
        shm.close()
    blob = b"".join(buckets)
    out = ws.bucket_arena.ensure(len(blob))
    out.buf[: len(blob)] = blob
    spans = []
    pos = 0
    for bucket in buckets:
        spans.append((pos, len(bucket)))
        pos += len(bucket)
    results.put((
        "expanded", ws.wid, out.name, spans, failures,
        {
            "applied": applied,
            "expanded": expanded,
            "complete": complete,
            "chunks": chunks,
            "canon_seconds": canon_seconds,
            "decodes": codec.decode_count - decode_base,
        },
    ))


def _worker_dedup(ws, msg, results):
    """Owner phase: dedup this worker's bucket column, check invariants.

    Walks every producer's bucket for this shard in producer order, accepts
    records whose digest is genuinely new (inserting it), evaluates the
    compiled invariant codes on each accepted state (object invariants when
    running the object backend), and republishes the accepted records
    verbatim for the parent's ID assignment.
    """
    _op, directory = msg
    wid = ws.wid
    codec = ws.codec
    kernel = ws.kernel
    codes = ws.codes
    system = ws.system
    invariants = ws.invariants
    shard = ws.shard
    unpack = codec.unpack
    decode_base = codec.decode_count
    accepted = bytearray()
    n_accepted = 0
    failures: list = []
    for _pwid, arena_name, spans in directory:
        off, length = spans[wid]
        if length == 0:
            continue
        shm = _attach(arena_name)
        buf = shm.buf
        try:
            pos = off
            end = off + length
            while pos < end:
                rec_start = pos
                item, plan_ord, perm_idx, eev_len, klen = struct.unpack_from(
                    _REC_HEADER, buf, pos
                )
                pos += _REC_HEADER_SIZE
                digest = bytes(buf[pos : pos + DIGEST_BYTES])
                pos += DIGEST_BYTES
                eev_end = pos + 4 * eev_len
                key_end = eev_end + klen
                if digest in shard:
                    pos = key_end
                    continue
                shard.add(digest)
                key = bytes(buf[eev_end:key_end])
                violation = None
                if kernel is not None:
                    enc = unpack(key)
                    if not kernel.check(enc, codes):
                        state = codec.decode(enc)
                        for invariant in invariants:
                            violation = invariant(system, state)
                            if violation is not None:
                                break
                else:
                    state = codec.decode_packed(key)
                    for invariant in invariants:
                        violation = invariant(system, state)
                        if violation is not None:
                            break
                if violation is not None:
                    eev = tuple(struct.unpack_from(f"<{eev_len}i", buf, pos))
                    failures.append(
                        (item, plan_ord, "vio", (violation, eev, perm_idx, key))
                    )
                    pos = key_end
                    continue
                accepted += buf[rec_start:key_end]
                n_accepted += 1
                pos = key_end
        finally:
            del buf
            shm.close()
    out = ws.accepted_arena.ensure(len(accepted))
    out.buf[: len(accepted)] = accepted
    results.put((
        "deduped", wid, out.name, len(accepted), n_accepted, failures,
        {
            "decodes": codec.decode_count - decode_base,
            "spill_bytes": shard.spill_bytes,
            "shard_len": len(shard),
        },
    ))


# -- parent side ---------------------------------------------------------------


class ShmEngine:
    """Parent driver of the shared-memory worker fleet (one per search)."""

    def __init__(self, ctx, mp_ctx, processes: int):
        self.ctx = ctx
        self.mp = mp_ctx
        self.nworkers = processes
        self.claim = mp_ctx.RawValue("q", 0)
        self.claim_lock = mp_ctx.Lock()
        self.ctrl = [mp_ctx.SimpleQueue() for _ in range(processes)]
        self.results = mp_ctx.SimpleQueue()
        self.procs: list = []
        self.input_arena = _Arena()
        self._spill_by_worker = [0] * processes

    # -- lifecycle -------------------------------------------------------------
    def spinup(self, *, seed_keys=None, seed_blobs=None) -> None:
        """Fork the workers, seeding their shards with the visited set.

        *seed_keys* comes from the in-process phase's store (packed keys,
        or digests already under hash compaction); *seed_blobs* comes from
        a ``mode="sharded"`` checkpoint.  Either way the blob is inherited
        by fork -- zero-copy -- and each worker keeps only its shard.
        """
        # Start the resource tracker *before* forking so every worker
        # inherits the parent's tracker (one shared registry with set
        # semantics).  A worker that lazily spawned its own tracker on its
        # first attach would, at exit, "clean up" arenas the parent still
        # owns.
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
        ctx = self.ctx
        if seed_keys is not None:
            if ctx.store.hash_compaction:
                seed_blob = b"".join(seed_keys)
            else:
                seed_blob = b"".join(digest128(key) for key in seed_keys)
        else:
            seed_blob = b"".join(seed_blobs or [])
        cfg = (
            ctx.system,
            ctx.invariants,
            ctx.perms,
            ctx.kernel_codes,
            ctx.check_deadlock,
            ctx.check_workload_deadlock,
            ctx.spill_dir,
            self.nworkers,
        )
        for wid in range(self.nworkers):
            proc = self.mp.Process(
                target=_worker_main,
                args=(wid, cfg, self.ctrl[wid], self.results,
                      self.claim, self.claim_lock, seed_blob),
                daemon=True,
            )
            proc.start()
            self.procs.append(proc)
        ctx.parallel_workers = self.nworkers
        ctx.worker_states = [0] * self.nworkers

    def shutdown(self) -> None:
        for queue in self.ctrl:
            try:
                queue.put(("stop",))
            except Exception:  # pragma: no cover - worker already gone
                pass
        for proc in self.procs:
            proc.join(timeout=10)
        for proc in self.procs:  # pragma: no cover - hung worker backstop
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2)
        self.procs = []
        self.input_arena.destroy()

    # -- the round loop --------------------------------------------------------
    def drive(self, frontier, level: int):
        """Run rounds until the frontier drains, the budget hits, or a
        failure surfaces; returns the search's VerificationResult."""
        ctx = self.ctx
        while frontier:
            remaining = ctx.max_states - ctx.explored
            over_budget = remaining <= 0
            if not over_budget and len(frontier) > remaining:
                if ctx.checkpoint_path is not None:
                    # Budgeted-with-checkpoint: stop at the round boundary
                    # (save the level unclipped) so the resumed search
                    # explores the identical level sequence.
                    over_budget = True
                else:
                    ctx.truncated = True
                    frontier = frontier[:remaining]
            if over_budget:
                ctx.truncated = True
                if ctx.checkpoint_path is not None:
                    self._save_checkpoint(frontier, level)
                break
            ctx.explored += len(frontier)
            frontier, failure = self._round(frontier)
            if failure is not None:
                return failure
            level += 1
        return ctx.success()

    def _broadcast(self, msg) -> None:
        for queue in self.ctrl:
            queue.put(msg)

    def _collect(self, kind: str) -> list:
        """Gather one *kind* message per worker (crashes surface here)."""
        out = [None] * self.nworkers
        pending = self.nworkers
        while pending:
            msg = self.results.get()
            if msg[0] == "crash":
                raise _WorkerCrash(
                    f"parallel worker {msg[1]} crashed:\n{msg[2]}"
                )
            if msg[0] != kind:  # pragma: no cover - protocol violation
                raise RuntimeError(f"unexpected worker message {msg[0]!r}")
            out[msg[1]] = msg
            pending -= 1
        return out

    def _round(self, frontier):
        """One expand/dedup/absorb round over *frontier*."""
        ctx = self.ctx
        nworkers = self.nworkers
        count = len(frontier)
        round_sids = [sid for sid, _key in frontier]

        # Lay the frontier out in the input arena: offsets table + records.
        offsets = array("q")
        parts = []
        off = 8 + 8 * count
        for sid, key in frontier:
            offsets.append(off)
            parts.append(struct.pack(_IN_HEADER, sid, len(key)))
            parts.append(key)
            off += _IN_HEADER_SIZE + len(key)
        shm = self.input_arena.ensure(off)
        buf = shm.buf
        struct.pack_into("<Q", buf, 0, count)
        buf[8 : 8 + 8 * count] = offsets.tobytes()
        buf[8 + 8 * count : off] = b"".join(parts)
        del buf

        # Expand phase: workers claim chunks off the shared cursor.
        self.claim.value = 0
        chunk = max(1, min(8192, count // (nworkers * 8) or 1))
        self._broadcast(("expand", shm.name, count, chunk))
        expanded = self._collect("expanded")

        failures: list = []
        round_chunks = 0
        for msg in expanded:
            _kind, wid, _name, _spans, worker_failures, stats = msg
            failures.extend(worker_failures)
            ctx.transitions += stats["applied"]
            ctx.complete_states += stats["complete"]
            ctx.canon_seconds += stats["canon_seconds"]
            ctx.worker_decodes += stats["decodes"]
            ctx.worker_states[wid] += stats["expanded"]
            round_chunks += stats["chunks"]
        # Every chunk claim past one per worker was work stolen from the
        # shared queue rather than a static pre-assigned shard.
        ctx.steal_count += max(0, round_chunks - nworkers)

        # Dedup phase: each worker walks its own bucket column.
        directory = [
            (msg[1], msg[2], msg[3]) for msg in expanded
        ]
        self._broadcast(("dedup", directory))
        deduped = self._collect("deduped")

        # Absorb phase: assign dense IDs and append trace links (no keys).
        next_frontier: list = []
        append_link = ctx.store.append_link
        perms = ctx.perms
        for msg in deduped:
            _kind, wid, name, blob_len, n_accepted, worker_failures, stats = msg
            failures.extend(worker_failures)
            ctx.worker_decodes += stats["decodes"]
            self._spill_by_worker[wid] = stats["spill_bytes"]
            if n_accepted == 0:
                continue
            acc = _attach(name)
            buf = acc.buf
            try:
                pos = 0
                for _ in range(n_accepted):
                    item, _plan_ord, perm_idx, eev_len, klen = struct.unpack_from(
                        _REC_HEADER, buf, pos
                    )
                    pos += _REC_HEADER_SIZE + DIGEST_BYTES
                    eev = tuple(struct.unpack_from(f"<{eev_len}i", buf, pos))
                    pos += 4 * eev_len
                    key = bytes(buf[pos : pos + klen])
                    pos += klen
                    perm = None if perm_idx == _NO_PERM else perms[perm_idx]
                    new_id = append_link(round_sids[item], eev, perm)
                    next_frontier.append((new_id, key))
            finally:
                del buf
                acc.close()
        ctx.spill_bytes = sum(self._spill_by_worker)

        if failures:
            return None, self._report_failure(failures, round_sids)
        return next_frontier, None

    def _report_failure(self, failures, round_sids):
        """Report the round's earliest failure in serial (state, plan) order.

        Like the vectorized driver, a canonical violating state reached by
        several parents in one round is attributed to whichever producer's
        record its owner deduped first -- the chain is a valid
        counterexample either way and the verdict is identical.
        """
        ctx = self.ctx
        item, plan_ord, kind, payload = min(
            failures, key=lambda f: (f[0], f[1])
        )
        sid = round_sids[item]
        if kind == "dead":
            return ctx.failure(deadlock=True, leaf_id=sid)
        if kind == "err":
            eev, message = payload
            return ctx.failure(
                error=message,
                leaf_id=sid,
                final_event=ctx.codec.decode_event(eev),
            )
        violation, eev, perm_idx, _key = payload
        perm = None if perm_idx == _NO_PERM else ctx.perms[perm_idx]
        leaf_id = ctx.store.append_link(sid, eev, perm)
        return ctx.failure(violation=violation, leaf_id=leaf_id)

    # -- checkpointing ---------------------------------------------------------
    def _save_checkpoint(self, frontier, level: int) -> None:
        self._broadcast(("dump",))
        dumps = self._collect("dump")
        checkpoint_mod.save(
            self.ctx,
            mode="sharded",
            frontier=frontier,
            level=level,
            shard_blobs=[msg[2] for msg in dumps],
        )


__all__ = ["ShmEngine"]
