"""Pluggable search strategies over the shared exploration context.

Three strategies are provided:

* :class:`BreadthFirst` -- the default; identical exploration order (and,
  with symmetry off, identical state counts) to the seed explorer, and the
  shortest counterexamples.
* :class:`DepthFirst` -- LIFO frontier; explores the same state set and
  reports the same verdicts, typically finding *some* counterexample sooner
  at the cost of longer traces.
* :class:`ParallelBreadthFirst` -- level-synchronous BFS over the
  **shared-memory worker engine**
  (:mod:`repro.verification.engine.parallel`).  Narrow levels expand
  in-process; the first level wide enough forks persistent workers, after
  which frontiers travel as zero-copy shared-memory arenas of packed
  encodings, workers claim chunks off a shared cursor (work-stealing)
  instead of receiving static shards, and the visited set lives sharded
  across the workers keyed by the 128-bit hash-compaction digest
  (optionally spilling cold partitions to disk).  The parent keeps no key
  dict at all past spin-up -- it only appends columnar trace links
  (:meth:`~repro.verification.engine.store.StateStore.append_link`) -- so
  counterexample traces work exactly as in the serial strategies while the
  parent's per-state footprint stays flat.  Falls back to serial BFS when
  ``fork`` is unavailable or fewer than two workers are requested.  Around
  the ``max_states`` bound the explored-state count may differ from the
  serial strategies by up to one frontier level (the bound is enforced per
  level, not per state).

Every strategy runs on one of two **transition backends**, chosen by
``verify(..., kernel=...)`` and carried on the exploration context:

* the **compiled kernel** (default; :mod:`repro.system.kernel`) expands
  encoded states end-to-end -- enabled events, successors, quiescence and
  invariant verdicts all computed on flat int tuples, with the frontier
  carrying encodings and the store interning packed bytes.  States and
  events decode lazily, only to report a failure (the object executor then
  reproduces the exact error/violation text as the differential oracle);
* the **object backend** interprets ``System.apply`` over dataclass trees
  (the pre-compilation behaviour), used for ``System`` subclasses and
  custom invariants.

Both backends visit the same states in the same order and report
identically-shaped results.
"""

from __future__ import annotations

import gc
import multiprocessing
import os
from collections import deque
from time import perf_counter

from repro.verification.engine import checkpoint as checkpoint_mod
from repro.verification.engine.canonical import (
    SAVED_ORBIT,
    _tie_break_encoded,
    canonicalizer_for,
)
from repro.verification.engine.parallel import ShmEngine

#: Bound on the raw-successor dedup sets of the symmetry-reduced searches: a
#: raw successor reached twice maps to the same canonical representative, so
#: its second occurrence can skip canonicalize/pack/intern entirely (~38 % of
#: transitions on the reference MSI workload).  The set is an optimization
#: only -- clearing it when full merely re-pays the canonicalization, so the
#: bound caps memory without affecting any count or verdict.
_RAW_SEEN_LIMIT = 1 << 19

# -- worker-process state (populated via fork + Pool initializer) --------------

_WORKER: tuple | None = None


def _init_worker(system, invariants, perms, kernel_codes) -> None:
    """Install the per-process search context (runs once per worker).

    The codec (and compiled kernel, when *kernel_codes* is not ``None``) is
    (re)built here rather than inherited so each worker owns private memo
    tables; with the ``fork`` start method the system and invariants arrive
    by address-space inheritance, never by pickling.
    """
    global _WORKER
    # Workers inherit the parent's paused GC via fork only on the first
    # level; disabling here keeps collection off for the pool's lifetime
    # (the expansion hot path allocates cycle-free data exclusively).
    gc.disable()
    kernel = system.kernel() if kernel_codes is not None else None
    _WORKER = (
        system,
        invariants,
        perms,
        system.codec(),
        set(),  # canonical packed keys this worker has emitted
        kernel,
        kernel_codes,
        set(),  # raw successor encodings (pre-canonicalization dedup)
    )


def _leaf_record(sid, quiescent, stuck):
    return ("leaf", sid, quiescent, stuck)


def _expand_batch(batch):
    """Expand a batch of ``(state_id, packed_encoding)`` pairs in a worker.

    Returns ``(records, canon_seconds, decode_count)`` — the records (one
    per state, in input order), the wall-clock this batch spent inside
    canonicalization, and the number of ``GlobalState`` decodes it performed
    (both feed ``VerificationResult.stats``).  Records are:

    * ``("leaf", sid, quiescent, stuck)`` -- no enabled events; ``stuck``
      flags a quiescent state that still holds unissued workload budget
      (the ``deadlock=True`` report);
    * ``("exp", sid, applied, succs, err, vio)`` -- ``succs`` is a list of
      pre-interned-at-the-source ``(encoded_event, packed_successor, perm)``
      triples ready for the parent's batch intern, ``err`` is ``None`` or
      ``(encoded_event, error_message)`` for an event whose application
      failed (expansion of that state stops there, as in the serial
      search), and ``vio`` is ``None`` or ``(index, violation)`` naming the
      first successor in ``succs`` that violates an invariant.

    De-duplication is persistent per worker: the seen-set carries over
    between levels, so a canonical state this worker has emitted in *any*
    earlier batch crosses the process boundary exactly once.  The parent's
    intern loop would have discarded the duplicates anyway (``is_new=False``);
    suppressing them at the source amortizes the IPC.  ``applied`` still
    counts every applied event, so transition counts match the serial
    strategies.
    """
    if _WORKER[5] is not None:
        return _expand_batch_compiled(batch)
    system, invariants, perms, codec, seen, _, _, raw_seen = _WORKER
    identity = perms[0] if perms is not None else None
    canonicalize = (
        canonicalizer_for(codec, perms).canonicalize if perms is not None else None
    )
    decode_base = codec.decode_count
    canon_seconds = 0.0
    decode_packed = codec.decode_packed
    encode = codec.encode
    pack = codec.pack
    encode_event = codec.encode_event
    records = []
    for sid, key in batch:
        state = decode_packed(key)
        events = system.enabled_events(state)
        if not events:
            quiescent = system.is_quiescent(state)
            stuck = quiescent and not system.is_complete(state)
            records.append(_leaf_record(sid, quiescent, stuck))
            continue
        succs = []
        err = None
        vio = None
        applied = 0
        for event in events:
            applied += 1
            outcome = system.apply(state, event)
            if outcome.error is not None:
                err = (encode_event(event), outcome.error)
                break
            enc = encode(outcome.state)
            perm = None
            if canonicalize is not None:
                # set.add + length check = one hash: a no-growth add means
                # this raw successor was canonicalized (and emitted or
                # suppressed) before.
                grown = len(raw_seen) + 1
                raw_seen.add(enc)
                if len(raw_seen) != grown:
                    continue
                if grown >= _RAW_SEEN_LIMIT:
                    raw_seen.clear()
                start = perf_counter()
                enc, perm = canonicalize(enc)
                canon_seconds += perf_counter() - start
            successor_key = pack(enc)
            if successor_key in seen:
                # Invariants are functions of the state alone, so the first
                # emission already carried this state's verdict.
                continue
            seen.add(successor_key)
            if vio is None:
                successor = (
                    outcome.state
                    if perm is None or perm == identity
                    else codec.decode(enc)
                )
                for invariant in invariants:
                    violation = invariant(system, successor)
                    if violation is not None:
                        vio = (len(succs), violation)
                        break
            succs.append((encode_event(event), successor_key, perm))
        records.append(("exp", sid, applied, succs, err, vio))
    return records, canon_seconds, codec.decode_count - decode_base


def _slow_outcome(system, codec, enc, eev):
    """The object-executor outcome for one event the kernel flagged.

    The compiled kernel returns ``None`` instead of reproducing error
    behaviour; replaying the single event through ``System.apply`` yields
    the exact seed-identical error outcome (or, for benign corner cases, the
    successor state) -- the object executor is the oracle.
    """
    return system.apply(codec.decode(enc), codec.decode_event(eev))


def _expand_batch_compiled(batch):
    """Compiled-kernel twin of :func:`_expand_batch`: states stay encoded."""
    system, invariants, perms, codec, seen, kernel, codes, raw_seen = _WORKER
    canonicalize = (
        canonicalizer_for(codec, perms).canonicalize if perms is not None else None
    )
    decode_base = codec.decode_count
    canon_seconds = 0.0
    unpack = codec.unpack
    pack = codec.pack
    records = []
    for sid, key in batch:
        enc = unpack(key)
        plans, net = kernel.enabled(enc)
        if not plans:
            quiescent = kernel.is_quiescent(enc)
            stuck = quiescent and kernel.workload_remaining(enc)
            records.append(_leaf_record(sid, quiescent, stuck))
            continue
        succs = []
        err = None
        vio = None
        applied = 0
        for plan in plans:
            applied += 1
            eev = plan[1]
            succ = plan[0](enc, plan, net)
            if succ is None:
                outcome = _slow_outcome(system, codec, enc, eev)
                if outcome.error is not None:
                    err = (eev, outcome.error)
                    break
                succ = codec.encode(outcome.state)
            perm = None
            if canonicalize is not None:
                grown = len(raw_seen) + 1
                raw_seen.add(succ)
                if len(raw_seen) != grown:
                    # Canonicalized (and emitted or suppressed) before.
                    continue
                if grown >= _RAW_SEEN_LIMIT:
                    raw_seen.clear()
                start = perf_counter()
                succ, perm = canonicalize(succ)
                canon_seconds += perf_counter() - start
            successor_key = pack(succ)
            if successor_key in seen:
                continue
            seen.add(successor_key)
            if vio is None and not kernel.check(succ, codes):
                successor = codec.decode(succ)
                for invariant in invariants:
                    violation = invariant(system, successor)
                    if violation is not None:
                        vio = (len(succs), violation)
                        break
            succs.append((eev, successor_key, perm))
        records.append(("exp", sid, applied, succs, err, vio))
    return records, canon_seconds, codec.decode_count - decode_base


# -- strategies ----------------------------------------------------------------


class SearchStrategy:
    """Interface: run the exploration described by a context to completion."""

    name = "base"

    def run(self, ctx):
        raise NotImplementedError


def _run_serial(ctx, *, lifo: bool):
    """Shared serial worklist search (FIFO = BFS, LIFO = DFS)."""
    if ctx.vkernel is not None and not lifo:
        return _run_vectorized(ctx)
    if ctx.kernel is not None:
        return _run_serial_compiled(ctx, lifo=lifo)
    return _run_serial_object(ctx, lifo=lifo)


def _run_serial_object(ctx, *, lifo: bool):
    """Object-backend serial search (the differential oracle's loop).

    The frontier holds decoded canonical state objects (expansion needs
    them); the visited set holds only packed encodings.  With symmetry off
    the raw successor *is* canonical, so no state is ever re-decoded; with
    symmetry on, only genuinely new representatives that changed under
    relabeling pay a decode.
    """
    system = ctx.system
    codec = ctx.codec
    store = ctx.store
    perms = ctx.perms
    identity = perms[0] if perms is not None else None
    canonicalize = (
        canonicalizer_for(codec, perms).canonicalize if perms is not None else None
    )
    raw_seen: set | None = set() if canonicalize is not None else None
    encode = codec.encode
    pack = codec.pack
    if ctx.resume is not None:
        # A "deque" checkpoint is the exact mid-level worklist: resuming
        # continues with the very next pop, bit-identically (IDs included).
        decode_packed = codec.decode_packed
        frontier: deque = deque(
            (sid, decode_packed(key)) for sid, key in ctx.resume["frontier"]
        )
    else:
        frontier = deque([ctx.root])
    pop = frontier.pop if lifo else frontier.popleft
    while frontier:
        if ctx.explored >= ctx.max_states:
            ctx.truncated = True
            if ctx.checkpoint_path is not None:
                checkpoint_mod.save(
                    ctx,
                    mode="deque",
                    frontier=[(s, pack(encode(st))) for s, st in frontier],
                    level=None,
                )
            break
        sid, state = pop()
        ctx.explored += 1
        events = system.enabled_events(state)
        if not events:
            # A state with no enabled events is fine if nothing is actually
            # outstanding (quiescent); otherwise it is a deadlock.  A
            # quiescent state that still holds workload budget can never
            # absorb it -- reported only under `deadlock=True`.
            if system.is_quiescent(state):
                if ctx.check_workload_deadlock and not system.is_complete(state):
                    return ctx.failure(deadlock=True, leaf_id=sid)
                ctx.complete_states += 1
                continue
            if ctx.check_deadlock:
                return ctx.failure(deadlock=True, leaf_id=sid)
            continue
        for event in events:
            ctx.transitions += 1
            outcome = system.apply(state, event)
            if outcome.error is not None:
                return ctx.failure(error=outcome.error, leaf_id=sid, final_event=event)
            successor = outcome.state
            enc = encode(successor)
            perm = None
            if canonicalize is not None:
                # A raw successor seen before canonicalized to an interned
                # representative then, so everything below would no-op (the
                # add + length check costs a single tuple hash).
                grown = len(raw_seen) + 1
                raw_seen.add(enc)
                if len(raw_seen) != grown:
                    continue
                if grown >= _RAW_SEEN_LIMIT:
                    raw_seen.clear()
                start = perf_counter()
                enc, perm = canonicalize(enc)
                ctx.canon_seconds += perf_counter() - start
            new_id, is_new = store.intern(pack(enc), sid, event, perm)
            if not is_new:
                continue
            if perm is not None and perm != identity:
                successor = codec.decode(enc)
            for invariant in ctx.invariants:
                violation = invariant(system, successor)
                if violation is not None:
                    return ctx.failure(violation=violation, leaf_id=new_id)
            frontier.append((new_id, successor))
    return ctx.success()


def _run_serial_compiled(ctx, *, lifo: bool):
    """Compiled-kernel serial search: the frontier and the visited set both
    hold encodings; nothing decodes until a failure is reported (asserted by
    the codec's ``decode_count`` instrumentation)."""
    system = ctx.system
    codec = ctx.codec
    store = ctx.store
    perms = ctx.perms
    kernel = ctx.kernel
    codes = ctx.kernel_codes
    canonicalize = (
        canonicalizer_for(codec, perms).canonicalize if perms is not None else None
    )
    raw_seen: set | None = set() if canonicalize is not None else None
    timer = perf_counter
    pack = codec.pack
    intern = store.intern
    enabled = kernel.enabled
    check = kernel.check
    if ctx.resume is not None:
        # Exact mid-level worklist: the resumed search is bit-identical to
        # an uninterrupted one (IDs, counts, verdict, trace).
        unpack = codec.unpack
        frontier: deque = deque(
            (sid, unpack(key)) for sid, key in ctx.resume["frontier"]
        )
    else:
        frontier = deque([(ctx.root[0], ctx.root_enc)])
    pop = frontier.pop if lifo else frontier.popleft
    while frontier:
        if ctx.explored >= ctx.max_states:
            ctx.truncated = True
            if ctx.checkpoint_path is not None:
                checkpoint_mod.save(
                    ctx,
                    mode="deque",
                    frontier=[(s, pack(e)) for s, e in frontier],
                    level=None,
                )
            break
        sid, enc = pop()
        ctx.explored += 1
        plans, net = enabled(enc)
        if not plans:
            if kernel.is_quiescent(enc):
                if ctx.check_workload_deadlock and kernel.workload_remaining(enc):
                    return ctx.failure(deadlock=True, leaf_id=sid)
                ctx.complete_states += 1
                continue
            if ctx.check_deadlock:
                return ctx.failure(deadlock=True, leaf_id=sid)
            continue
        for plan in plans:
            ctx.transitions += 1
            succ = plan[0](enc, plan, net)
            if succ is None:
                outcome = _slow_outcome(system, codec, enc, plan[1])
                if outcome.error is not None:
                    return ctx.failure(
                        error=outcome.error,
                        leaf_id=sid,
                        final_event=codec.decode_event(plan[1]),
                    )
                succ = codec.encode(outcome.state)
            perm = None
            if canonicalize is not None:
                # A raw successor seen before canonicalized to an interned
                # representative then, so everything below would no-op (the
                # add + length check costs a single tuple hash).
                grown = len(raw_seen) + 1
                raw_seen.add(succ)
                if len(raw_seen) != grown:
                    continue
                if grown >= _RAW_SEEN_LIMIT:
                    raw_seen.clear()
                start = timer()
                succ, perm = canonicalize(succ)
                ctx.canon_seconds += timer() - start
            new_id, is_new = intern(pack(succ), sid, plan[1], perm)
            if not is_new:
                continue
            if not check(succ, codes):
                successor = codec.decode(succ)
                for invariant in ctx.invariants:
                    violation = invariant(system, successor)
                    if violation is not None:
                        return ctx.failure(violation=violation, leaf_id=new_id)
            frontier.append((new_id, succ))
    return ctx.success()


def _vectorized_leaf(ctx, leaf, F, sids, vk):
    """Leaf handling for one zero-plan row of a vectorized level; mirrors
    the serial loops' quiescence/deadlock branch exactly."""
    _seq, state_id, pos = leaf
    kernel = ctx.kernel
    enc = tuple(F[pos].tolist()) + vk.section_tail(sids[pos])
    if kernel.is_quiescent(enc):
        if ctx.check_workload_deadlock and kernel.workload_remaining(enc):
            return ctx.failure(deadlock=True, leaf_id=state_id)
        ctx.complete_states += 1
        return None
    if ctx.check_deadlock:
        return ctx.failure(deadlock=True, leaf_id=state_id)
    return None


def _expand_level_serial(ctx, ids, prefixes, sids, raw_seen, canonicalize):
    """Replay one frontier level through the compiled per-state loop.

    The vectorized driver routes a whole level here whenever *any* of its
    rows needs the slow path (unexpected message, ambiguous guards, object
    errors): re-running the complete level with the exact
    :func:`_run_serial_compiled` body -- same row order, same per-plan
    order, sharing the raw-successor dedup set with the batch path --
    guarantees failures surface in the identical serial position.  Every
    transition applied here counts as a fallback transition (pinned to zero
    on the fault-free single-address hot path).  Returns ``(failure | None,
    next_ids, next_prefixes, next_sids)``.
    """
    system = ctx.system
    codec = ctx.codec
    store = ctx.store
    kernel = ctx.kernel
    codes = ctx.kernel_codes
    vk = ctx.vkernel
    timer = perf_counter
    pack = codec.pack
    intern = store.intern
    enabled = kernel.enabled
    check = kernel.check
    net_offset = vk.net_offset
    section_tail = vk.section_tail
    intern_section = vk.intern_section
    next_ids: list = []
    next_prefixes: list = []
    next_sids: list = []
    nxt = (None, next_ids, next_prefixes, next_sids)
    for sid, prefix, sec in zip(ids, prefixes, sids):
        enc = prefix + section_tail(sec)
        plans, net = enabled(enc)
        if not plans:
            if kernel.is_quiescent(enc):
                if ctx.check_workload_deadlock and kernel.workload_remaining(enc):
                    return (ctx.failure(deadlock=True, leaf_id=sid),) + nxt[1:]
                ctx.complete_states += 1
                continue
            if ctx.check_deadlock:
                return (ctx.failure(deadlock=True, leaf_id=sid),) + nxt[1:]
            continue
        for plan in plans:
            ctx.transitions += 1
            ctx.fallback_transitions += 1
            succ = plan[0](enc, plan, net)
            if succ is None:
                outcome = _slow_outcome(system, codec, enc, plan[1])
                if outcome.error is not None:
                    failure = ctx.failure(
                        error=outcome.error,
                        leaf_id=sid,
                        final_event=codec.decode_event(plan[1]),
                    )
                    return (failure,) + nxt[1:]
                succ = codec.encode(outcome.state)
            perm = None
            if canonicalize is not None:
                grown = len(raw_seen) + 1
                raw_seen.add(succ)
                if len(raw_seen) != grown:
                    continue
                if grown >= _RAW_SEEN_LIMIT:
                    raw_seen.clear()
                start = timer()
                succ, perm = canonicalize(succ)
                ctx.canon_seconds += timer() - start
            new_id, is_new = intern(pack(succ), sid, plan[1], perm)
            if not is_new:
                continue
            if not check(succ, codes):
                successor = codec.decode(succ)
                for invariant in ctx.invariants:
                    violation = invariant(system, successor)
                    if violation is not None:
                        failure = ctx.failure(violation=violation, leaf_id=new_id)
                        return (failure,) + nxt[1:]
            next_ids.append(new_id)
            next_prefixes.append(succ[:net_offset])
            next_sids.append(intern_section(succ[net_offset:]))
    return nxt


def _run_vectorized(ctx):
    """Frontier-batch BFS over the NumPy lane matrix (``kernel="vectorized"``).

    Each level: one memo-probing collection pass enumerates every row's
    plans (:meth:`VectorizedKernel.collect_level`), one gather/scatter/
    ``np.unique`` pass assembles and dedups the raw successor matrix
    (:meth:`~VectorizedKernel.assemble`), and one
    :meth:`~StateStore.intern_batch` call commits the level's distinct
    canonical successors.  Distinct raw successors are processed in
    first-occurrence stream order and leaves replay interleaved by their
    sequence numbers, so verdicts, traces and (on passing searches) all
    exploration counts are bit-identical to the serial strategies; on a
    *failing* search the level batching may intern/count up to one level
    beyond the serial stopping point (the verdict, the failing state ID and
    the trace still match exactly).  A level containing any row the batch
    path cannot express replays wholesale through
    :func:`_expand_level_serial`.
    """
    vk = ctx.vkernel
    system = ctx.system
    codec = ctx.codec
    store = ctx.store
    perms = ctx.perms
    kernel = ctx.kernel
    codes = ctx.kernel_codes
    canonicalizer = canonicalizer_for(codec, perms) if perms is not None else None
    canonicalize = canonicalizer.canonicalize if canonicalizer is not None else None
    # Batch canonicalization (one orbit classification per distinct cache-
    # block region per level instead of one canonicalize call per state)
    # relies on the sorted-signature argument, i.e. the full symmetric
    # group -- exactly the condition EncodedCanonicalizer.canonicalize
    # itself requires before consulting the orbit memo.
    batch_canon = (
        canonicalizer is not None
        and len(perms) > 1
        and canonicalizer._full_group
    )
    raw_seen: set | None = set() if canonicalize is not None else None
    timer = perf_counter
    pack = codec.pack
    check = kernel.check
    np = vk.np
    net_offset = vk.net_offset
    intern_section = vk.intern_section
    sinfo = vk._section_info  # (tail, fake_enc, net, deliveries, packed_tail)
    ctx.kernel_name = "vectorized"
    if ctx.resume is not None:
        # A "level" checkpoint holds a whole unexpanded frontier level;
        # rebuild the lane matrix and section IDs from the packed keys.
        unpack = codec.unpack
        ids = []
        prefixes = []
        sids = []
        for sid, key in ctx.resume["frontier"]:
            enc = unpack(key)
            ids.append(sid)
            prefixes.append(enc[:net_offset])
            sids.append(intern_section(enc[net_offset:]))
        F = np.asarray(prefixes, dtype=vk.dtype)
        depth = ctx.resume_level
    else:
        root_enc = ctx.root_enc
        ids = [ctx.root[0]]
        F = np.asarray([root_enc[:net_offset]], dtype=vk.dtype)
        sids = [intern_section(root_enc[net_offset:])]
        depth = 0
    while ids:
        remaining = ctx.max_states - ctx.explored
        over_budget = remaining <= 0
        if not over_budget and len(ids) > remaining:
            if ctx.checkpoint_path is not None:
                # Stop at the level boundary (save the level unclipped) so
                # the resumed search explores the identical level sequence
                # and ends with an uninterrupted run's exact counters.
                over_budget = True
            else:
                ctx.truncated = True
                ids = ids[:remaining]
                F = F[:remaining]
                sids = sids[:remaining]
        if over_budget:
            ctx.truncated = True
            if ctx.checkpoint_path is not None:
                checkpoint_mod.save(
                    ctx,
                    mode="level",
                    frontier=[
                        (sid, pack(tuple(row) + sinfo[sec][0]))
                        for sid, row, sec in zip(ids, F.tolist(), sids)
                    ],
                    level=depth,
                )
            break
        level = vk.collect_level(ids, F, sids)
        ctx.explored += len(ids)
        depth += 1
        if level.fallbacks:
            prefixes = [tuple(row) for row in F.tolist()]
            failure, ids, next_prefixes, sids = _expand_level_serial(
                ctx, ids, prefixes, sids, raw_seen, canonicalize
            )
            if failure is not None:
                return failure
            F = np.asarray(next_prefixes, dtype=vk.dtype)
            continue
        ctx.transitions += level.transitions
        ctx.vectorized_transitions += level.transitions
        ctx.expansion_batches += 1
        ctx.batch_rows += len(ids)
        M, order = vk.assemble(F, level)
        # Phase 1 -- distinct raw successors in stream order: cross-level
        # raw dedup (keyed on the widened row bytes -- prefix lanes plus the
        # global section-ID lanes -- sliced in bulk from the matrix),
        # canonicalize, pack (no failure can occur here).  A raw successor
        # whose canonical form is itself (``canonicalize`` returns the input
        # tuple) builds its intern key from its prefix bytes plus the
        # section's packed tail -- byte-identical to ``codec.pack`` --
        # skipping the per-state repack entirely.
        eevs = level.eevs
        out_sids = level.sids
        parent_pos = level.parent_pos
        V = M[order]
        vbytes = V.tobytes()
        rowsize = V.shape[1] * V.dtype.itemsize
        prefix_bytes = net_offset * V.dtype.itemsize
        rows_list = V.tolist()
        order_list = order.tolist()
        # Default-invariant verdicts for the whole level as one lane-mask
        # reduction over the successor matrix (None for non-default codes:
        # phase 3 then falls back to the per-state fused check).  The mask is
        # computed on the *raw* rows, which is sound because the default
        # invariants are cache-permutation-symmetric (see check_level).
        level_ok = vk.check_level(V, codes)
        ok_list = level_ok.tolist() if level_ok is not None else None
        entries: list = []
        entry_encs: list = []  # canonical tuple, or None = raw (build lazily)
        entry_us: list = []
        entry_rows: list = []
        entry_rsids: list = []  # canonical section ID, or -1 = intern later
        if batch_canon:
            # Orbit classification in bulk: one np.unique over the region
            # columns, one orbit_for per distinct never-seen region.
            d0 = vk.dir_offset
            region_bytes = d0 * V.dtype.itemsize
            R = np.ascontiguousarray(V[:, :d0])
            rb = R.view(np.dtype((np.void, region_bytes))).ravel()
            runiq, rfirst, rinv = np.unique(
                rb, return_index=True, return_inverse=True
            )
            region_orbits = vk._region_orbits
            recs = []
            for vb, fi in zip(runiq, rfirst.tolist()):
                rkey = vb.tobytes()
                rec = region_orbits.get(rkey)
                if rec is None:
                    rec = region_orbits[rkey] = canonicalizer.orbit_for(
                        tuple(rows_list[fi][:d0])
                    )
                recs.append(rec)
            rinv_list = rinv.tolist()
            identity = canonicalizer.identity
            for j, u in enumerate(order_list):
                grown = len(raw_seen) + 1
                raw_seen.add(vbytes[j * rowsize : (j + 1) * rowsize])
                if len(raw_seen) != grown:
                    continue
                if grown >= _RAW_SEEN_LIMIT:
                    raw_seen.clear()
                sid2 = out_sids[u]
                orbit = recs[rinv_list[j]]
                if orbit is SAVED_ORBIT:
                    # Saved-requestor IDs: permutation-dependent signatures,
                    # per-state encoded brute force (exactly what the serial
                    # canonicalize would do for this state).
                    enc = tuple(rows_list[j][:net_offset]) + sinfo[sid2][0]
                    start = timer()
                    cenc, perm = canonicalize(enc)
                    ctx.canon_seconds += timer() - start
                    if cenc is enc:
                        key = (
                            vbytes[j * rowsize : j * rowsize + prefix_bytes]
                            + sinfo[sid2][4]
                        )
                        rsid = sid2
                    else:
                        enc = cenc
                        key = pack(enc)
                        rsid = -1
                    entry_encs.append(enc)
                else:
                    best, extra = orbit
                    if best is None:
                        # Equal-signature ties: per-state tie-break over the
                        # orbit candidates, then one table relabel.
                        enc = tuple(rows_list[j][:net_offset]) + sinfo[sid2][0]
                        start = timer()
                        best = _tie_break_encoded(enc, codec, extra)
                        if best == identity:
                            key = (
                                vbytes[j * rowsize : j * rowsize + prefix_bytes]
                                + sinfo[sid2][4]
                            )
                            rsid = sid2
                        else:
                            enc = codec.relabel_via_tables(enc, best, saved=False)
                            key = pack(enc)
                            rsid = -1
                        ctx.canon_seconds += timer() - start
                        perm = best
                        entry_encs.append(enc)
                    elif extra is None:
                        # Identity winner: the raw successor is canonical;
                        # its bytes are already the intern key and the
                        # tuple is only built (in phase 3) if it is new.
                        perm = best
                        key = (
                            vbytes[j * rowsize : j * rowsize + prefix_bytes]
                            + sinfo[sid2][4]
                        )
                        rsid = sid2
                        entry_encs.append(None)
                    else:
                        # Unique non-identity winner: canonical encoding
                        # assembles from the orbit-cached relabeled prefix
                        # and the codec's memoized relabeled suffix.
                        start = timer()
                        enc = tuple(rows_list[j][:net_offset]) + sinfo[sid2][0]
                        t2 = codec.perm_tables(best)[2]
                        enc = tuple(extra + codec._relabeled_suffix(enc, best, t2))
                        ctx.canon_seconds += timer() - start
                        perm = best
                        key = pack(enc)
                        rsid = -1
                        entry_encs.append(enc)
                entries.append((key, ids[parent_pos[u]], eevs[u], perm))
                entry_us.append(u)
                entry_rows.append(j)
                entry_rsids.append(rsid)
        else:
            for j, u in enumerate(order_list):
                perm = None
                if canonicalize is not None:
                    grown = len(raw_seen) + 1
                    raw_seen.add(vbytes[j * rowsize : (j + 1) * rowsize])
                    if len(raw_seen) != grown:
                        continue
                    if grown >= _RAW_SEEN_LIMIT:
                        raw_seen.clear()
                    sid2 = out_sids[u]
                    enc = tuple(rows_list[j][:net_offset]) + sinfo[sid2][0]
                    start = timer()
                    cenc, perm = canonicalize(enc)
                    ctx.canon_seconds += timer() - start
                    if cenc is enc:
                        key = (
                            vbytes[j * rowsize : j * rowsize + prefix_bytes]
                            + sinfo[sid2][4]
                        )
                        rsid = sid2
                    else:
                        enc = cenc
                        key = pack(enc)
                        rsid = -1
                    entry_encs.append(enc)
                else:
                    sid2 = out_sids[u]
                    key = (
                        vbytes[j * rowsize : j * rowsize + prefix_bytes]
                        + sinfo[sid2][4]
                    )
                    entry_encs.append(None)
                    rsid = sid2
                entries.append((key, ids[parent_pos[u]], eevs[u], perm))
                entry_us.append(u)
                entry_rows.append(j)
                entry_rsids.append(rsid)
        # Phase 2 -- one batch intern for the whole level.
        new_ids = store.intern_batch(entries)
        # Phase 3 -- replay leaves and new states interleaved in stream
        # order (leaf ``(k, ...)`` precedes successor ``u`` iff ``k <= u``),
        # preserving the exact serial failure order.
        next_ids: list = []
        next_prefixes: list = []
        next_sids: list = []
        leaves = level.leaves
        n_leaves = len(leaves)
        li = 0
        for j, new_id in enumerate(new_ids):
            u = entry_us[j]
            while li < n_leaves and leaves[li][0] <= u:
                failure = _vectorized_leaf(ctx, leaves[li], F, sids, vk)
                if failure is not None:
                    return failure
                li += 1
            if new_id < 0:
                continue
            row_ok = ok_list[entry_rows[j]] if ok_list is not None else None
            enc = entry_encs[j]
            if enc is None and row_ok:
                # Passing identity row: the mask already cleared it, the
                # prefix lanes come straight off the matrix and its section
                # is interned -- the encoded tuple is never built at all.
                next_ids.append(new_id)
                next_prefixes.append(
                    tuple(rows_list[entry_rows[j]][:net_offset])
                )
                next_sids.append(entry_rsids[j])
                continue
            if enc is None:  # the raw successor is canonical: build it now
                enc = (
                    tuple(rows_list[entry_rows[j]][:net_offset])
                    + sinfo[out_sids[u]][0]
                )
            if (not row_ok) if row_ok is not None else (not check(enc, codes)):
                successor = codec.decode(enc)
                for invariant in ctx.invariants:
                    violation = invariant(system, successor)
                    if violation is not None:
                        return ctx.failure(violation=violation, leaf_id=new_id)
            rsid = entry_rsids[j]
            if rsid < 0:  # relabeled tail: intern its section once
                rsid = intern_section(enc[net_offset:])
            next_ids.append(new_id)
            next_prefixes.append(enc[:net_offset])
            next_sids.append(rsid)
        while li < n_leaves:
            failure = _vectorized_leaf(ctx, leaves[li], F, sids, vk)
            if failure is not None:
                return failure
            li += 1
        ids, sids = next_ids, next_sids
        F = np.asarray(next_prefixes, dtype=vk.dtype)
    return ctx.success()


class BreadthFirst(SearchStrategy):
    name = "bfs"

    def run(self, ctx):
        return _run_serial(ctx, lifo=False)


class DepthFirst(SearchStrategy):
    name = "dfs"

    def run(self, ctx):
        return _run_serial(ctx, lifo=True)


#: Frontier width above which the parallel strategy spins up its worker
#: pool.  The pool + first-level IPC costs a fixed ~0.2 s; at the measured
#: ~28 k serial reduced states/s that buys ~5-6 k states of serial work, so
#: levels narrower than a couple thousand states never amortize it.  Small
#: searches (every level below the threshold) therefore run entirely
#: in-process and pay nothing; the pool forks lazily on the first level
#: wide enough to feed it.
POOL_SPINUP_FRONTIER = 2048


class ParallelBreadthFirst(SearchStrategy):
    """Level-synchronous BFS over the shared-memory worker engine.

    The worker fleet spins up **lazily**: levels are expanded in-process
    (through the same record-based code path, forked-state free) until one
    exceeds :data:`POOL_SPINUP_FRONTIER`, so searches too small to amortize
    the fixed fork + IPC startup never pay it.  Once a level is wide enough
    the engine (:class:`~repro.verification.engine.parallel.ShmEngine`)
    forks persistent workers seeded with the visited set, the parent drops
    its key index entirely, and all further levels run through zero-copy
    shared-memory frontier exchange with work-stealing chunk claims and
    digest-sharded dedup -- see :mod:`repro.verification.engine.parallel`.
    """

    name = "parallel"

    def __init__(self, processes: int | None = None):
        self.processes = processes

    def run(self, ctx):
        global _WORKER
        try:
            mp = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - platform without fork
            return self._fallback(ctx)
        processes = self.processes or max(2, min(8, os.cpu_count() or 2))
        if processes <= 1:
            return self._fallback(ctx)

        resume = ctx.resume
        if resume is not None and resume["mode"] == "sharded":
            # Past-spin-up checkpoint: the store snapshot has no keys; the
            # visited set rides in the shard digest dumps, re-sharded here
            # under whatever worker count this run uses.
            engine = ShmEngine(ctx, mp, processes)
            engine.spinup(seed_blobs=resume["shards"])
            try:
                return engine.drive(
                    [tuple(pair) for pair in resume["frontier"]],
                    resume["level"],
                )
            finally:
                engine.shutdown()
        if resume is not None:
            frontier = [tuple(pair) for pair in resume["frontier"]]
            depth = resume["level"]
        else:
            root_id, _ = ctx.root
            frontier = [(root_id, ctx.root_key)]
            depth = 0
        initargs = (ctx.system, ctx.invariants, ctx.perms, ctx.kernel_codes)
        try:
            # In-process phase: install the worker context in this process
            # and expand narrow levels directly (identical records, no IPC).
            _init_worker(*initargs)
            while frontier:
                remaining = ctx.max_states - ctx.explored
                over_budget = remaining <= 0
                if not over_budget and len(frontier) > remaining:
                    if ctx.checkpoint_path is not None:
                        # Stop at the level boundary (unclipped) so a
                        # resumed run matches an uninterrupted one exactly.
                        over_budget = True
                    else:
                        ctx.truncated = True
                        frontier = frontier[:remaining]
                if over_budget:
                    ctx.truncated = True
                    if ctx.checkpoint_path is not None:
                        checkpoint_mod.save(
                            ctx, mode="level", frontier=frontier, level=depth
                        )
                    break
                if len(frontier) > POOL_SPINUP_FRONTIER:
                    engine = ShmEngine(ctx, mp, processes)
                    # Seed worker shards with everything interned so far
                    # (post-_key keys: under hash compaction these already
                    # ARE the 128-bit digests), then drop the parent's key
                    # index -- from here on membership lives on the workers
                    # and the parent only appends trace links.
                    engine.spinup(seed_keys=list(ctx.store.iter_keys()))
                    ctx.store.drop_index()
                    try:
                        return engine.drive(frontier, depth)
                    finally:
                        engine.shutdown()
                ctx.explored += len(frontier)
                records, canon_seconds, _decodes = _expand_batch(frontier)
                ctx.canon_seconds += canon_seconds
                # In-process expansion shares ctx.codec, whose decode
                # counter the stats already read; nothing to sum here.
                next_frontier = []
                for record in records:
                    failure = self._absorb(ctx, record, next_frontier)
                    if failure is not None:
                        return failure
                frontier = next_frontier
                depth += 1
        finally:
            _WORKER = None
        return ctx.success()

    @staticmethod
    def _fallback(ctx):
        """Serial BFS stand-in; relabel the result so it is not attributed
        to the parallel strategy."""
        ctx.strategy_name = BreadthFirst.name
        return _run_serial(ctx, lifo=False)

    @staticmethod
    def _absorb(ctx, record, next_frontier):
        """Merge one worker record into the store; return a failure result or None.

        Workers already canonicalize, pack and de-duplicate successors at
        the source, so on the overwhelmingly common no-failure path the
        parent's only remaining work is the batch intern
        (:meth:`~repro.verification.engine.store.StateStore.intern_children`)
        -- violations ride out-of-band in the record and fall back to the
        per-successor loop only when one actually occurred.
        """
        if record[0] == "leaf":
            _, sid, quiescent, stuck = record
            if quiescent:
                if ctx.check_workload_deadlock and stuck:
                    return ctx.failure(deadlock=True, leaf_id=sid)
                ctx.complete_states += 1
                return None
            if ctx.check_deadlock:
                return ctx.failure(deadlock=True, leaf_id=sid)
            return None
        _, sid, applied, succs, err, vio = record
        ctx.transitions += applied
        if vio is not None:
            # The worker checks invariants before cross-worker dedup; a hit
            # on an already-known state is still a valid counterexample (the
            # stored chain reaches the same canonical state).  Successors
            # past the violating one are dropped, exactly as the pre-batch
            # absorb loop did.
            index, violation = vio
            next_frontier.extend(ctx.store.intern_children(sid, succs[:index]))
            encoded_event, successor_key, perm = succs[index]
            leaf_id, _ = ctx.store.intern(
                successor_key, parent=sid, event=encoded_event, perm=perm
            )
            return ctx.failure(violation=violation, leaf_id=leaf_id)
        # Events are stored in their encoded form; counterexample traces
        # decode them lazily (Exploration.trace_events), on failure only.
        next_frontier.extend(ctx.store.intern_children(sid, succs))
        if err is not None:
            encoded_event, message = err
            return ctx.failure(
                error=message,
                leaf_id=sid,
                final_event=ctx.codec.decode_event(encoded_event),
            )
        return None


def resolve_strategy(spec, *, processes: int | None = None) -> SearchStrategy:
    """Map a strategy name (or pass through an instance) to a strategy."""
    if isinstance(spec, SearchStrategy):
        return spec
    name = str(spec).lower()
    if name in ("bfs", "breadth-first"):
        return BreadthFirst()
    if name in ("dfs", "depth-first"):
        return DepthFirst()
    if name in ("parallel", "parallel-bfs"):
        return ParallelBreadthFirst(processes=processes)
    raise ValueError(
        f"unknown search strategy {spec!r} (expected 'bfs', 'dfs' or 'parallel')"
    )
