"""Pluggable search strategies over the shared exploration context.

Three strategies are provided:

* :class:`BreadthFirst` -- the default; identical exploration order (and,
  with symmetry off, identical state counts) to the seed explorer, and the
  shortest counterexamples.
* :class:`DepthFirst` -- LIFO frontier; explores the same state set and
  reports the same verdicts, typically finding *some* counterexample sooner
  at the cost of longer traces.
* :class:`ParallelBreadthFirst` -- level-synchronous BFS over a
  **persistent worker pool**.  Workers are forked once per search and hold
  the system, the invariants and the state codec for its whole duration;
  each level the parent ships shards of *packed state encodings* (bytes) and
  receives records whose successors and events are encoded too -- no pickled
  object graphs ever cross the process boundary.  Workers keep a persistent
  per-shard seen-set, so a canonical state rediscovered in any later level
  is suppressed at the source instead of being re-shipped; successors
  arrive canonicalized, packed and pre-deduped, so the parent's absorb
  loop is one batch intern per expanded state
  (:meth:`~repro.verification.engine.store.StateStore.intern_children`,
  violations out-of-band), which keeps counterexample traces working
  exactly as in the serial strategies.  Falls back to serial BFS when ``fork`` is unavailable
  or fewer than two workers are requested.  Around the ``max_states`` bound
  the explored-state count may differ from the serial strategies by up to
  one frontier level (the bound is enforced per level, not per state).

Every strategy runs on one of two **transition backends**, chosen by
``verify(..., kernel=...)`` and carried on the exploration context:

* the **compiled kernel** (default; :mod:`repro.system.kernel`) expands
  encoded states end-to-end -- enabled events, successors, quiescence and
  invariant verdicts all computed on flat int tuples, with the frontier
  carrying encodings and the store interning packed bytes.  States and
  events decode lazily, only to report a failure (the object executor then
  reproduces the exact error/violation text as the differential oracle);
* the **object backend** interprets ``System.apply`` over dataclass trees
  (the pre-compilation behaviour), used for ``System`` subclasses and
  custom invariants.

Both backends visit the same states in the same order and report
identically-shaped results.
"""

from __future__ import annotations

import gc
import multiprocessing
import os
from collections import deque
from time import perf_counter

from repro.verification.engine.canonical import canonicalizer_for

#: Bound on the raw-successor dedup sets of the symmetry-reduced searches: a
#: raw successor reached twice maps to the same canonical representative, so
#: its second occurrence can skip canonicalize/pack/intern entirely (~38 % of
#: transitions on the reference MSI workload).  The set is an optimization
#: only -- clearing it when full merely re-pays the canonicalization, so the
#: bound caps memory without affecting any count or verdict.
_RAW_SEEN_LIMIT = 1 << 19

# -- worker-process state (populated via fork + Pool initializer) --------------

_WORKER: tuple | None = None


def _init_worker(system, invariants, perms, kernel_codes) -> None:
    """Install the per-process search context (runs once per worker).

    The codec (and compiled kernel, when *kernel_codes* is not ``None``) is
    (re)built here rather than inherited so each worker owns private memo
    tables; with the ``fork`` start method the system and invariants arrive
    by address-space inheritance, never by pickling.
    """
    global _WORKER
    # Workers inherit the parent's paused GC via fork only on the first
    # level; disabling here keeps collection off for the pool's lifetime
    # (the expansion hot path allocates cycle-free data exclusively).
    gc.disable()
    kernel = system.kernel() if kernel_codes is not None else None
    _WORKER = (
        system,
        invariants,
        perms,
        system.codec(),
        set(),  # canonical packed keys this worker has emitted
        kernel,
        kernel_codes,
        set(),  # raw successor encodings (pre-canonicalization dedup)
    )


def _leaf_record(sid, quiescent, stuck):
    return ("leaf", sid, quiescent, stuck)


def _expand_batch(batch):
    """Expand a batch of ``(state_id, packed_encoding)`` pairs in a worker.

    Returns ``(records, canon_seconds, decode_count)`` — the records (one
    per state, in input order), the wall-clock this batch spent inside
    canonicalization, and the number of ``GlobalState`` decodes it performed
    (both feed ``VerificationResult.stats``).  Records are:

    * ``("leaf", sid, quiescent, stuck)`` -- no enabled events; ``stuck``
      flags a quiescent state that still holds unissued workload budget
      (the ``deadlock=True`` report);
    * ``("exp", sid, applied, succs, err, vio)`` -- ``succs`` is a list of
      pre-interned-at-the-source ``(encoded_event, packed_successor, perm)``
      triples ready for the parent's batch intern, ``err`` is ``None`` or
      ``(encoded_event, error_message)`` for an event whose application
      failed (expansion of that state stops there, as in the serial
      search), and ``vio`` is ``None`` or ``(index, violation)`` naming the
      first successor in ``succs`` that violates an invariant.

    De-duplication is persistent per worker: the seen-set carries over
    between levels, so a canonical state this worker has emitted in *any*
    earlier batch crosses the process boundary exactly once.  The parent's
    intern loop would have discarded the duplicates anyway (``is_new=False``);
    suppressing them at the source amortizes the IPC.  ``applied`` still
    counts every applied event, so transition counts match the serial
    strategies.
    """
    if _WORKER[5] is not None:
        return _expand_batch_compiled(batch)
    system, invariants, perms, codec, seen, _, _, raw_seen = _WORKER
    identity = perms[0] if perms is not None else None
    canonicalize = (
        canonicalizer_for(codec, perms).canonicalize if perms is not None else None
    )
    decode_base = codec.decode_count
    canon_seconds = 0.0
    decode_packed = codec.decode_packed
    encode = codec.encode
    pack = codec.pack
    encode_event = codec.encode_event
    records = []
    for sid, key in batch:
        state = decode_packed(key)
        events = system.enabled_events(state)
        if not events:
            quiescent = system.is_quiescent(state)
            stuck = quiescent and not system.is_complete(state)
            records.append(_leaf_record(sid, quiescent, stuck))
            continue
        succs = []
        err = None
        vio = None
        applied = 0
        for event in events:
            applied += 1
            outcome = system.apply(state, event)
            if outcome.error is not None:
                err = (encode_event(event), outcome.error)
                break
            enc = encode(outcome.state)
            perm = None
            if canonicalize is not None:
                # set.add + length check = one hash: a no-growth add means
                # this raw successor was canonicalized (and emitted or
                # suppressed) before.
                grown = len(raw_seen) + 1
                raw_seen.add(enc)
                if len(raw_seen) != grown:
                    continue
                if grown >= _RAW_SEEN_LIMIT:
                    raw_seen.clear()
                start = perf_counter()
                enc, perm = canonicalize(enc)
                canon_seconds += perf_counter() - start
            successor_key = pack(enc)
            if successor_key in seen:
                # Invariants are functions of the state alone, so the first
                # emission already carried this state's verdict.
                continue
            seen.add(successor_key)
            if vio is None:
                successor = (
                    outcome.state
                    if perm is None or perm == identity
                    else codec.decode(enc)
                )
                for invariant in invariants:
                    violation = invariant(system, successor)
                    if violation is not None:
                        vio = (len(succs), violation)
                        break
            succs.append((encode_event(event), successor_key, perm))
        records.append(("exp", sid, applied, succs, err, vio))
    return records, canon_seconds, codec.decode_count - decode_base


def _slow_outcome(system, codec, enc, eev):
    """The object-executor outcome for one event the kernel flagged.

    The compiled kernel returns ``None`` instead of reproducing error
    behaviour; replaying the single event through ``System.apply`` yields
    the exact seed-identical error outcome (or, for benign corner cases, the
    successor state) -- the object executor is the oracle.
    """
    return system.apply(codec.decode(enc), codec.decode_event(eev))


def _expand_batch_compiled(batch):
    """Compiled-kernel twin of :func:`_expand_batch`: states stay encoded."""
    system, invariants, perms, codec, seen, kernel, codes, raw_seen = _WORKER
    canonicalize = (
        canonicalizer_for(codec, perms).canonicalize if perms is not None else None
    )
    decode_base = codec.decode_count
    canon_seconds = 0.0
    unpack = codec.unpack
    pack = codec.pack
    records = []
    for sid, key in batch:
        enc = unpack(key)
        plans, net = kernel.enabled(enc)
        if not plans:
            quiescent = kernel.is_quiescent(enc)
            stuck = quiescent and kernel.workload_remaining(enc)
            records.append(_leaf_record(sid, quiescent, stuck))
            continue
        succs = []
        err = None
        vio = None
        applied = 0
        for plan in plans:
            applied += 1
            eev = plan[1]
            succ = plan[0](enc, plan, net)
            if succ is None:
                outcome = _slow_outcome(system, codec, enc, eev)
                if outcome.error is not None:
                    err = (eev, outcome.error)
                    break
                succ = codec.encode(outcome.state)
            perm = None
            if canonicalize is not None:
                grown = len(raw_seen) + 1
                raw_seen.add(succ)
                if len(raw_seen) != grown:
                    # Canonicalized (and emitted or suppressed) before.
                    continue
                if grown >= _RAW_SEEN_LIMIT:
                    raw_seen.clear()
                start = perf_counter()
                succ, perm = canonicalize(succ)
                canon_seconds += perf_counter() - start
            successor_key = pack(succ)
            if successor_key in seen:
                continue
            seen.add(successor_key)
            if vio is None and not kernel.check(succ, codes):
                successor = codec.decode(succ)
                for invariant in invariants:
                    violation = invariant(system, successor)
                    if violation is not None:
                        vio = (len(succs), violation)
                        break
            succs.append((eev, successor_key, perm))
        records.append(("exp", sid, applied, succs, err, vio))
    return records, canon_seconds, codec.decode_count - decode_base


# -- strategies ----------------------------------------------------------------


class SearchStrategy:
    """Interface: run the exploration described by a context to completion."""

    name = "base"

    def run(self, ctx):
        raise NotImplementedError


def _run_serial(ctx, *, lifo: bool):
    """Shared serial worklist search (FIFO = BFS, LIFO = DFS)."""
    if ctx.kernel is not None:
        return _run_serial_compiled(ctx, lifo=lifo)
    return _run_serial_object(ctx, lifo=lifo)


def _run_serial_object(ctx, *, lifo: bool):
    """Object-backend serial search (the differential oracle's loop).

    The frontier holds decoded canonical state objects (expansion needs
    them); the visited set holds only packed encodings.  With symmetry off
    the raw successor *is* canonical, so no state is ever re-decoded; with
    symmetry on, only genuinely new representatives that changed under
    relabeling pay a decode.
    """
    system = ctx.system
    codec = ctx.codec
    store = ctx.store
    perms = ctx.perms
    identity = perms[0] if perms is not None else None
    canonicalize = (
        canonicalizer_for(codec, perms).canonicalize if perms is not None else None
    )
    raw_seen: set | None = set() if canonicalize is not None else None
    encode = codec.encode
    pack = codec.pack
    frontier: deque = deque([ctx.root])
    pop = frontier.pop if lifo else frontier.popleft
    while frontier:
        sid, state = pop()
        if ctx.explored >= ctx.max_states:
            ctx.truncated = True
            break
        ctx.explored += 1
        events = system.enabled_events(state)
        if not events:
            # A state with no enabled events is fine if nothing is actually
            # outstanding (quiescent); otherwise it is a deadlock.  A
            # quiescent state that still holds workload budget can never
            # absorb it -- reported only under `deadlock=True`.
            if system.is_quiescent(state):
                if ctx.check_workload_deadlock and not system.is_complete(state):
                    return ctx.failure(deadlock=True, leaf_id=sid)
                ctx.complete_states += 1
                continue
            if ctx.check_deadlock:
                return ctx.failure(deadlock=True, leaf_id=sid)
            continue
        for event in events:
            ctx.transitions += 1
            outcome = system.apply(state, event)
            if outcome.error is not None:
                return ctx.failure(error=outcome.error, leaf_id=sid, final_event=event)
            successor = outcome.state
            enc = encode(successor)
            perm = None
            if canonicalize is not None:
                # A raw successor seen before canonicalized to an interned
                # representative then, so everything below would no-op (the
                # add + length check costs a single tuple hash).
                grown = len(raw_seen) + 1
                raw_seen.add(enc)
                if len(raw_seen) != grown:
                    continue
                if grown >= _RAW_SEEN_LIMIT:
                    raw_seen.clear()
                start = perf_counter()
                enc, perm = canonicalize(enc)
                ctx.canon_seconds += perf_counter() - start
            new_id, is_new = store.intern(pack(enc), sid, event, perm)
            if not is_new:
                continue
            if perm is not None and perm != identity:
                successor = codec.decode(enc)
            for invariant in ctx.invariants:
                violation = invariant(system, successor)
                if violation is not None:
                    return ctx.failure(violation=violation, leaf_id=new_id)
            frontier.append((new_id, successor))
    return ctx.success()


def _run_serial_compiled(ctx, *, lifo: bool):
    """Compiled-kernel serial search: the frontier and the visited set both
    hold encodings; nothing decodes until a failure is reported (asserted by
    the codec's ``decode_count`` instrumentation)."""
    system = ctx.system
    codec = ctx.codec
    store = ctx.store
    perms = ctx.perms
    kernel = ctx.kernel
    codes = ctx.kernel_codes
    canonicalize = (
        canonicalizer_for(codec, perms).canonicalize if perms is not None else None
    )
    raw_seen: set | None = set() if canonicalize is not None else None
    timer = perf_counter
    pack = codec.pack
    intern = store.intern
    enabled = kernel.enabled
    check = kernel.check
    frontier: deque = deque([(ctx.root[0], ctx.root_enc)])
    pop = frontier.pop if lifo else frontier.popleft
    while frontier:
        sid, enc = pop()
        if ctx.explored >= ctx.max_states:
            ctx.truncated = True
            break
        ctx.explored += 1
        plans, net = enabled(enc)
        if not plans:
            if kernel.is_quiescent(enc):
                if ctx.check_workload_deadlock and kernel.workload_remaining(enc):
                    return ctx.failure(deadlock=True, leaf_id=sid)
                ctx.complete_states += 1
                continue
            if ctx.check_deadlock:
                return ctx.failure(deadlock=True, leaf_id=sid)
            continue
        for plan in plans:
            ctx.transitions += 1
            succ = plan[0](enc, plan, net)
            if succ is None:
                outcome = _slow_outcome(system, codec, enc, plan[1])
                if outcome.error is not None:
                    return ctx.failure(
                        error=outcome.error,
                        leaf_id=sid,
                        final_event=codec.decode_event(plan[1]),
                    )
                succ = codec.encode(outcome.state)
            perm = None
            if canonicalize is not None:
                # A raw successor seen before canonicalized to an interned
                # representative then, so everything below would no-op (the
                # add + length check costs a single tuple hash).
                grown = len(raw_seen) + 1
                raw_seen.add(succ)
                if len(raw_seen) != grown:
                    continue
                if grown >= _RAW_SEEN_LIMIT:
                    raw_seen.clear()
                start = timer()
                succ, perm = canonicalize(succ)
                ctx.canon_seconds += timer() - start
            new_id, is_new = intern(pack(succ), sid, plan[1], perm)
            if not is_new:
                continue
            if not check(succ, codes):
                successor = codec.decode(succ)
                for invariant in ctx.invariants:
                    violation = invariant(system, successor)
                    if violation is not None:
                        return ctx.failure(violation=violation, leaf_id=new_id)
            frontier.append((new_id, succ))
    return ctx.success()


class BreadthFirst(SearchStrategy):
    name = "bfs"

    def run(self, ctx):
        return _run_serial(ctx, lifo=False)


class DepthFirst(SearchStrategy):
    name = "dfs"

    def run(self, ctx):
        return _run_serial(ctx, lifo=True)


class ParallelBreadthFirst(SearchStrategy):
    """Level-synchronous BFS over a work-sharded encoded frontier."""

    name = "parallel"

    def __init__(self, processes: int | None = None):
        self.processes = processes

    def run(self, ctx):
        try:
            mp = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - platform without fork
            return self._fallback(ctx)
        processes = self.processes or max(2, min(8, os.cpu_count() or 2))
        if processes <= 1:
            return self._fallback(ctx)

        root_id, _ = ctx.root
        frontier = [(root_id, ctx.root_key)]
        ctx.parallel_workers = processes
        with mp.Pool(
            processes,
            initializer=_init_worker,
            initargs=(ctx.system, ctx.invariants, ctx.perms, ctx.kernel_codes),
        ) as pool:
            while frontier:
                remaining = ctx.max_states - ctx.explored
                if remaining <= 0:
                    ctx.truncated = True
                    break
                if len(frontier) > remaining:
                    ctx.truncated = True
                    frontier = frontier[:remaining]
                chunk = max(1, -(-len(frontier) // (processes * 4)))
                batches = [
                    frontier[i : i + chunk] for i in range(0, len(frontier), chunk)
                ]
                ctx.explored += len(frontier)
                next_frontier = []
                for records, canon_seconds, decodes in pool.map(
                    _expand_batch, batches
                ):
                    ctx.canon_seconds += canon_seconds
                    ctx.worker_decodes += decodes
                    for record in records:
                        failure = self._absorb(ctx, record, next_frontier)
                        if failure is not None:
                            return failure
                frontier = next_frontier
        return ctx.success()

    @staticmethod
    def _fallback(ctx):
        """Serial BFS stand-in; relabel the result so it is not attributed
        to the parallel strategy."""
        ctx.strategy_name = BreadthFirst.name
        return _run_serial(ctx, lifo=False)

    @staticmethod
    def _absorb(ctx, record, next_frontier):
        """Merge one worker record into the store; return a failure result or None.

        Workers already canonicalize, pack and de-duplicate successors at
        the source, so on the overwhelmingly common no-failure path the
        parent's only remaining work is the batch intern
        (:meth:`~repro.verification.engine.store.StateStore.intern_children`)
        -- violations ride out-of-band in the record and fall back to the
        per-successor loop only when one actually occurred.
        """
        if record[0] == "leaf":
            _, sid, quiescent, stuck = record
            if quiescent:
                if ctx.check_workload_deadlock and stuck:
                    return ctx.failure(deadlock=True, leaf_id=sid)
                ctx.complete_states += 1
                return None
            if ctx.check_deadlock:
                return ctx.failure(deadlock=True, leaf_id=sid)
            return None
        _, sid, applied, succs, err, vio = record
        ctx.transitions += applied
        if vio is not None:
            # The worker checks invariants before cross-worker dedup; a hit
            # on an already-known state is still a valid counterexample (the
            # stored chain reaches the same canonical state).  Successors
            # past the violating one are dropped, exactly as the pre-batch
            # absorb loop did.
            index, violation = vio
            next_frontier.extend(ctx.store.intern_children(sid, succs[:index]))
            encoded_event, successor_key, perm = succs[index]
            leaf_id, _ = ctx.store.intern(
                successor_key, parent=sid, event=encoded_event, perm=perm
            )
            return ctx.failure(violation=violation, leaf_id=leaf_id)
        # Events are stored in their encoded form; counterexample traces
        # decode them lazily (Exploration.trace_events), on failure only.
        next_frontier.extend(ctx.store.intern_children(sid, succs))
        if err is not None:
            encoded_event, message = err
            return ctx.failure(
                error=message,
                leaf_id=sid,
                final_event=ctx.codec.decode_event(encoded_event),
            )
        return None


def resolve_strategy(spec, *, processes: int | None = None) -> SearchStrategy:
    """Map a strategy name (or pass through an instance) to a strategy."""
    if isinstance(spec, SearchStrategy):
        return spec
    name = str(spec).lower()
    if name in ("bfs", "breadth-first"):
        return BreadthFirst()
    if name in ("dfs", "depth-first"):
        return DepthFirst()
    if name in ("parallel", "parallel-bfs"):
        return ParallelBreadthFirst(processes=processes)
    raise ValueError(
        f"unknown search strategy {spec!r} (expected 'bfs', 'dfs' or 'parallel')"
    )
