"""Digest-sharded visited sets with optional disk spill.

The shared-memory parallel engine (:mod:`repro.verification.engine.parallel`)
never keeps one global visited dict: each worker *owns* the slice of the
canonical state space whose 128-bit BLAKE2b digest (the same hash-compaction
digest :class:`~repro.verification.engine.store.StateStore` uses for
``hash_compaction=True``) lands in its shard, and membership/insert for a
candidate successor happens exactly once, on the owning worker.  The parent
process keeps only the columnar trace links -- no key dict at all once the
pool is up -- which is what holds peak RSS roughly flat as the state count
grows.

:class:`SpillableKeySet` is one worker's shard.  It is an insert-only set of
16-byte digests with two tiers:

* a **hot** in-memory ``set`` (every membership probe hits it first);
* zero or more **cold runs** on disk: sorted, fixed-width (16-byte) record
  files, probed by binary search over an ``mmap``.  When the hot tier
  reaches the spill threshold it is sorted and flushed to a new run;
  accumulated runs are merged (a streaming k-way merge, the classic delayed
  duplicate detection layout) once enough pile up, keeping probes at
  ``O(log n)`` against a bounded number of runs.

Spilling is *opt-in* (``spill_dir=None`` keeps everything hot) because the
membership probes against disk runs cost more than a set hit; it exists to
trade that CPU for bounded memory on searches whose visited set would not
fit otherwise.  Clearing or losing a run is never sound here (unlike the
engines' raw-seen caches, this set IS the dedup ground truth), so runs live
until :meth:`close`.
"""

from __future__ import annotations

import hashlib
import heapq
import mmap
import os

#: Digest width in bytes; 128 bits, matching the store's hash compaction.
DIGEST_BYTES = 16

#: Hot-tier size at which a spill-enabled set flushes a sorted run to disk.
SPILL_THRESHOLD = 1 << 21

#: Merge cold runs down to one when this many have accumulated.
_MAX_RUNS = 8


def digest128(key: bytes) -> bytes:
    """The engine's 128-bit state digest (BLAKE2b-16 over the packed key).

    Identical to the digest ``StateStore`` interns under
    ``hash_compaction=True``, so the sharded visited set is exactly "the
    128-bit hash-compaction keyed across workers".
    """
    return hashlib.blake2b(key, digest_size=DIGEST_BYTES).digest()


def shard_of(digest: bytes, num_shards: int) -> int:
    """Owning shard of a digest: its low 64 bits modulo the shard count."""
    return int.from_bytes(digest[-8:], "little") % num_shards


class SpillableKeySet:
    """Insert-only set of 16-byte digests, spillable to sorted disk runs."""

    __slots__ = ("_hot", "_runs", "_cold_len", "spill_dir", "spill_threshold",
                 "spill_bytes", "_tag", "_next_run")

    def __init__(self, spill_dir: str | None = None, *,
                 spill_threshold: int = SPILL_THRESHOLD, tag: str = "0"):
        self._hot: set[bytes] = set()
        self._runs: list[tuple] = []  # (path, fileobj, mmap, n_records)
        self._cold_len = 0
        self.spill_dir = spill_dir
        self.spill_threshold = spill_threshold
        #: Bytes currently resident in cold runs (telemetry).
        self.spill_bytes = 0
        self._tag = tag
        self._next_run = 0

    def __len__(self) -> int:
        return len(self._hot) + self._cold_len

    def __contains__(self, digest: bytes) -> bool:
        if digest in self._hot:
            return True
        for _path, _f, buf, n in self._runs:
            lo, hi = 0, n
            while lo < hi:
                mid = (lo + hi) >> 1
                probe = buf[mid * DIGEST_BYTES : (mid + 1) * DIGEST_BYTES]
                if probe < digest:
                    lo = mid + 1
                elif probe > digest:
                    hi = mid
                else:
                    return True
        return False

    def add(self, digest: bytes) -> None:
        """Insert a digest known to be absent (callers probe first)."""
        hot = self._hot
        hot.add(digest)
        if (
            self.spill_dir is not None
            and len(hot) >= self.spill_threshold
        ):
            self._flush()

    # -- spill machinery -------------------------------------------------------
    def _run_path(self) -> str:
        path = os.path.join(
            self.spill_dir,
            f"shard-{os.getpid()}-{self._tag}-{self._next_run}.run",
        )
        self._next_run += 1
        return path

    def _open_run(self, path: str):
        f = open(path, "rb")
        size = os.fstat(f.fileno()).st_size
        buf = mmap.mmap(f.fileno(), size, access=mmap.ACCESS_READ)
        return (path, f, buf, size // DIGEST_BYTES)

    def _flush(self) -> None:
        """Sort the hot tier into a new cold run (then merge if crowded)."""
        blob = b"".join(sorted(self._hot))
        path = self._run_path()
        with open(path, "wb") as f:
            f.write(blob)
        self._runs.append(self._open_run(path))
        self._cold_len += len(self._hot)
        self.spill_bytes += len(blob)
        self._hot = set()
        if len(self._runs) >= _MAX_RUNS:
            self._merge_runs()

    def _merge_runs(self) -> None:
        """Streaming k-way merge of every cold run into one.

        Runs hold disjoint digest sets by construction (a digest is only
        added after a full membership probe), so the merge is a pure
        interleave -- no dedup pass needed.
        """
        def records(buf, n):
            for i in range(n):
                yield buf[i * DIGEST_BYTES : (i + 1) * DIGEST_BYTES]

        path = self._run_path()
        with open(path, "wb") as f:
            for digest in heapq.merge(
                *(records(buf, n) for _p, _f, buf, n in self._runs)
            ):
                f.write(digest)
        old = self._runs
        self._runs = [self._open_run(path)]
        for old_path, fobj, buf, _n in old:
            buf.close()
            fobj.close()
            os.unlink(old_path)
        self.spill_bytes = self._runs[0][3] * DIGEST_BYTES

    # -- bulk I/O (checkpoints, pool spin-up) ----------------------------------
    def dump(self) -> bytes:
        """Every digest in the set, concatenated (hot tier unsorted)."""
        parts = [buf[: n * DIGEST_BYTES] for _p, _f, buf, n in self._runs]
        parts.append(b"".join(self._hot))
        return b"".join(parts)

    def seed(self, blob: bytes, num_shards: int, shard: int) -> None:
        """Bulk-insert the digests in *blob* that belong to shard *shard*."""
        hot = self._hot
        for i in range(0, len(blob), DIGEST_BYTES):
            digest = blob[i : i + DIGEST_BYTES]
            if shard_of(digest, num_shards) == shard and digest not in self:
                hot.add(digest)
        if (
            self.spill_dir is not None
            and len(hot) >= self.spill_threshold
        ):
            self._flush()

    def close(self) -> None:
        """Release and delete every cold run."""
        for path, f, buf, _n in self._runs:
            buf.close()
            f.close()
            try:
                os.unlink(path)
            except OSError:
                pass
        self._runs = []
        self._cold_len = 0
        self._hot = set()


__all__ = ["DIGEST_BYTES", "SPILL_THRESHOLD", "digest128", "shard_of",
           "SpillableKeySet"]
