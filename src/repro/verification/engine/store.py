"""Interned state store: dense integer IDs plus columnar parent links.

The seed explorer kept a ``dict[GlobalState, tuple[GlobalState | None,
SystemEvent | None]]`` -- every entry held two full state objects, and each
membership test plus insert hashed the nested dataclasses twice.  The store
interns each (canonical) state exactly once, hands out a dense integer ID,
and records the search tree column-wise:

* ``parent[id]`` -- ID of the state this one was first reached from (-1 for
  the root);
* ``event[id]``  -- the :class:`~repro.system.system.SystemEvent` applied to
  the parent *representative* to reach this state;
* ``perm[id]``   -- the cache permutation that canonicalized the raw
  successor into the stored representative (``None`` when symmetry reduction
  is off or the successor was already canonical).

Because traces are rebuilt by *replaying events* (not by reading back stored
states), the store also supports **hash compaction**: instead of keying the
intern table by the state object it can key by a 128-bit BLAKE2b digest of
the state's sort key, cutting resident memory for big runs at a vanishing
collision risk -- the same trade Murphi offers with ``-b``/hash compaction.
"""

from __future__ import annotations

import hashlib

from repro.system.system import GlobalState, SystemEvent

from repro.verification.engine.canonical import Permutation

#: Sentinel parent ID of the root state.
NO_PARENT = -1


class StateStore:
    """Intern table + columnar search-tree links for explored states."""

    __slots__ = ("_ids", "_parent", "_event", "_perm", "hash_compaction")

    def __init__(self, *, hash_compaction: bool = False):
        self.hash_compaction = hash_compaction
        self._ids: dict[object, int] = {}
        self._parent: list[int] = []
        self._event: list[SystemEvent | None] = []
        self._perm: list[Permutation | None] = []

    def _key(self, state: GlobalState) -> object:
        if not self.hash_compaction:
            return state
        return hashlib.blake2b(
            repr(state.sort_key()).encode(), digest_size=16
        ).digest()

    def intern(
        self,
        state: GlobalState,
        *,
        parent: int = NO_PARENT,
        event: SystemEvent | None = None,
        perm: Permutation | None = None,
    ) -> tuple[int, bool]:
        """Return ``(id, is_new)``; records the parent link only when new."""
        key = self._key(state)
        existing = self._ids.get(key)
        if existing is not None:
            return existing, False
        new_id = len(self._parent)
        self._ids[key] = new_id
        self._parent.append(parent)
        self._event.append(event)
        self._perm.append(perm)
        return new_id, True

    def link(self, state_id: int) -> tuple[int, SystemEvent | None, Permutation | None]:
        """The ``(parent_id, event, perm)`` triple recorded for *state_id*."""
        return self._parent[state_id], self._event[state_id], self._perm[state_id]

    def chain(
        self, state_id: int
    ) -> list[tuple[SystemEvent | None, Permutation | None]]:
        """The root-to-*state_id* sequence of ``(event, perm)`` links."""
        links: list[tuple[SystemEvent | None, Permutation | None]] = []
        current = state_id
        while current != NO_PARENT:
            parent, event, perm = self.link(current)
            links.append((event, perm))
            current = parent
        links.reverse()
        return links

    def __len__(self) -> int:
        return len(self._parent)

    def __contains__(self, state: GlobalState) -> bool:
        return self._key(state) in self._ids
