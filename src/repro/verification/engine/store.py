"""Interned state store: dense integer IDs plus columnar parent links.

The seed explorer kept a ``dict[GlobalState, tuple[GlobalState | None,
SystemEvent | None]]`` -- every entry held two full state objects, and each
membership test plus insert hashed the nested dataclasses twice.  The store
interns each (canonical) state exactly once, hands out a dense integer ID,
and records the search tree column-wise:

* ``parent[id]`` -- ID of the state this one was first reached from (-1 for
  the root);
* ``event[id]``  -- the :class:`~repro.system.system.SystemEvent` applied to
  the parent *representative* to reach this state;
* ``perm[id]``   -- the cache permutation that canonicalized the raw
  successor into the stored representative (``None`` when symmetry reduction
  is off or the successor was already canonical).

Since the encoded-state core landed, the search strategies intern the
**packed codec encoding** (:meth:`repro.system.codec.StateCodec.pack`) of
each canonical state rather than the object tree: the visited set then keys
on compact ``bytes``, which hash at C speed and cost tens of bytes per state
instead of kilobytes of linked dataclasses.  The store itself is agnostic --
any hashable key works, so object-keyed use (tests, tooling) stays valid.

Because traces are rebuilt by *replaying events* (not by reading back stored
states), the store also supports **hash compaction**: instead of keying the
intern table by the full key it can key by a 128-bit BLAKE2b digest, cutting
resident memory for big runs at a vanishing collision risk -- the same trade
Murphi offers with ``-b``/hash compaction.
"""

from __future__ import annotations

import hashlib

from repro.system.system import GlobalState, SystemEvent

from repro.verification.engine.canonical import Permutation

#: Sentinel parent ID of the root state.
NO_PARENT = -1


class StateStore:
    """Intern table + columnar search-tree links for explored states."""

    __slots__ = ("_ids", "_parent", "_event", "_perm", "hash_compaction")

    def __init__(self, *, hash_compaction: bool = False):
        self.hash_compaction = hash_compaction
        self._ids: dict[object, int] = {}
        self._parent: list[int] = []
        self._event: list[SystemEvent | None] = []
        self._perm: list[Permutation | None] = []

    def _key(self, state: object) -> object:
        if not self.hash_compaction:
            return state
        if isinstance(state, bytes):
            material = state
        elif isinstance(state, GlobalState):
            material = repr(state.sort_key()).encode()
        else:
            material = repr(state).encode()
        return hashlib.blake2b(material, digest_size=16).digest()

    def intern(
        self,
        state: object,
        parent: int = NO_PARENT,
        event: SystemEvent | None = None,
        perm: Permutation | None = None,
    ) -> tuple[int, bool]:
        """Return ``(id, is_new)``; records the parent link only when new.

        *state* is any hashable key -- the packed codec encoding on the
        search hot path, or a :class:`GlobalState` in object-keyed use.
        The link arguments may be passed positionally (the serial search
        interns once per transition; keyword binding is measurable there).
        """
        key = self._key(state) if self.hash_compaction else state
        existing = self._ids.get(key)
        if existing is not None:
            return existing, False
        new_id = len(self._parent)
        self._ids[key] = new_id
        self._parent.append(parent)
        self._event.append(event)
        self._perm.append(perm)
        return new_id, True

    def intern_children(
        self, parent: int, children
    ) -> list[tuple[int, object]]:
        """Batch :meth:`intern` of ``(event, key, perm)`` triples from one parent.

        The parallel search's absorb loop is per-successor work the parent
        does serially; batching it into one call with the hot lookups bound
        to locals keeps the parent thin while workers expand the next
        shards.  Returns ``[(id, key), ...]`` for the genuinely new keys, in
        input order -- exactly the pairs the next frontier needs.  Already
        known keys record nothing, like :meth:`intern`.
        """
        ids = self._ids
        parents = self._parent
        events = self._event
        perms = self._perm
        compact = self.hash_compaction
        out: list[tuple[int, object]] = []
        for event, key, perm in children:
            lookup = self._key(key) if compact else key
            if lookup in ids:
                continue
            new_id = len(parents)
            ids[lookup] = new_id
            parents.append(parent)
            events.append(event)
            perms.append(perm)
            out.append((new_id, key))
        return out

    def intern_batch(self, entries) -> list[int]:
        """Batch :meth:`intern` of ``(key, parent, event, perm)`` quads.

        The vectorized search interns a whole frontier level's worth of
        canonical successors in one call (its successors arrive pre-deduped
        per level, but cross-level duplicates are still resolved here).
        Returns the new ID for each genuinely new key, ``-1`` for an already
        known one, positionally matching *entries* -- the caller builds the
        next frontier (and locates a violating successor) from the indices.
        """
        ids = self._ids
        parents = self._parent
        events = self._event
        perms = self._perm
        compact = self.hash_compaction
        out: list[int] = []
        for key, parent, event, perm in entries:
            lookup = self._key(key) if compact else key
            if lookup in ids:
                out.append(-1)
                continue
            new_id = len(parents)
            ids[lookup] = new_id
            parents.append(parent)
            events.append(event)
            perms.append(perm)
            out.append(new_id)
        return out

    def append_link(
        self,
        parent: int,
        event: SystemEvent | None,
        perm: Permutation | None,
    ) -> int:
        """Append a trace link for a key deduplicated *elsewhere*; returns its ID.

        The shared-memory parallel engine dedups candidate successors on the
        worker that owns their digest shard, so by the time a state reaches
        the parent it is known new -- the parent records only the columnar
        parent/event/perm link and never touches (or keeps) a key dict.
        That asymmetry is the engine's memory win: the parent's footprint is
        three appends per state regardless of key size.
        """
        new_id = len(self._parent)
        self._parent.append(parent)
        self._event.append(event)
        self._perm.append(perm)
        return new_id

    def drop_index(self) -> None:
        """Release the key dict (membership moves to the workers' shards).

        After this, :meth:`intern`/:meth:`__contains__` are invalid;
        :meth:`append_link`, :meth:`link` and :meth:`chain` -- everything
        trace reconstruction needs -- keep working.
        """
        self._ids = None

    # -- checkpoint support --------------------------------------------------------
    def snapshot(self, *, with_keys: bool = True) -> dict:
        """Picklable copy of the store for a checkpoint.

        ``with_keys=False`` omits the intern keys (the sharded parallel
        engine's parent does not have them; the checkpoint carries worker
        shard digests instead).  Keys are saved in dense ID order so
        :meth:`restore` rebuilds the exact same ID assignment.
        """
        keys = None
        if with_keys and self._ids is not None:
            keys = [None] * len(self._parent)
            for key, state_id in self._ids.items():
                keys[state_id] = key
        return {
            "hash_compaction": self.hash_compaction,
            "keys": keys,
            "parent": list(self._parent),
            "event": list(self._event),
            "perm": list(self._perm),
        }

    def restore(self, snapshot: dict) -> None:
        """Replace this store's contents with a :meth:`snapshot` payload.

        Snapshot keys were already passed through :meth:`_key` when first
        interned, so they are re-installed verbatim (digests stay digests
        under hash compaction).
        """
        self.hash_compaction = snapshot["hash_compaction"]
        self._parent = list(snapshot["parent"])
        self._event = list(snapshot["event"])
        self._perm = list(snapshot["perm"])
        keys = snapshot["keys"]
        if keys is None:
            self._ids = None
        else:
            self._ids = {key: state_id for state_id, key in enumerate(keys)}

    def iter_keys(self):
        """The intern keys (post-:meth:`_key`), in arbitrary order."""
        return iter(self._ids)

    def link(self, state_id: int) -> tuple[int, SystemEvent | None, Permutation | None]:
        """The ``(parent_id, event, perm)`` triple recorded for *state_id*."""
        return self._parent[state_id], self._event[state_id], self._perm[state_id]

    def chain(
        self, state_id: int
    ) -> list[tuple[SystemEvent | None, Permutation | None]]:
        """The root-to-*state_id* sequence of ``(event, perm)`` links."""
        links: list[tuple[SystemEvent | None, Permutation | None]] = []
        current = state_id
        while current != NO_PARENT:
            parent, event, perm = self.link(current)
            links.append((event, perm))
            current = parent
        links.reverse()
        return links

    def __len__(self) -> int:
        return len(self._parent)

    def __contains__(self, state: object) -> bool:
        return self._key(state) in self._ids
