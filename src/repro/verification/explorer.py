"""Backward-compatibility shim for the explicit-state model checker.

The explorer was rebuilt as the :mod:`repro.verification.engine` subsystem
(cache-ID symmetry reduction, an interned state store, and pluggable BFS /
DFS / parallel search strategies).  This module keeps the historical import
path working: ``from repro.verification.explorer import verify`` resolves to
the engine facade, which with default arguments behaves exactly like the
seed explorer (same exploration order, same state counts).
"""

from repro.verification.engine.core import VerificationResult, verify

__all__ = ["VerificationResult", "verify"]
