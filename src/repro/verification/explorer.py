"""Explicit-state model checker (the Murphi replacement).

:func:`verify` performs a breadth-first search over the reachable global
states of a :class:`repro.system.System`, checking:

* the per-state invariants (SWMR, structural single-owner);
* execution-level errors surfaced by the substrate (unexpected messages,
  ambiguous transitions, data-value violations, loads going backwards);
* deadlock freedom: every non-complete reachable state must have at least one
  enabled event.

On failure the result carries a counterexample trace (the sequence of events
from the initial state), mirroring Murphi's error traces.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Sequence

from repro.system.system import GlobalState, System, SystemEvent
from repro.verification.invariants import Invariant, InvariantViolation, default_invariants


@dataclass
class VerificationResult:
    """Outcome of an exhaustive exploration."""

    ok: bool
    states_explored: int
    transitions_explored: int
    elapsed_seconds: float
    violation: InvariantViolation | None = None
    error: str | None = None
    deadlock: bool = False
    truncated: bool = False
    trace: list[str] = field(default_factory=list)
    complete_states: int = 0

    @property
    def summary(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        extra = ""
        if self.violation is not None:
            extra = f" [{self.violation}]"
        elif self.error is not None:
            extra = f" [{self.error}]"
        elif self.deadlock:
            extra = " [deadlock]"
        if self.truncated:
            extra += " (truncated)"
        return (
            f"{status}: {self.states_explored} states, "
            f"{self.transitions_explored} transitions, "
            f"{self.elapsed_seconds:.2f}s{extra}"
        )


def _build_trace(
    parents: dict[GlobalState, tuple[GlobalState | None, SystemEvent | None]],
    state: GlobalState,
    final_event: SystemEvent | None = None,
) -> list[str]:
    events: list[str] = []
    current: GlobalState | None = state
    while current is not None:
        parent, event = parents.get(current, (None, None))
        if event is not None:
            events.append(str(event))
        current = parent
    events.reverse()
    if final_event is not None:
        events.append(str(final_event))
    return events


def verify(
    system: System,
    *,
    invariants: Sequence[Invariant] | None = None,
    max_states: int = 2_000_000,
    check_deadlock: bool = True,
) -> VerificationResult:
    """Exhaustively explore *system* and check all invariants."""
    invariants = tuple(invariants) if invariants is not None else tuple(default_invariants())
    start = time.perf_counter()

    initial = system.initial_state()
    parents: dict[GlobalState, tuple[GlobalState | None, SystemEvent | None]] = {
        initial: (None, None)
    }
    frontier: deque[GlobalState] = deque([initial])
    explored = 0
    transitions = 0
    complete_states = 0
    truncated = False

    def fail(**kwargs) -> VerificationResult:
        return VerificationResult(
            ok=False,
            states_explored=explored,
            transitions_explored=transitions,
            elapsed_seconds=time.perf_counter() - start,
            complete_states=complete_states,
            **kwargs,
        )

    # Check invariants on the initial state as well.
    for invariant in invariants:
        violation = invariant(system, initial)
        if violation is not None:
            return fail(violation=violation, trace=[])

    while frontier:
        state = frontier.popleft()
        explored += 1
        if explored > max_states:
            truncated = True
            break

        events = system.enabled_events(state)
        if not events:
            # A state with no enabled events is fine if nothing is actually
            # outstanding (quiescent); otherwise it is a deadlock.
            if system.is_quiescent(state):
                complete_states += 1
                continue
            if check_deadlock:
                return fail(deadlock=True, trace=_build_trace(parents, state))
            continue

        for event in events:
            transitions += 1
            outcome = system.apply(state, event)
            if outcome.error is not None:
                return fail(error=outcome.error, trace=_build_trace(parents, state, event))
            successor = outcome.state
            if successor in parents:
                continue
            parents[successor] = (state, event)
            for invariant in invariants:
                violation = invariant(system, successor)
                if violation is not None:
                    return fail(
                        violation=violation, trace=_build_trace(parents, successor)
                    )
            frontier.append(successor)

    return VerificationResult(
        ok=True,
        states_explored=explored,
        transitions_explored=transitions,
        elapsed_seconds=time.perf_counter() - start,
        truncated=truncated,
        complete_states=complete_states,
    )
