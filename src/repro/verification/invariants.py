"""Safety invariants checked over every reachable state.

The paper verifies its generated protocols with the Murphi model checker for
SWMR and deadlock freedom; the data-value invariant is folded into the
execution substrate (stores must build on the latest written version, loads
must never go backwards).  This module contains the per-state predicates the
explorer evaluates:

* **SWMR** -- at most one cache with write permission, and no readers while a
  writer exists.  Permissions are the ones the generator assigned in Step 4,
  so transient states with deferred ownership count conservatively.
* **Directory consistency** -- sanity conditions tying the directory's
  auxiliary state to its coherence state (an owner exists when the directory
  believes the block is owned, the sharer list is empty when it believes the
  block is uncached, ...).  These are optional, protocol-specific checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.system.system import GlobalState, System


@dataclass(frozen=True)
class InvariantViolation:
    """A named invariant that failed in a particular state."""

    name: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}: {self.detail}"


Invariant = Callable[[System, GlobalState], InvariantViolation | None]


def swmr_invariant(system: System, state: GlobalState) -> InvariantViolation | None:
    """Single-Writer / Multiple-Reader over the generated permission map.

    A per-address property: with several address planes each plane is
    checked independently (writers on different blocks may coexist)."""
    for addr in range(system.num_addresses):
        writers, readers = system.writers_and_readers(state, addr)
        at = f" on address {addr}" if addr else ""
        if len(writers) > 1:
            return InvariantViolation(
                name="SWMR",
                detail=f"caches {writers} hold write permission simultaneously{at}",
            )
        if writers and readers:
            return InvariantViolation(
                name="SWMR",
                detail=f"cache {writers[0]} holds write permission while caches {readers} can read{at}",
            )
    return None


def single_owner_invariant(system: System, state: GlobalState) -> InvariantViolation | None:
    """No two caches may simultaneously sit in a stable MODIFIED-like state.

    This is a stricter structural variant of SWMR that does not depend on the
    permission assignment; it only looks at stable states.  Per-address, like
    SWMR.
    """
    fsm = system.protocol.cache
    n = system.num_caches
    for addr in range(system.num_addresses):
        stable_writers = [
            cache_id
            for cache_id in range(n)
            for cache in (state.caches[addr * n + cache_id],)
            if fsm.state(cache.fsm_state).is_stable
            and fsm.state(cache.fsm_state).permission.name == "READ_WRITE"
        ]
        if len(stable_writers) > 1:
            at = f" on address {addr}" if addr else ""
            return InvariantViolation(
                name="single-owner",
                detail=f"caches {stable_writers} are simultaneously in a stable writable state{at}",
            )
    return None


@dataclass(frozen=True)
class LitmusInvariant:
    """Forbidden final-outcome checker for litmus-test workloads.

    *clauses* is a tuple of forbidden outcomes; each clause is a tuple of
    ``(cache_id, addr, version)`` observations and is considered matched
    when, in a **complete** state (quiescent, every program finished), every
    listed cache's last observed value on the listed address equals the
    listed ghost version.  Any matched clause is a consistency violation.

    Callable with the ``(system, state)`` invariant signature so it drops
    into ``verify(invariants=...)`` next to the default pair; the kernel
    evaluates the same clauses decode-free via the ``("litmus", clauses)``
    compiled code (see :meth:`TransitionKernel.check`).
    """

    name: str
    clauses: tuple[tuple[tuple[int, int, int], ...], ...]

    def __call__(
        self, system: System, state: GlobalState
    ) -> InvariantViolation | None:
        if not system.is_complete(state):
            return None
        n = system.num_caches
        for clause in self.clauses:
            if all(
                state.caches[addr * n + cache_id].last_observed == version
                for cache_id, addr, version in clause
            ):
                outcome = ", ".join(
                    f"C{cache_id} observed v{version} at a{addr}"
                    for cache_id, addr, version in clause
                )
                return InvariantViolation(
                    name=self.name,
                    detail=f"forbidden outcome reached: {outcome}",
                )
        return None


def default_invariants() -> Sequence[Invariant]:
    return (swmr_invariant, single_owner_invariant)


#: Invariants the compiled kernel can evaluate directly on encoded states,
#: mapped to their :mod:`repro.system.kernel` evaluator codes.
COMPILED_INVARIANTS: dict[Invariant, str] = {
    swmr_invariant: "swmr",
    single_owner_invariant: "single_owner",
}


def compiled_invariant_codes(
    invariants: Sequence[Invariant],
) -> tuple[str | tuple, ...] | None:
    """Kernel evaluator codes for *invariants*, in order.

    Litmus invariants compile to the structured ``("litmus", clauses)`` code
    (the checker is parameterized by its clause table, not its identity).

    Returns ``None`` when any invariant has no encoded evaluator -- the
    search then runs on the object backend, which calls arbitrary
    ``(system, state)`` predicates unchanged.
    """
    codes = []
    for invariant in invariants:
        if isinstance(invariant, LitmusInvariant):
            # Litmus checkers are data, not identity: the kernel evaluates
            # the clause table directly on encoded last-observed lanes.
            codes.append(("litmus", invariant.clauses))
            continue
        code = COMPILED_INVARIANTS.get(invariant)
        if code is None:
            return None
        codes.append(code)
    return tuple(codes)
