"""Canonical litmus tests as workload + forbidden-outcome pairs.

A litmus test is a tiny multi-address program per cache plus a set of
*forbidden outcomes* over the values the caches observed.  The issuing
cores are sequentially consistent by construction (a
:class:`~repro.system.system.LitmusWorkload` op only issues once the
previous op has fully completed), so any reachable forbidden outcome is a
coherence-protocol bug, not core-side reordering.  Data values are the
ghost versions the execution substrate already threads through ``Data``
messages: version 0 is the initial memory value of every location, the
*n*-th store to a location writes version *n*.

Three classics are bundled:

* **SB (store buffering)** -- ``C0: ST x; LD y`` / ``C1: ST y; LD x``;
  forbidden: both loads observe the initial value (``r0 = r1 = 0``).
* **MP (message passing)** -- ``C0: ST x; ST y`` / ``C1: LD y; LD x``;
  forbidden: the reader sees the flag (``y = 1``) but stale data
  (``x = 0``).
* **coRR (coherent read-read)** -- ``C0: ST x; ST x`` / ``C1: LD x; LD x``;
  forbidden: the two reads of one location go backwards.  This outcome has
  no clause table: the execution substrate itself raises a per-location SC
  violation when a load observes an older version than the same cache
  already saw, so the test relies on (and exercises) that built-in check.

Each builder returns a :class:`LitmusTest`; run one with::

    test = store_buffering()
    system = System(protocol, num_caches=2, workload=test.workload)
    result = verify(system, invariants=test.invariants())
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dsl.types import AccessKind
from repro.system.system import LitmusWorkload
from repro.verification.invariants import (
    Invariant,
    LitmusInvariant,
    default_invariants,
)

LD = AccessKind.LOAD
ST = AccessKind.STORE


@dataclass(frozen=True)
class LitmusTest:
    """A named litmus workload with its forbidden-outcome invariant."""

    name: str
    workload: LitmusWorkload
    invariant: LitmusInvariant

    def invariants(self) -> tuple[Invariant, ...]:
        """The default safety invariants plus this test's outcome checker."""
        return tuple(default_invariants()) + (self.invariant,)


def store_buffering() -> LitmusTest:
    """SB: both writers then cross-reads; both must not miss both stores."""
    return LitmusTest(
        name="litmus-SB",
        workload=LitmusWorkload(
            programs=(
                ((ST, 0), (LD, 1)),
                ((ST, 1), (LD, 0)),
            )
        ),
        # C0 read y's initial value AND C1 read x's initial value.
        invariant=LitmusInvariant(
            name="litmus-SB",
            clauses=(((0, 1, 0), (1, 0, 0)),),
        ),
    )


def message_passing() -> LitmusTest:
    """MP: data then flag; seeing the flag forces seeing the data."""
    return LitmusTest(
        name="litmus-MP",
        workload=LitmusWorkload(
            programs=(
                ((ST, 0), (ST, 1)),
                ((LD, 1), (LD, 0)),
            )
        ),
        # C1 saw the flag store (y == 1) but stale data (x == 0).
        invariant=LitmusInvariant(
            name="litmus-MP",
            clauses=(((1, 1, 1), (1, 0, 0)),),
        ),
    )


def coherent_read_read() -> LitmusTest:
    """coRR: per-location reads must be monotone in coherence order.

    No forbidden clause: a backwards read is already a substrate error
    (``load went backwards`` from the executor's data-value check), which
    ``verify`` reports as a failing trace.  The empty-clause invariant
    still routes the search through the litmus machinery (completion
    semantics, value tracking) on both backends.
    """
    return LitmusTest(
        name="litmus-coRR",
        workload=LitmusWorkload(
            programs=(
                ((ST, 0), (ST, 0)),
                ((LD, 0), (LD, 0)),
            )
        ),
        invariant=LitmusInvariant(name="litmus-coRR", clauses=()),
    )


#: All bundled litmus tests, in presentation order.
LITMUS_TESTS = (store_buffering, message_passing, coherent_read_read)
