"""Randomized deep simulation for configurations too large to explore exhaustively.

Exhaustive exploration in pure Python becomes expensive beyond two or three
caches.  :func:`random_walk` complements it: it runs many random schedules
(random choice among the enabled events at every step) and checks the same
invariants along the way.  It cannot prove absence of bugs, but it routinely
finds the same classes of races the exhaustive search finds, and it scales to
more caches and longer workloads.

With ``track_coverage=True`` the walk also counts the distinct states it
visits, canonicalized through the engine's cache-ID symmetry reduction
(:mod:`repro.verification.engine.canonical`), so coverage numbers are
comparable with the symmetry-reduced exhaustive search: two visits that
differ only by a renaming of the caches count as one state.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.system.system import System
from repro.verification.engine.canonical import canonicalize
from repro.verification.invariants import Invariant, InvariantViolation, default_invariants


@dataclass
class RandomWalkResult:
    ok: bool
    runs: int
    steps: int
    elapsed_seconds: float
    violation: InvariantViolation | None = None
    error: str | None = None
    deadlock: bool = False
    trace: list[str] = field(default_factory=list)
    #: Distinct (canonical) states visited; 0 unless ``track_coverage=True``.
    unique_states: int = 0

    @property
    def summary(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        detail = ""
        if self.violation:
            detail = f" [{self.violation}]"
        elif self.error:
            detail = f" [{self.error}]"
        elif self.deadlock:
            detail = " [deadlock]"
        if self.unique_states:
            detail += f" ({self.unique_states} unique states)"
        return f"{status}: {self.runs} runs, {self.steps} steps, {self.elapsed_seconds:.2f}s{detail}"


def random_walk(
    system: System,
    *,
    runs: int = 100,
    max_steps: int = 400,
    seed: int = 0,
    invariants: Sequence[Invariant] | None = None,
    track_coverage: bool = False,
    symmetry: bool = True,
) -> RandomWalkResult:
    """Run *runs* random schedules of up to *max_steps* events each.

    ``track_coverage`` counts distinct visited states in
    :attr:`RandomWalkResult.unique_states`; with ``symmetry`` (the default)
    the count is over cache-permutation orbits rather than raw states.
    """
    invariants = tuple(invariants) if invariants is not None else tuple(default_invariants())
    rng = random.Random(seed)
    start = time.perf_counter()
    total_steps = 0

    perms = None
    seen: set | None = None
    if track_coverage:
        seen = set()
        if symmetry and system.num_caches > 1:
            if not system.supports_symmetry:
                raise ValueError(
                    "symmetry=True coverage is unsupported for this system "
                    "(litmus workloads and num_addresses>1 distinguish the "
                    "caches); pass symmetry=False to count raw states"
                )
            perms = system.symmetry_permutations()

    def note(state) -> None:
        if seen is None:
            return
        seen.add(canonicalize(state, perms)[0] if perms is not None else state)

    def finish(**kwargs) -> RandomWalkResult:
        return RandomWalkResult(
            elapsed_seconds=time.perf_counter() - start,
            unique_states=len(seen) if seen is not None else 0,
            **kwargs,
        )

    for run in range(runs):
        state = system.initial_state()
        note(state)
        trace: list[str] = []
        for _ in range(max_steps):
            events = system.enabled_events(state)
            if not events:
                if not system.is_quiescent(state):
                    return finish(
                        ok=False,
                        runs=run + 1,
                        steps=total_steps,
                        deadlock=True,
                        trace=trace,
                    )
                break
            event = rng.choice(events)
            trace.append(str(event))
            total_steps += 1
            outcome = system.apply(state, event)
            if outcome.error is not None:
                return finish(
                    ok=False,
                    runs=run + 1,
                    steps=total_steps,
                    error=outcome.error,
                    trace=trace,
                )
            state = outcome.state
            note(state)
            for invariant in invariants:
                violation = invariant(system, state)
                if violation is not None:
                    return finish(
                        ok=False,
                        runs=run + 1,
                        steps=total_steps,
                        violation=violation,
                        trace=trace,
                    )

    return finish(ok=True, runs=runs, steps=total_steps)
