"""Tests for metrics and the generated-vs-primer comparison (Table VI)."""

import pytest

from repro.analysis import (
    compare_with_baseline,
    controller_metrics,
    protocol_metrics,
    protocol_transition_count,
)
from repro.protocols import primer


class TestMetrics:
    def test_controller_metrics_consistency(self, msi_nonstalling):
        metrics = controller_metrics(msi_nonstalling.cache)
        assert metrics.states == msi_nonstalling.cache.num_states
        assert metrics.stable_states + metrics.transient_states == metrics.states
        assert metrics.protocol_transitions <= metrics.transitions
        assert metrics.stalls == msi_nonstalling.cache.num_stalls

    def test_paper_range_for_nonstalling_protocols(self, all_generated):
        """Section VI-B: 18-20 states and 46-60 transitions for the
        non-stalling MSI/MESI/MOSI cache+directory protocols.  Our MOSI uses
        a directory-recall variant with more transient states, so only MSI and
        MESI are expected inside the exact ranges."""
        for name in ("MSI", "MESI"):
            metrics = protocol_metrics(all_generated[(name, "nonstalling")])
            assert 18 <= metrics.total_states <= 34
            # Our transition count also includes guarded variants and the
            # generated stale-Put handling, so the upper bound is looser than
            # the paper's 60.
            assert 46 <= metrics.total_protocol_transitions <= 120

    def test_protocol_metrics_as_dict(self, msi_nonstalling):
        data = protocol_metrics(msi_nonstalling).as_dict()
        assert data["protocol"] == "MSI"
        assert data["cache"]["states"] == msi_nonstalling.cache.num_states

    def test_transition_count_excludes_stalls_and_hits(self, msi_nonstalling):
        cache = msi_nonstalling.cache
        assert protocol_transition_count(cache) < cache.num_transitions


class TestTableVIComparison:
    @pytest.fixture(scope="class")
    def report(self, msi_nonstalling):
        return compare_with_baseline(
            msi_nonstalling.cache, primer.nonstalling_msi_cache()
        )

    def test_generated_has_the_papers_extra_states(self, report):
        assert primer.PROTOGEN_EXTRA_STATES <= report.extra_states

    def test_generated_merges_the_papers_pairs(self, report):
        merged_aliases = {
            alias for aliases in report.merged_states.values() for alias in aliases
        }
        # The paper reports IM_A_I = SM_A_I and IM_A_SI = SM_A_SI merges; our
        # generator keeps SM_A_S separate because it can still serve hits.
        assert "SM_A_I" in merged_aliases
        assert "SM_A_SI" in merged_aliases

    def test_generated_unstalls_the_papers_cells(self, report):
        assert primer.PROTOGEN_UNSTALLED_CELLS <= report.unstalled_cells
        assert report.stalls_removed >= len(primer.PROTOGEN_UNSTALLED_CELLS)

    def test_no_baseline_state_is_unaccounted_for(self, report):
        assert report.missing_states == set()

    def test_no_new_stalls_introduced(self, report):
        assert report.newly_stalled_cells == set()

    def test_summary_lines_mention_the_key_findings(self, report):
        text = "\n".join(report.summary_lines())
        assert "IM_AD_S" in text and "un-stalled" in text

    def test_stalling_configuration_matches_primer_stall_cells(self, msi_stalling):
        report = compare_with_baseline(msi_stalling.cache, primer.stalling_msi_cache())
        # The stalling configuration should not remove the baseline's stalls
        # on forwarded requests in IM_AD / SM_AD.
        assert ("IM_AD", "Fwd_GetS") not in report.unstalled_cells
        assert ("SM_AD", "Fwd_GetM") not in report.unstalled_cells
