"""Tests for the table, Murphi and dot backends."""

import pytest

from repro import protocols
from repro.backends import emit_dot, emit_murphi, render_summary, render_table


class TestTableBackend:
    def test_every_state_has_a_row(self, msi_nonstalling):
        table = render_table(msi_nonstalling.cache)
        for state in msi_nonstalling.cache.state_names():
            assert state in table

    def test_key_columns_present(self, msi_nonstalling):
        table = render_table(msi_nonstalling.cache)
        for column in ("Load", "Store", "Replacement", "Fwd_GetS", "Inv", "Data"):
            assert column in table

    def test_stalls_rendered(self, msi_stalling):
        assert "stall" in render_table(msi_stalling.cache)

    def test_aliases_shown_as_merged_rows(self, msi_nonstalling):
        table = render_table(msi_nonstalling.cache)
        assert "IM_AD_I = SM_AD_I" in table

    def test_markdown_mode(self, msi_nonstalling):
        table = render_table(msi_nonstalling.cache, markdown=True)
        assert table.startswith("| State |")
        assert "| --- |" in table

    def test_directory_table(self, msi_nonstalling):
        table = render_table(msi_nonstalling.directory)
        assert "S_D" in table and "GetM" in table

    def test_summary(self, msi_nonstalling):
        summary = render_summary(msi_nonstalling.cache)
        assert "states" in summary and "stalls" in summary


class TestMurphiBackend:
    @pytest.fixture(scope="class")
    def source(self, msi_nonstalling):
        return emit_murphi(msi_nonstalling, num_caches=3)

    def test_header_and_constants(self, source):
        assert "NumCaches: 3" in source
        assert "-- Murphi model for protocol MSI" in source

    def test_all_states_declared(self, source, msi_nonstalling):
        for state in msi_nonstalling.cache.state_names():
            assert f"C_{state}" in source
        for state in msi_nonstalling.directory.state_names():
            assert f"D_{state}" in source

    def test_all_messages_declared(self, source, msi_nonstalling):
        for message in msi_nonstalling.messages.names():
            assert f"Msg_{message}" in source

    def test_one_rule_per_transition(self, source, msi_nonstalling):
        expected = (
            msi_nonstalling.cache.num_transitions
            + msi_nonstalling.directory.num_transitions
        )
        assert source.count("endrule;") == expected

    def test_invariants_emitted(self, source):
        assert 'invariant "SWMR"' in source
        assert 'invariant "DataValue"' in source

    @pytest.mark.parametrize("name", protocols.available_protocols())
    def test_emission_works_for_every_protocol(self, all_generated, name):
        source = emit_murphi(all_generated[(name, "nonstalling")])
        assert "endrule;" in source


class TestDotBackend:
    def test_states_and_edges_present(self, msi_nonstalling):
        dot = emit_dot(msi_nonstalling.cache)
        assert dot.startswith("digraph")
        assert '"IM_AD" ->' in dot
        assert '"M" [shape=doublecircle' in dot

    def test_stalls_hidden_by_default(self, msi_stalling):
        assert "stall" not in emit_dot(msi_stalling.cache)
        assert "stall" in emit_dot(msi_stalling.cache, include_stalls=True)
