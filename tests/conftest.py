"""Shared fixtures: bundled SSPs and generated protocols (cached per session)."""

from __future__ import annotations

import pytest

from repro.core import GenerationConfig, generate
from repro import protocols


@pytest.fixture(scope="session")
def msi_spec():
    return protocols.msi.build()


@pytest.fixture(scope="session")
def mesi_spec():
    return protocols.mesi.build()


@pytest.fixture(scope="session")
def mosi_spec():
    return protocols.mosi.build()


@pytest.fixture(scope="session")
def msi_nonstalling(msi_spec):
    return generate(msi_spec, GenerationConfig.nonstalling())


@pytest.fixture(scope="session")
def msi_stalling(msi_spec):
    return generate(msi_spec, GenerationConfig.stalling())


@pytest.fixture(scope="session")
def mesi_nonstalling(mesi_spec):
    return generate(mesi_spec, GenerationConfig.nonstalling())


@pytest.fixture(scope="session")
def mosi_nonstalling(mosi_spec):
    return generate(mosi_spec, GenerationConfig.nonstalling())


@pytest.fixture(scope="session")
def all_generated():
    """Every bundled protocol generated in both configurations."""
    result = {}
    for name in protocols.available_protocols():
        spec = protocols.load(name)
        result[(name, "nonstalling")] = generate(spec, GenerationConfig.nonstalling())
        result[(name, "stalling")] = generate(spec, GenerationConfig.stalling())
    return result
