"""Tests for directory-controller generation (Section V-F)."""

import pytest

from repro.core import GenerationConfig, generate
from repro.core.fsm import MessageEvent, StateKind
from repro.dsl.types import RemoveRequestorFromSharers, Send


class TestMsiDirectory:
    def test_states(self, msi_nonstalling):
        directory = msi_nonstalling.directory
        # M_cap is the hardening pass's captured sibling of M (memory made
        # current by a stale-Put capture while a handoff was in flight).
        assert set(directory.state_names()) == {"I", "S", "M", "M_cap", "S_D"}
        assert directory.state("S_D").kind is StateKind.TRANSIENT
        assert directory.state("M_cap").kind is StateKind.STABLE
        assert directory.state("M_cap").meta["captured_from"] == "M"

    def test_transient_state_from_waiting_transaction(self, msi_nonstalling):
        directory = msi_nonstalling.directory
        [transition] = directory.candidates("M", MessageEvent("GetS"))
        assert transition.next_state == "S_D"
        [completion] = directory.candidates("S_D", MessageEvent("Data"))
        assert completion.next_state == "S"

    def test_requests_stall_in_transient_directory_state(self, msi_nonstalling):
        directory = msi_nonstalling.directory
        for request in ("GetS", "GetM"):
            [transition] = directory.candidates("S_D", MessageEvent(request))
            assert transition.stall

    def test_puts_do_not_stall_in_transient_directory_state(self, msi_nonstalling):
        directory = msi_nonstalling.directory
        for request in ("PutS", "PutM"):
            candidates = directory.candidates("S_D", MessageEvent(request))
            assert candidates and not any(t.stall for t in candidates)


class TestStalePutHandling:
    """Section V-F: any stale Put is simply acknowledged."""

    @pytest.mark.parametrize(
        "state, put",
        [("I", "PutS"), ("I", "PutM"), ("S", "PutM"), ("M", "PutS"), ("S_D", "PutS")],
    )
    def test_stale_put_is_acknowledged_without_state_change(self, msi_nonstalling, state, put):
        directory = msi_nonstalling.directory
        candidates = [
            t for t in directory.candidates(state, MessageEvent(put)) if t.event.guard is None
        ]
        assert len(candidates) == 1
        transition = candidates[0]
        assert transition.next_state == state
        assert any(isinstance(a, Send) and a.message == "Put_Ack" for a in transition.actions)

    def test_stale_put_drops_requestor_from_sharers(self, msi_nonstalling):
        directory = msi_nonstalling.directory
        [transition] = [
            t for t in directory.candidates("S_D", MessageEvent("PutM"))
            if t.event.guard is None
        ]
        assert any(isinstance(a, RemoveRequestorFromSharers) for a in transition.actions)

    def test_owner_putm_keeps_ssp_handling_and_gains_stale_variant(self, msi_nonstalling):
        directory = msi_nonstalling.directory
        guards = {t.event.guard for t in directory.candidates("M", MessageEvent("PutM"))}
        assert guards == {"from_owner", "not_from_owner"}

    def test_stale_handling_can_be_disabled(self, msi_spec):
        generated = generate(msi_spec, GenerationConfig(generate_stale_put_handling=False))
        directory = generated.directory
        assert directory.candidates("I", MessageEvent("PutM")) == []


class TestRequestReinterpretation:
    """Section V-D1: the Upgrade example."""

    def test_upgrade_reinterpreted_as_getm_in_i_and_m(self, all_generated):
        directory = all_generated[("MSI-Upgrade", "nonstalling")].directory
        for state in ("I", "M"):
            getm = directory.candidates(state, MessageEvent("GetM"))
            upgrade = directory.candidates(state, MessageEvent("Upgrade"))
            assert len(upgrade) == len(getm)
            assert {t.next_state for t in upgrade} == {t.next_state for t in getm}

    def test_upgrade_not_duplicated_where_ssp_defines_it(self, all_generated):
        directory = all_generated[("MSI-Upgrade", "nonstalling")].directory
        guards = {t.event.guard for t in directory.candidates("S", MessageEvent("Upgrade"))}
        assert guards == {"from_sharer", "not_from_sharer"}

    def test_cache_side_records_reinterpretation_via_restart(self, all_generated):
        cache = all_generated[("MSI-Upgrade", "nonstalling")].cache
        # SM_AC is the upgrade transient; an Inv restarts the store from I,
        # landing in the GetM transient even though the Upgrade is in flight.
        upgrade_transients = [
            s.name for s in cache.transient_states() if s.meta.get("start") == "S"
            and s.meta.get("stage") == "AC" and not s.meta.get("chain")
        ]
        assert upgrade_transients, "expected the S->M upgrade transient to exist"
        [transition] = cache.candidates(upgrade_transients[0], MessageEvent("Inv"))
        assert transition.next_state == "IM_AD"


class TestMosiOwnerPutReinterpretation:
    def test_putm_from_owner_in_o_handled_like_puto(self, mosi_nonstalling):
        directory = mosi_nonstalling.directory
        putm = {
            t.event.guard: t for t in directory.candidates("O", MessageEvent("PutM"))
        }
        assert "from_owner" in putm
        assert putm["from_owner"].next_state == "S"

    def test_mosi_directory_has_recall_transient(self, mosi_nonstalling):
        directory = mosi_nonstalling.directory
        assert "M_D" in directory.state_names()
        # The unguarded (non-owner) GetM handling starts the recall; the
        # owner-upgrade path is the guarded reaction.
        [transition] = [
            t for t in directory.candidates("O", MessageEvent("GetM"))
            if t.event.guard is None
        ]
        assert transition.next_state == "M_D"
