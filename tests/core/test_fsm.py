"""Unit tests for the generated-FSM container."""

import pytest

from repro.core.fsm import (
    AccessEvent,
    ControllerFsm,
    FsmState,
    FsmTransition,
    MessageEvent,
    StateKind,
    event_key,
)
from repro.dsl.errors import GenerationError
from repro.dsl.types import AccessKind, ControllerKind, PerformAccess, Permission


@pytest.fixture
def fsm():
    fsm = ControllerFsm("test-cache", ControllerKind.CACHE, initial_state="I")
    fsm.add_state(FsmState("I", StateKind.STABLE, Permission.NONE, frozenset({"I"})))
    fsm.add_state(FsmState("S", StateKind.STABLE, Permission.READ, frozenset({"S"})))
    fsm.add_state(
        FsmState("IS_D", StateKind.TRANSIENT, Permission.NONE, frozenset({"I", "S"}),
                 aliases=("IS_D_alias",))
    )
    return fsm


class TestStates:
    def test_duplicate_state_rejected(self, fsm):
        with pytest.raises(GenerationError, match="duplicate"):
            fsm.add_state(FsmState("I", StateKind.STABLE))

    def test_unknown_state_lookup_rejected(self, fsm):
        with pytest.raises(GenerationError, match="unknown FSM state"):
            fsm.state("Z")

    def test_stable_and_transient_partitions(self, fsm):
        assert {s.name for s in fsm.stable_states()} == {"I", "S"}
        assert {s.name for s in fsm.transient_states()} == {"IS_D"}

    def test_resolve_state_handles_aliases(self, fsm):
        assert fsm.resolve_state("IS_D_alias") == "IS_D"
        assert fsm.resolve_state("I") == "I"
        with pytest.raises(GenerationError):
            fsm.resolve_state("nope")


class TestTransitions:
    def test_add_and_lookup(self, fsm):
        transition = FsmTransition(
            state="I",
            event=AccessEvent(AccessKind.LOAD),
            actions=(PerformAccess(),),
            next_state="IS_D",
        )
        fsm.add_transition(transition)
        assert fsm.has_transition("I", AccessEvent(AccessKind.LOAD))
        assert fsm.candidates("I", AccessEvent(AccessKind.LOAD)) == [transition]
        assert fsm.num_transitions == 1

    def test_unknown_source_state_rejected(self, fsm):
        with pytest.raises(GenerationError, match="unknown state"):
            fsm.add_transition(
                FsmTransition("Z", AccessEvent(AccessKind.LOAD), (), "I")
            )

    def test_unknown_target_state_rejected(self, fsm):
        with pytest.raises(GenerationError, match="unknown state"):
            fsm.add_transition(
                FsmTransition("I", AccessEvent(AccessKind.LOAD), (), "Z")
            )

    def test_duplicate_event_rejected(self, fsm):
        fsm.add_transition(FsmTransition("I", MessageEvent("Data"), (), "S"))
        with pytest.raises(GenerationError, match="duplicate transition"):
            fsm.add_transition(FsmTransition("I", MessageEvent("Data"), (), "I"))

    def test_guarded_variants_coexist(self, fsm):
        fsm.add_transition(FsmTransition("I", MessageEvent("Data", "ack_count_zero"), (), "S"))
        fsm.add_transition(
            FsmTransition("I", MessageEvent("Data", "ack_count_nonzero"), (), "IS_D")
        )
        assert len(fsm.candidates("I", MessageEvent("Data"))) == 2

    def test_stall_counts(self, fsm):
        fsm.add_transition(
            FsmTransition("IS_D", MessageEvent("Inv"), (), "IS_D", stall=True)
        )
        assert fsm.num_stalls == 1

    def test_messages_handled_in(self, fsm):
        fsm.add_transition(FsmTransition("IS_D", MessageEvent("Data"), (), "S"))
        fsm.add_transition(FsmTransition("IS_D", AccessEvent(AccessKind.LOAD), (), "IS_D", stall=True))
        assert fsm.messages_handled_in("IS_D") == {"Data"}


class TestEventKey:
    def test_access_and_message_keys_differ(self):
        assert event_key(AccessEvent(AccessKind.LOAD)) != event_key(MessageEvent("Load"))

    def test_guard_not_part_of_key(self):
        assert event_key(MessageEvent("Data", "ack_count_zero")) == event_key(
            MessageEvent("Data")
        )

    def test_unknown_event_type_rejected(self):
        class Weird:
            pass

        with pytest.raises(GenerationError):
            event_key(Weird())
