"""Cross-protocol generation checks (MESI, MOSI, unordered MSI, TSO-CC)."""

import pytest

from repro import protocols
from repro.core import ConcurrencyPolicy, GenerationConfig, generate
from repro.core.fsm import MessageEvent, StateKind


class TestEveryProtocolGenerates:
    @pytest.mark.parametrize("name", protocols.available_protocols())
    @pytest.mark.parametrize("config_label", ["nonstalling", "stalling"])
    def test_generation_succeeds(self, all_generated, name, config_label):
        generated = all_generated[(name, config_label)]
        assert generated.cache.num_states >= len(generated.cache.stable_states())
        assert generated.directory.num_states >= 1

    @pytest.mark.parametrize("name", protocols.available_protocols())
    def test_nonstalling_has_at_least_as_many_states(self, all_generated, name):
        nonstalling = all_generated[(name, "nonstalling")]
        stalling = all_generated[(name, "stalling")]
        assert nonstalling.cache.num_states >= stalling.cache.num_states

    @pytest.mark.parametrize("name", protocols.available_protocols())
    def test_nonstalling_stalls_fewer_message_cells(self, all_generated, name):
        nonstalling = all_generated[(name, "nonstalling")]
        stalling = all_generated[(name, "stalling")]

        def message_stalls(fsm):
            return sum(
                1 for t in fsm.transitions()
                if t.stall and isinstance(t.event, MessageEvent)
            )

        # The non-stalling configuration may still stall beyond the pending
        # transaction limit L, but never more than the stalling configuration.
        assert message_stalls(nonstalling.cache) < message_stalls(stalling.cache)

    def test_nonstalling_msi_never_stalls_messages(self, all_generated):
        cache = all_generated[("MSI", "nonstalling")].cache
        assert not any(
            t.stall for t in cache.transitions() if isinstance(t.event, MessageEvent)
        )

    @pytest.mark.parametrize("name", protocols.available_protocols())
    def test_every_transition_targets_known_state(self, all_generated, name):
        generated = all_generated[(name, "nonstalling")]
        for fsm in (generated.cache, generated.directory):
            names = set(fsm.state_names())
            for transition in fsm.transitions():
                assert transition.next_state in names

    @pytest.mark.parametrize("name", protocols.available_protocols())
    def test_every_transient_state_is_reachable(self, all_generated, name):
        generated = all_generated[(name, "nonstalling")]
        cache = generated.cache
        targets = {t.next_state for t in cache.transitions() if not t.stall}
        for state in cache.transient_states():
            assert state.name in targets, f"{state.name} unreachable"

    @pytest.mark.parametrize("name", protocols.available_protocols())
    def test_state_set_membership_only_names_stable_states(self, all_generated, name):
        generated = all_generated[(name, "nonstalling")]
        stable = {s.name for s in generated.cache.stable_states()}
        for state in generated.cache.states():
            assert set(state.state_sets) <= stable


class TestMesiSpecifics:
    def test_exclusive_state_generated(self, mesi_nonstalling):
        cache = mesi_nonstalling.cache
        assert cache.has_state("E")
        # Silent E->M upgrade on a store.
        from repro.core.fsm import AccessEvent
        from repro.dsl.types import AccessKind

        [transition] = cache.candidates("E", AccessEvent(AccessKind.STORE))
        assert transition.next_state == "M"
        assert not transition.stall

    def test_i_to_s_or_e_transient_accepts_both_responses(self, mesi_nonstalling):
        cache = mesi_nonstalling.cache
        load_transients = [
            s.name for s in cache.transient_states()
            if s.meta.get("start") == "I" and s.meta.get("stage") == "D"
            and not s.meta.get("chain")
        ]
        assert load_transients
        state = load_transients[0]
        assert cache.candidates(state, MessageEvent("Data"))
        assert cache.candidates(state, MessageEvent("Data_E"))

    def test_fwd_gets_handled_in_exclusive_chain_states(self, mesi_nonstalling):
        cache = mesi_nonstalling.cache
        # A cache waiting for its exclusive data can already observe a
        # forwarded GetS for the block (the directory granted E and then
        # served another reader); it must not be an unexpected message.
        load_transients = [
            s.name for s in cache.transient_states()
            if s.meta.get("start") == "I" and s.meta.get("stage") == "D"
            and not s.meta.get("chain")
        ]
        assert cache.candidates(load_transients[0], MessageEvent("Fwd_GetS"))


class TestMosiSpecifics:
    def test_renamed_forwards_present_in_generated_protocol(self, mosi_nonstalling):
        cache_messages = {
            t.event.message
            for t in mosi_nonstalling.cache.transitions()
            if isinstance(t.event, MessageEvent)
        }
        assert {"Fwd_GetS", "O_Fwd_GetS", "Fwd_GetM", "O_Fwd_GetM"} <= cache_messages

    def test_renamings_reported(self, mosi_nonstalling):
        assert mosi_nonstalling.renamings == {
            "Fwd_GetS": ["Fwd_GetS", "O_Fwd_GetS"],
            "Fwd_GetM": ["Fwd_GetM", "O_Fwd_GetM"],
        }

    def test_owner_keeps_block_on_o_fwd_gets(self, mosi_nonstalling):
        cache = mosi_nonstalling.cache
        [transition] = cache.candidates("O", MessageEvent("O_Fwd_GetS"))
        assert transition.next_state == "O"


class TestTsoCcSpecifics:
    def test_no_invalidation_message_anywhere(self, all_generated):
        generated = all_generated[("TSO-CC", "nonstalling")]
        for fsm in (generated.cache, generated.directory):
            for transition in fsm.transitions():
                if isinstance(transition.event, MessageEvent):
                    assert "Inv" not in transition.event.message

    def test_directory_has_no_sharer_state(self, all_generated):
        generated = all_generated[("TSO-CC", "nonstalling")]
        assert "S" not in generated.directory.state_names()


class TestConfigurationKnobs:
    def test_policy_constructors(self):
        assert GenerationConfig.stalling().policy is ConcurrencyPolicy.STALLING
        assert GenerationConfig.nonstalling().policy is ConcurrencyPolicy.NONSTALLING_IMMEDIATE
        assert (
            GenerationConfig.nonstalling(immediate=False).policy
            is ConcurrencyPolicy.NONSTALLING_DEFERRED
        )

    def test_deferred_policy_defers_all_responses(self, msi_spec):
        generated = generate(msi_spec, GenerationConfig.nonstalling(immediate=False))
        cache = generated.cache
        from repro.dsl.types import Send

        [transition] = cache.candidates("IS_D", MessageEvent("Inv"))
        # Under the deferred policy even the Inv-Ack is postponed to completion.
        assert not any(isinstance(a, Send) for a in transition.actions)

    def test_disable_merging_keeps_duplicate_states(self, msi_spec):
        merged = generate(msi_spec, GenerationConfig())
        unmerged = generate(msi_spec, GenerationConfig(merge_equivalent_states=False))
        assert unmerged.cache.num_states >= merged.cache.num_states

    def test_generation_without_validation(self, msi_spec):
        generated = generate(msi_spec, validate=False)
        assert generated.cache.num_states > 0
