"""Tests of the generated MSI protocol against the paper's description.

These tests pin the structural facts the paper states explicitly:

* the Step-2 State Sets of Section V-C;
* the Case-1 behaviour of Figure 1 (SM_AD + Inv -> IM_AD);
* the Case-2 behaviour of Figure 2 (IS_D + Inv -> IS_D_I with an immediate
  Inv-Ack and a deferred completion to I);
* the extra non-stalling states and the state merges reported around
  Table VI.
"""

import pytest

from repro.core import GenerationConfig, generate
from repro.core.fsm import AccessEvent, MessageEvent, StateKind
from repro.dsl.types import (
    AccessKind,
    PerformAccess,
    Permission,
    SaveRequestor,
    Send,
)


@pytest.fixture(scope="module")
def cache(msi_nonstalling):
    return msi_nonstalling.cache


class TestStableStates:
    def test_stable_states_preserved(self, cache):
        assert {s.name for s in cache.stable_states()} == {"I", "S", "M"}

    def test_permissions_preserved(self, cache):
        assert cache.state("I").permission is Permission.NONE
        assert cache.state("S").permission is Permission.READ
        assert cache.state("M").permission is Permission.READ_WRITE


class TestStep2StateSets:
    """Paper Section V-C lists the State Sets after Step 2."""

    @pytest.mark.parametrize(
        "state, expected_sets",
        [
            ("IS_D", {"I", "S"}),
            ("IM_AD", {"I", "M"}),
            ("IM_A", {"M"}),
            ("SM_AD", {"S", "M"}),
            ("SM_A", {"M"}),
            ("SI_A", {"S", "I"}),
            ("MI_A", {"M", "I"}),
        ],
    )
    def test_membership(self, cache, state, expected_sets):
        assert set(cache.state(state).state_sets) == expected_sets

    def test_transient_states_marked_transient(self, cache):
        for name in ("IS_D", "IM_AD", "IM_A", "SM_AD", "SM_A", "SI_A", "MI_A"):
            assert cache.state(name).kind is StateKind.TRANSIENT


class TestFigure1Case1:
    """S->M transaction with the other transaction ordered earlier."""

    def test_inv_in_smad_restarts_from_imad(self, cache):
        [transition] = cache.candidates("SM_AD", MessageEvent("Inv"))
        assert transition.next_state == "IM_AD"
        assert not transition.stall

    def test_inv_ack_sent_immediately(self, cache):
        [transition] = cache.candidates("SM_AD", MessageEvent("Inv"))
        sends = [a for a in transition.actions if isinstance(a, Send)]
        assert any(s.message == "Inv_Ack" for s in sends)

    def test_si_a_plus_inv_goes_to_stale_wait_state(self, cache):
        [transition] = cache.candidates("SI_A", MessageEvent("Inv"))
        assert transition.next_state == "II_A"

    def test_mi_a_plus_fwd_gets_goes_to_si_a(self, cache):
        [transition] = cache.candidates("MI_A", MessageEvent("Fwd_GetS"))
        assert transition.next_state == "SI_A"
        sends = [a for a in transition.actions if isinstance(a, Send)]
        assert len([s for s in sends if s.message == "Data"]) == 2


class TestFigure2Case2:
    """I->S transaction receiving an Invalidation: the ISI situation."""

    def test_isd_plus_inv_creates_isdi(self, cache):
        [transition] = cache.candidates("IS_D", MessageEvent("Inv"))
        assert transition.next_state == "IS_D_I"
        assert not transition.stall

    def test_isdi_belongs_only_to_state_set_i(self, cache):
        assert set(cache.state("IS_D_I").state_sets) == {"I"}

    def test_inv_ack_sent_immediately_in_immediate_mode(self, cache):
        [transition] = cache.candidates("IS_D", MessageEvent("Inv"))
        assert any(
            isinstance(a, Send) and a.message == "Inv_Ack" for a in transition.actions
        )

    def test_completion_performs_the_stalled_load_then_drops_to_i(self, cache):
        transitions = cache.candidates("IS_D_I", MessageEvent("Data"))
        assert transitions, "IS_D_I must accept the Data response"
        for transition in transitions:
            assert transition.next_state == "I"
            assert any(isinstance(a, PerformAccess) for a in transition.actions)


class TestTableVINonStallingStates:
    def test_extra_states_exist(self, cache):
        for name in ("IM_AD_S", "IM_AD_I", "IM_AD_SI", "SM_AD_S"):
            assert cache.has_state(name), name

    def test_expected_merges_recorded_as_aliases(self, cache):
        assert "SM_AD_I" in cache.state("IM_AD_I").aliases
        assert "SM_AD_SI" in cache.state("IM_AD_SI").aliases
        assert "SM_A_I" in cache.state("IM_A_I").aliases
        assert "SM_A_SI" in cache.state("IM_A_SI").aliases

    def test_resolve_state_accepts_aliases(self, cache):
        assert cache.resolve_state("SM_AD_I") == "IM_AD_I"

    def test_state_count_in_paper_range(self, cache):
        # Paper Section VI-B: 18-20 states for the non-stalling protocols.
        # Our generator keeps SM_A_S separate (it can still serve load hits),
        # landing at the top of that range.
        assert 18 <= cache.num_states <= 21

    def test_imad_does_not_stall_forwarded_requests(self, cache):
        for message in ("Fwd_GetS", "Fwd_GetM"):
            [transition] = cache.candidates("IM_AD", MessageEvent(message))
            assert not transition.stall

    def test_deferred_data_response_uses_saved_requestor(self, cache):
        [transition] = cache.candidates("IM_AD", MessageEvent("Fwd_GetS"))
        assert any(isinstance(a, SaveRequestor) for a in transition.actions)
        assert transition.next_state == "IM_AD_S"
        # The deferred Data is flushed when the own transaction completes.
        completion = cache.candidates("IM_AD_S", MessageEvent("Data"))
        deferred_sends = [
            a
            for t in completion
            for a in t.actions
            if isinstance(a, Send) and a.requestor_slot is not None
        ]
        assert deferred_sends, "completion of IM_AD_S must flush the deferred Data"


class TestAccessPermissionsInTransients:
    """Paper Step 4: an access hits in a transient state only if both the
    initial and the final stable state allow it."""

    def test_load_hits_in_smad(self, cache):
        [transition] = cache.candidates("SM_AD", AccessEvent(AccessKind.LOAD))
        assert not transition.stall

    def test_load_stalls_in_imad(self, cache):
        [transition] = cache.candidates("IM_AD", AccessEvent(AccessKind.LOAD))
        assert transition.stall

    def test_store_stalls_in_smad(self, cache):
        [transition] = cache.candidates("SM_AD", AccessEvent(AccessKind.STORE))
        assert transition.stall

    def test_replacement_stalls_in_transients(self, cache):
        for name in ("IS_D", "IM_AD", "SM_AD", "MI_A"):
            [transition] = cache.candidates(name, AccessEvent(AccessKind.REPLACEMENT))
            assert transition.stall

    def test_disabling_transient_accesses_stalls_smad_loads(self, msi_spec):
        config = GenerationConfig(allow_transient_accesses=False)
        generated = generate(msi_spec, config)
        [transition] = generated.cache.candidates("SM_AD", AccessEvent(AccessKind.LOAD))
        assert transition.stall


class TestStallingConfiguration:
    def test_stalling_protocol_has_primer_state_count(self, msi_stalling):
        assert msi_stalling.cache.num_states == 11

    def test_stalling_protocol_stalls_forwards_in_transients(self, msi_stalling):
        cache = msi_stalling.cache
        for state, message in [("IM_AD", "Fwd_GetS"), ("IM_AD", "Fwd_GetM"),
                               ("SM_AD", "Fwd_GetS"), ("IS_D", "Inv")]:
            [transition] = cache.candidates(state, MessageEvent(message))
            assert transition.stall, (state, message)

    def test_case1_still_handled_without_stalling(self, msi_stalling):
        # Stalling an earlier-ordered transaction could deadlock, so even the
        # stalling configuration responds immediately to Case-1 requests.
        [transition] = msi_stalling.cache.candidates("SM_AD", MessageEvent("Inv"))
        assert not transition.stall
        assert transition.next_state == "IM_AD"


class TestPendingTransactionLimit:
    def test_limit_forces_stall_beyond_chain_depth(self, msi_spec):
        config = GenerationConfig(pending_transaction_limit=1)
        generated = generate(msi_spec, config)
        cache = generated.cache
        # First later-ordered transaction is absorbed...
        [t1] = cache.candidates("IM_AD", MessageEvent("Fwd_GetS"))
        assert not t1.stall
        # ... but a second one (Inv in IM_AD_S) hits the limit and stalls.
        [t2] = cache.candidates(t1.next_state, MessageEvent("Inv"))
        assert t2.stall

    def test_directory_summary_counts(self, msi_nonstalling):
        summary = msi_nonstalling.summary()
        assert summary["cache_states"] == msi_nonstalling.cache.num_states
        assert summary["total_states"] == (
            msi_nonstalling.cache.num_states + msi_nonstalling.directory.num_states
        )
