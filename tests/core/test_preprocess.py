"""Tests for SSP preprocessing (forwarded-request renaming, Tables III/IV)."""

import pytest

from repro.core.preprocess import forwarded_arrival_states, preprocess
from repro.dsl.types import Dest, MessageClass, Send


class TestMsiNeedsNoRenaming:
    def test_no_renamings(self, msi_spec):
        result = preprocess(msi_spec)
        assert result.renamings == {}
        assert result.renamed_messages == []

    def test_each_forward_arrives_in_one_state(self, msi_spec):
        arrival = forwarded_arrival_states(msi_spec)
        assert arrival == {"Fwd_GetS": ["M"], "Fwd_GetM": ["M"], "Inv": ["S"]}

    def test_original_spec_untouched(self, msi_spec):
        before = set(msi_spec.messages.names())
        preprocess(msi_spec)
        assert set(msi_spec.messages.names()) == before


class TestMosiRenaming:
    """The MOSI example from the paper's Tables III and IV."""

    def test_fwd_gets_split_into_two_names(self, mosi_spec):
        result = preprocess(mosi_spec)
        assert result.renamings["Fwd_GetS"] == ["Fwd_GetS", "O_Fwd_GetS"]
        assert result.renamings["Fwd_GetM"] == ["Fwd_GetM", "O_Fwd_GetM"]

    def test_renamed_message_registered_in_catalog(self, mosi_spec):
        spec = preprocess(mosi_spec).spec
        assert "O_Fwd_GetS" in spec.messages
        assert spec.messages["O_Fwd_GetS"].renamed_from == "Fwd_GetS"
        assert spec.messages["O_Fwd_GetS"].message_class is MessageClass.FORWARD

    def test_cache_arrivals_rewritten(self, mosi_spec):
        spec = preprocess(mosi_spec).spec
        assert spec.cache_arrival_states("Fwd_GetS") == ["M"]
        assert spec.cache_arrival_states("O_Fwd_GetS") == ["O"]

    def test_directory_sends_rewritten_per_state(self, mosi_spec):
        spec = preprocess(mosi_spec).spec
        sent_from_m = _messages_sent_from(spec.directory, "M")
        sent_from_o = _messages_sent_from(spec.directory, "O")
        assert "Fwd_GetS" in sent_from_m and "O_Fwd_GetS" not in sent_from_m
        assert "O_Fwd_GetS" in sent_from_o and "Fwd_GetS" not in sent_from_o

    def test_invariant_holds_after_preprocessing(self, mosi_spec):
        spec = preprocess(mosi_spec).spec
        arrival = forwarded_arrival_states(spec)
        assert all(len(states) == 1 for states in arrival.values())

    def test_preprocessing_is_idempotent(self, mosi_spec):
        once = preprocess(mosi_spec).spec
        twice = preprocess(once)
        assert twice.renamings == {}


class TestMesiSilentClassExemption:
    """E and M are connected by a silent transition, so Fwd_GetS arriving in
    both does not need renaming -- the arrival class carries the same
    serialization information."""

    def test_no_renaming_for_mesi(self, mesi_spec):
        result = preprocess(mesi_spec)
        assert result.renamings == {}

    def test_fwd_gets_still_arrives_in_both(self, mesi_spec):
        spec = preprocess(mesi_spec).spec
        assert set(spec.cache_arrival_states("Fwd_GetS")) == {"E", "M"}


class TestDisambiguationErrors:
    def test_missing_recipient_state_raises(self, mosi_spec):
        from repro.core.preprocess import GenerationError
        from dataclasses import replace

        spec = mosi_spec.copy()
        # Strip both the recipient_state annotations and the owner_view hints
        # so preprocessing cannot tell which variant the directory must send.
        spec.directory.states = {
            name: replace(state, owner_view=None) for name, state in spec.directory.states.items()
        }
        for reaction in list(spec.directory.reactions):
            new_actions = tuple(
                a.renamed(a.message) if isinstance(a, Send) and a.recipient_state else a
                for a in reaction.actions
            )
            new_actions = tuple(
                replace(a, recipient_state=None) if isinstance(a, Send) else a
                for a in new_actions
            )
            spec.directory.replace_reaction(reaction, replace(reaction, actions=new_actions))
        with pytest.raises(GenerationError, match="cannot disambiguate"):
            preprocess(spec)


def _messages_sent_from(directory, state: str) -> set[str]:
    sent: set[str] = set()
    for reaction in directory.reactions_in(state):
        sent.update(a.message for a in reaction.actions if isinstance(a, Send))
    for transaction in directory.transactions_from(state):
        sent.update(a.message for a in transaction.all_actions() if isinstance(a, Send))
    return sent
