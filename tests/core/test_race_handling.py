"""Targeted checks of how the generated controllers resolve specific races.

Each test pins the generated behaviour for one concrete race that the paper's
machinery must get right (writeback vs. forward, owner downgrade vs. upgrade,
eviction vs. invalidation, ...).  They complement the exhaustive model
checking: when one of these regresses, the failure points directly at the
transition instead of at a long counterexample trace.
"""

import pytest

from repro.core.fsm import MessageEvent
from repro.dsl.types import Dest, Send


def _single(fsm, state, message):
    candidates = fsm.candidates(state, MessageEvent(message))
    assert len(candidates) == 1, f"expected one transition for {message} in {state}"
    return candidates[0]


class TestMsiWritebackRaces:
    """The owner evicts (PutM in flight) while the directory forwards requests to it."""

    def test_forwarded_gets_during_writeback(self, msi_nonstalling):
        cache = msi_nonstalling.cache
        transition = _single(cache, "MI_A", "Fwd_GetS")
        # The owner must supply data to both the reader and the directory and
        # then wait out its stale PutM as if it were evicting from S.
        sends = [a for a in transition.actions if isinstance(a, Send)]
        assert {s.to for s in sends} == {Dest.REQUESTOR, Dest.DIRECTORY}
        assert transition.next_state == "SI_A"

    def test_forwarded_getm_during_writeback(self, msi_nonstalling):
        cache = msi_nonstalling.cache
        transition = _single(cache, "MI_A", "Fwd_GetM")
        assert transition.next_state == "II_A"
        [send] = [a for a in transition.actions if isinstance(a, Send)]
        assert send.to is Dest.REQUESTOR and send.with_data

    def test_invalidation_during_puts(self, msi_nonstalling):
        cache = msi_nonstalling.cache
        transition = _single(cache, "SI_A", "Inv")
        assert transition.next_state == "II_A"
        assert any(
            isinstance(a, Send) and a.message == "Inv_Ack" for a in transition.actions
        )

    def test_stale_wait_state_completes_to_invalid(self, msi_nonstalling):
        cache = msi_nonstalling.cache
        transition = _single(cache, "II_A", "Put_Ack")
        assert transition.next_state == "I"


class TestMesiExclusiveRaces:
    def test_eviction_from_exclusive_vs_forwarded_gets(self, mesi_nonstalling):
        cache = mesi_nonstalling.cache
        # EI_A: PutE in flight; a forwarded GetS arrives because the directory
        # still believes this cache is the exclusive owner.
        ei_states = [
            s.name for s in cache.transient_states()
            if s.meta.get("start") == "E" and s.meta.get("final") == "I"
            and not s.meta.get("chain") and not s.meta.get("stale")
        ]
        assert ei_states, "expected the E->I eviction transient"
        transition = _single(cache, ei_states[0], "Fwd_GetS")
        assert transition.next_state.startswith("SI_") or transition.next_state.startswith("S")

    def test_exclusive_grant_chased_by_forward(self, mesi_nonstalling):
        cache = mesi_nonstalling.cache
        load_transients = [
            s.name for s in cache.transient_states()
            if s.meta.get("start") == "I" and s.meta.get("stage") == "D"
            and not s.meta.get("chain")
        ]
        transition = _single(cache, load_transients[0], "Fwd_GetM")
        # The forward is ordered after the exclusive grant: absorb it and
        # defer the data until the own transaction completes.
        assert not transition.stall
        target_state = cache.state(transition.next_state)
        assert target_state.state_sets == frozenset({"I"})


class TestMosiOwnerRaces:
    def test_owner_upgrade_vs_forwarded_gets(self, mosi_nonstalling):
        cache = mosi_nonstalling.cache
        om_states = [
            s.name for s in cache.transient_states()
            if s.meta.get("start") == "O" and s.meta.get("final") == "M"
            and not s.meta.get("chain") and not s.meta.get("stale")
            and s.meta.get("stage") == "AC"
        ]
        assert om_states, "expected the O->M upgrade transient"
        transition = _single(cache, om_states[0], "O_Fwd_GetS")
        # Earlier-ordered reader: supply data immediately and keep upgrading.
        assert transition.next_state == om_states[0]
        assert any(isinstance(a, Send) and a.with_data for a in transition.actions)

    def test_owner_upgrade_loses_to_other_writer(self, mosi_nonstalling):
        cache = mosi_nonstalling.cache
        om_states = [
            s.name for s in cache.transient_states()
            if s.meta.get("start") == "O" and s.meta.get("final") == "M"
            and not s.meta.get("chain") and not s.meta.get("stale")
            and s.meta.get("stage") == "AC"
        ]
        transition = _single(cache, om_states[0], "O_Fwd_GetM")
        # The other writer was ordered first: return the dirty data to the
        # directory and restart the store as if from I.
        [send] = [a for a in transition.actions if isinstance(a, Send)]
        assert send.to is Dest.DIRECTORY and send.with_data
        target = cache.state(transition.next_state)
        assert target.meta.get("start") == "I" and target.meta.get("final") == "M"

    def test_owner_eviction_vs_forwarded_gets(self, mosi_nonstalling):
        cache = mosi_nonstalling.cache
        oi_states = [
            s.name for s in cache.transient_states()
            if s.meta.get("start") == "O" and s.meta.get("final") == "I"
            and not s.meta.get("chain") and not s.meta.get("stale")
        ]
        assert oi_states
        transition = _single(cache, oi_states[0], "O_Fwd_GetS")
        # The owner still owes the reader data even though it is evicting.
        assert any(isinstance(a, Send) and a.with_data for a in transition.actions)


class TestUpgradeRace:
    def test_losing_upgrade_expects_data_instead_of_ack_count(self, all_generated):
        cache = all_generated[("MSI-Upgrade", "nonstalling")].cache
        # After the Case-1 restart the cache sits in IM_AD and must accept a
        # Data response (the directory reinterprets its Upgrade as a GetM).
        assert cache.candidates("IM_AD", MessageEvent("Data"))
        # The winning-upgrade path still accepts the AckCount response.
        upgrade_transients = [
            s.name for s in cache.transient_states()
            if s.meta.get("start") == "S" and s.meta.get("stage") == "AC"
            and not s.meta.get("chain")
        ]
        assert cache.candidates(upgrade_transients[0], MessageEvent("AckCount"))
