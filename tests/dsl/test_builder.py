"""Unit tests for the fluent SSP builders."""

import pytest

from repro.dsl.builder import CacheSpecBuilder, DirectorySpecBuilder, ProtocolBuilder
from repro.dsl.errors import SpecError
from repro.dsl.types import AccessKind, ControllerKind, Dest, Permission, Send


def _minimal_cache():
    cache = CacheSpecBuilder(initial="I")
    cache.state("I", Permission.NONE)
    cache.state("S", Permission.READ)
    cache.state("M", Permission.READ_WRITE)
    return cache


class TestStateDeclarations:
    def test_duplicate_state_rejected(self):
        cache = _minimal_cache()
        with pytest.raises(SpecError, match="duplicate state"):
            cache.state("I")

    def test_unknown_initial_state_rejected(self):
        cache = CacheSpecBuilder(initial="X")
        cache.state("I")
        with pytest.raises(SpecError, match="initial state"):
            cache.build()

    def test_kind_is_set(self):
        assert _minimal_cache().build().kind is ControllerKind.CACHE
        directory = DirectorySpecBuilder(initial="I")
        directory.state("I")
        assert directory.build().kind is ControllerKind.DIRECTORY


class TestTransactionBuilder:
    def test_simple_transaction(self):
        cache = _minimal_cache()
        (
            cache.on_access("I", AccessKind.LOAD)
            .request("GetS")
            .await_stage("D")
            .when("Data", receives_data=True).complete("S")
            .done()
        )
        spec = cache.build()
        transaction = spec.transaction_for("I", AccessKind.LOAD)
        assert transaction.request.message == "GetS"
        assert transaction.final_state == "S"
        assert transaction.stages[0].name == "D"
        assert transaction.stages[0].triggers[0].receives_data

    def test_when_before_await_stage_rejected(self):
        cache = _minimal_cache()
        builder = cache.on_access("I", AccessKind.LOAD).request("GetS")
        with pytest.raises(SpecError, match="await_stage"):
            builder.when("Data")

    def test_duplicate_stage_rejected(self):
        cache = _minimal_cache()
        builder = cache.on_access("I", AccessKind.LOAD).request("GetS").await_stage("D")
        with pytest.raises(SpecError, match="duplicate stage"):
            builder.await_stage("D")

    def test_missing_final_state_rejected(self):
        cache = _minimal_cache()
        builder = (
            cache.on_access("I", AccessKind.LOAD)
            .request("GetS")
            .await_stage("D")
            .when("Data").goto_stage("D")
        )
        with pytest.raises(SpecError, match="no final state"):
            builder.done()

    def test_silent_transaction_with_completes_to(self):
        cache = _minimal_cache()
        cache.on_access("M", AccessKind.STORE).completes_to("M").done()
        transaction = cache.build().transaction_for("M", AccessKind.STORE)
        assert transaction.is_silent
        assert transaction.final_state == "M"

    def test_stay_loops_back_to_current_stage(self):
        cache = _minimal_cache()
        (
            cache.on_access("I", AccessKind.STORE)
            .request("GetM")
            .await_stage("AD")
            .when("Data", receives_data=True).complete("M")
            .when("Inv_Ack", counts_ack=True).stay()
            .done()
        )
        transaction = cache.build().transaction_for("I", AccessKind.STORE)
        inv_ack = [t for t in transaction.stages[0].triggers if t.message == "Inv_Ack"][0]
        assert inv_ack.next_stage == "AD"

    def test_unknown_state_reference_rejected(self):
        cache = _minimal_cache()
        with pytest.raises(SpecError, match="unknown state"):
            cache.on_access("Z", AccessKind.LOAD)

    def test_multiple_final_states_infer_least_permission(self):
        cache = CacheSpecBuilder(initial="I")
        cache.state("I", Permission.NONE)
        cache.state("S", Permission.READ)
        cache.state("E", Permission.READ_WRITE)
        (
            cache.on_access("I", AccessKind.LOAD)
            .request("GetS")
            .await_stage("D")
            .when("Data", receives_data=True).complete("S")
            .when("Data_E", receives_data=True).complete("E")
            .done()
        )
        transaction = cache.build().transaction_for("I", AccessKind.LOAD)
        assert transaction.final_state == "S"

    def test_final_state_permission_tie_breaks_deterministically(self):
        """Equal-permission completion states (MESI's S/E) must not leave the
        nominal final state -- and with it every derived transient name and
        exported artifact -- to set iteration order under hash randomization;
        the tie breaks toward the name sorting last (S over E -> ``IS_D``)."""
        cache = CacheSpecBuilder(initial="I")
        cache.state("I", Permission.NONE)
        cache.state("S", Permission.READ)
        cache.state("E", Permission.READ)
        (
            cache.on_access("I", AccessKind.LOAD)
            .request("GetS")
            .await_stage("D")
            .when("Data", receives_data=True).complete("S")
            .when("Data_E", receives_data=True).complete("E")
            .done()
        )
        transaction = cache.build().transaction_for("I", AccessKind.LOAD)
        assert transaction.final_state == "S"


class TestReactions:
    def test_react_registers_reaction(self):
        cache = _minimal_cache()
        cache.react("S", "Inv", "I", Send("Inv_Ack", Dest.REQUESTOR))
        spec = cache.build()
        [reaction] = spec.reactions_for("S", "Inv")
        assert reaction.next_state == "I"
        assert reaction.actions[0].message == "Inv_Ack"

    def test_react_unknown_state_rejected(self):
        cache = _minimal_cache()
        with pytest.raises(SpecError, match="unknown state"):
            cache.react("Z", "Inv", "I")


class TestProtocolBuilder:
    def test_message_declarations(self):
        protocol = ProtocolBuilder("Test")
        protocol.request("GetS")
        protocol.forward("Inv")
        protocol.response("Data", carries_data=True)
        assert "GetS" in protocol.messages
        assert protocol.messages["Data"].carries_data

    def test_build_assembles_protocol_spec(self):
        protocol = ProtocolBuilder("Test", ordered_network=False, description="d")
        protocol.request("GetS")
        protocol.response("Data", carries_data=True)
        cache = _minimal_cache()
        directory = DirectorySpecBuilder(initial="I")
        directory.state("I")
        spec = protocol.build(cache, directory)
        assert spec.name == "Test"
        assert spec.ordered_network is False
        assert spec.cache.kind is ControllerKind.CACHE
