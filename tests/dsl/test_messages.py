"""Unit tests for MessageType / MessageCatalog."""

import pytest

from repro.dsl.errors import SpecError
from repro.dsl.messages import MessageCatalog, MessageType
from repro.dsl.types import MessageClass


@pytest.fixture
def catalog():
    catalog = MessageCatalog()
    catalog.declare("GetS", MessageClass.REQUEST)
    catalog.declare("Fwd_GetS", MessageClass.FORWARD)
    catalog.declare("Data", MessageClass.RESPONSE, carries_data=True, carries_ack_count=True)
    return catalog


class TestCatalogBasics:
    def test_contains_and_getitem(self, catalog):
        assert "GetS" in catalog
        assert catalog["Data"].carries_data

    def test_unknown_message_raises(self, catalog):
        with pytest.raises(SpecError, match="unknown message"):
            catalog["Nope"]

    def test_duplicate_declaration_rejected(self, catalog):
        with pytest.raises(SpecError, match="duplicate"):
            catalog.declare("GetS", MessageClass.REQUEST)

    def test_len_and_iteration(self, catalog):
        assert len(catalog) == 3
        assert {m.name for m in catalog} == {"GetS", "Fwd_GetS", "Data"}

    def test_by_class_partitions(self, catalog):
        assert [m.name for m in catalog.requests] == ["GetS"]
        assert [m.name for m in catalog.forwards] == ["Fwd_GetS"]
        assert [m.name for m in catalog.responses] == ["Data"]

    def test_copy_is_independent(self, catalog):
        copy = catalog.copy()
        copy.declare("GetM", MessageClass.REQUEST)
        assert "GetM" in copy
        assert "GetM" not in catalog


class TestRenaming:
    def test_derive_renamed_records_origin(self, catalog):
        renamed = catalog.derive_renamed("Fwd_GetS", "O_Fwd_GetS")
        assert renamed.renamed_from == "Fwd_GetS"
        assert renamed.message_class is MessageClass.FORWARD
        assert "O_Fwd_GetS" in catalog

    def test_derive_renamed_is_idempotent(self, catalog):
        first = catalog.derive_renamed("Fwd_GetS", "O_Fwd_GetS")
        second = catalog.derive_renamed("Fwd_GetS", "O_Fwd_GetS")
        assert first is second
        assert len(catalog) == 4

    def test_message_type_rename_helper(self):
        original = MessageType("Fwd_GetS", MessageClass.FORWARD)
        renamed = original.rename("O_Fwd_GetS")
        assert renamed.name == "O_Fwd_GetS"
        assert renamed.renamed_from == "Fwd_GetS"

    def test_virtual_channel_follows_class(self, catalog):
        assert catalog["GetS"].virtual_channel == MessageClass.REQUEST.virtual_channel
        assert catalog["Data"].virtual_channel == MessageClass.RESPONSE.virtual_channel
