"""Unit tests for the SSP data model (states, transactions, reactions, specs)."""

import pytest

from repro.dsl.errors import SpecError
from repro.dsl.ssp import AwaitStage, Reaction, Transaction, Trigger
from repro.dsl.types import AccessKind, Dest, Send


def _simple_transaction(**overrides):
    defaults = dict(
        start_state="I",
        initiator=AccessKind.LOAD,
        final_state="S",
        request=Send("GetS", Dest.DIRECTORY),
        stages=(
            AwaitStage(
                name="D",
                triggers=(Trigger(message="Data", receives_data=True),),
            ),
        ),
    )
    defaults.update(overrides)
    return Transaction(**defaults)


class TestTrigger:
    def test_invalid_condition_rejected(self):
        with pytest.raises(SpecError, match="unknown trigger condition"):
            Trigger(message="Data", condition="sometimes")

    def test_completes_when_no_next_stage(self):
        assert Trigger(message="Data").completes
        assert not Trigger(message="Data", next_stage="A").completes


class TestAwaitStage:
    def test_empty_stage_rejected(self):
        with pytest.raises(SpecError, match="no triggers"):
            AwaitStage(name="D", triggers=())

    def test_trigger_messages(self):
        stage = AwaitStage(
            name="AD",
            triggers=(Trigger(message="Data"), Trigger(message="Inv_Ack", next_stage="AD")),
        )
        assert stage.trigger_messages() == {"Data", "Inv_Ack"}


class TestTransaction:
    def test_duplicate_stage_names_rejected(self):
        stage = AwaitStage(name="D", triggers=(Trigger(message="Data"),))
        with pytest.raises(SpecError, match="duplicate"):
            _simple_transaction(stages=(stage, stage))

    def test_unknown_next_stage_rejected(self):
        stage = AwaitStage(
            name="D", triggers=(Trigger(message="Data", next_stage="missing"),)
        )
        with pytest.raises(SpecError, match="unknown stage"):
            _simple_transaction(stages=(stage,))

    def test_silent_transaction(self):
        silent = Transaction(
            start_state="E", initiator=AccessKind.STORE, final_state="M"
        )
        assert silent.is_silent
        assert silent.first_stage is None

    def test_stage_lookup(self):
        transaction = _simple_transaction()
        assert transaction.stage("D").name == "D"
        assert transaction.stage_index("D") == 0
        with pytest.raises(SpecError):
            transaction.stage("Z")

    def test_all_actions_include_request_and_triggers(self):
        extra = Send("Inv_Ack", Dest.REQUESTOR)
        transaction = _simple_transaction(
            stages=(
                AwaitStage(name="D", triggers=(Trigger(message="Data", actions=(extra,)),)),
            )
        )
        actions = transaction.all_actions()
        assert Send("GetS", Dest.DIRECTORY) in actions
        assert extra in actions


class TestReaction:
    def test_invalid_guard_rejected(self):
        with pytest.raises(SpecError, match="unknown reaction guard"):
            Reaction(state="S", message="Inv", next_state="I", guard="maybe")

    def test_valid_guards_accepted(self):
        for guard in (None, "from_owner", "last_sharer", "not_from_sharer"):
            Reaction(state="S", message="Inv", next_state="I", guard=guard)


class TestControllerSpecQueries:
    def test_transaction_lookup(self, msi_spec):
        cache = msi_spec.cache
        assert cache.transaction_for("I", AccessKind.LOAD) is not None
        assert cache.transaction_for("I", AccessKind.REPLACEMENT) is None

    def test_request_for_access(self, msi_spec):
        cache = msi_spec.cache
        assert cache.request_for_access("I", AccessKind.STORE) == "GetM"
        assert cache.request_for_access("S", AccessKind.STORE) == "GetM"
        assert cache.request_for_access("M", AccessKind.REPLACEMENT) == "PutM"

    def test_reactions_for(self, msi_spec):
        cache = msi_spec.cache
        assert len(cache.reactions_for("S", "Inv")) == 1
        assert cache.reactions_for("I", "Inv") == []

    def test_messages_handled_in(self, msi_spec):
        directory = msi_spec.directory
        assert {"GetS", "GetM", "PutS"} <= directory.messages_handled_in("S")

    def test_accesses_starting_transactions(self, msi_spec):
        cache = msi_spec.cache
        assert cache.accesses_starting_transactions("I") == {AccessKind.LOAD, AccessKind.STORE}
        assert AccessKind.REPLACEMENT in cache.accesses_starting_transactions("M")

    def test_state_lookup_error(self, msi_spec):
        with pytest.raises(SpecError, match="unknown state"):
            msi_spec.cache.state("Z")


class TestProtocolSpecQueries:
    def test_forwarded_messages(self, msi_spec):
        assert set(msi_spec.forwarded_messages()) == {"Fwd_GetS", "Fwd_GetM", "Inv"}

    def test_request_messages(self, msi_spec):
        assert set(msi_spec.request_messages()) == {"GetS", "GetM", "PutS", "PutM"}

    def test_cache_arrival_states(self, msi_spec, mosi_spec):
        assert msi_spec.cache_arrival_states("Inv") == ["S"]
        assert msi_spec.cache_arrival_states("Fwd_GetS") == ["M"]
        assert set(mosi_spec.cache_arrival_states("Fwd_GetS")) == {"M", "O"}

    def test_copy_is_deep_enough(self, msi_spec):
        copy = msi_spec.copy()
        copy.cache.states.pop("M")
        assert "M" in msi_spec.cache.states
