"""Unit tests for the permission / access / action vocabulary."""

import pytest

from repro.dsl.types import (
    AccessKind,
    AddRequestorToSharers,
    ClearSharers,
    CopyDataFromMessage,
    Dest,
    IncrementAcksReceived,
    MessageClass,
    PerformAccess,
    Permission,
    SaveRequestor,
    Send,
    SetAcksExpectedFromMessage,
    StallMarker,
    describe_action,
    is_data_send,
)


class TestPermission:
    def test_ordering(self):
        assert Permission.NONE < Permission.READ < Permission.READ_WRITE

    def test_none_allows_nothing(self):
        assert not Permission.NONE.allows(AccessKind.LOAD)
        assert not Permission.NONE.allows(AccessKind.STORE)

    def test_read_allows_loads_only(self):
        assert Permission.READ.allows(AccessKind.LOAD)
        assert not Permission.READ.allows(AccessKind.STORE)

    def test_read_write_allows_loads_and_stores(self):
        assert Permission.READ_WRITE.allows(AccessKind.LOAD)
        assert Permission.READ_WRITE.allows(AccessKind.STORE)

    @pytest.mark.parametrize("permission", list(Permission))
    def test_replacement_never_hits(self, permission):
        assert not permission.allows(AccessKind.REPLACEMENT)

    def test_min_is_meet(self):
        assert min(Permission.READ, Permission.READ_WRITE) is Permission.READ
        assert min(Permission.NONE, Permission.READ) is Permission.NONE


class TestMessageClass:
    def test_virtual_channels_are_distinct(self):
        channels = {mc.virtual_channel for mc in MessageClass}
        assert len(channels) == len(MessageClass)

    def test_request_is_channel_zero(self):
        assert MessageClass.REQUEST.virtual_channel == 0


class TestSend:
    def test_renamed_preserves_fields(self):
        send = Send("Fwd_GetS", Dest.OWNER, with_data=True, recipient_state="M")
        renamed = send.renamed("O_Fwd_GetS")
        assert renamed.message == "O_Fwd_GetS"
        assert renamed.with_data is True
        assert renamed.recipient_state == "M"
        assert renamed.to is Dest.OWNER

    def test_is_data_send(self):
        assert is_data_send(Send("Data", Dest.REQUESTOR, with_data=True))
        assert not is_data_send(Send("Inv_Ack", Dest.REQUESTOR))
        assert not is_data_send(CopyDataFromMessage())

    def test_actions_are_hashable(self):
        assert hash(Send("Data", Dest.REQUESTOR)) == hash(Send("Data", Dest.REQUESTOR))
        assert Send("Data", Dest.REQUESTOR) != Send("Data", Dest.DIRECTORY)


class TestDescribeAction:
    @pytest.mark.parametrize(
        "action, fragment",
        [
            (Send("Data", Dest.REQUESTOR, with_data=True), "send Data"),
            (Send("Data", Dest.REQUESTOR, with_data=True), "+Data"),
            (Send("Data", Dest.REQUESTOR, requestor_slot=1), "saved requestor[1]"),
            (AddRequestorToSharers(), "Sharers += requestor"),
            (ClearSharers(), "Sharers := {}"),
            (SetAcksExpectedFromMessage(), "acksExpected"),
            (IncrementAcksReceived(), "acksReceived"),
            (SaveRequestor(slot=2), "[2]"),
            (PerformAccess(), "pending access"),
            (StallMarker(), "stall"),
            (CopyDataFromMessage(), "copy data"),
        ],
    )
    def test_descriptions_mention_key_detail(self, action, fragment):
        assert fragment in describe_action(action)
