"""Unit tests for atomic-model SSP validation."""

import pytest

from repro import protocols
from repro.dsl.builder import CacheSpecBuilder, DirectorySpecBuilder, ProtocolBuilder
from repro.dsl.errors import ValidationError
from repro.dsl.types import AccessKind, Dest, Permission, Send
from repro.dsl.validation import validate_protocol


def _skeleton(declare_forward=True):
    protocol = ProtocolBuilder("Test")
    protocol.request("GetS")
    protocol.request("GetM")
    if declare_forward:
        protocol.forward("Inv")
    protocol.response("Data", carries_data=True)

    cache = CacheSpecBuilder(initial="I")
    cache.state("I", Permission.NONE)
    cache.state("S", Permission.READ)
    cache.state("M", Permission.READ_WRITE)
    (
        cache.on_access("I", AccessKind.LOAD)
        .request("GetS")
        .await_stage("D")
        .when("Data", receives_data=True).complete("S")
        .done()
    )
    (
        cache.on_access("I", AccessKind.STORE)
        .request("GetM")
        .await_stage("D")
        .when("Data", receives_data=True).complete("M")
        .done()
    )
    (
        cache.on_access("S", AccessKind.STORE)
        .request("GetM")
        .await_stage("D")
        .when("Data", receives_data=True).complete("M")
        .done()
    )

    directory = DirectorySpecBuilder(initial="I")
    directory.state("I")
    directory.react("I", "GetS", "I", Send("Data", Dest.REQUESTOR, with_data=True))
    directory.react("I", "GetM", "I", Send("Data", Dest.REQUESTOR, with_data=True))
    return protocol, cache, directory


class TestValidProtocolsPass:
    @pytest.mark.parametrize("name", protocols.available_protocols())
    def test_bundled_protocols_validate(self, name):
        report = validate_protocol(protocols.load(name), strict=True)
        assert report.ok

    def test_skeleton_validates(self):
        protocol, cache, directory = _skeleton()
        report = validate_protocol(protocol.build(cache, directory), strict=False)
        assert report.ok


class TestInvalidProtocolsFail:
    def test_undeclared_awaited_message(self):
        protocol, cache, directory = _skeleton()
        (
            cache.on_access("M", AccessKind.REPLACEMENT)
            .request("GetS")
            .await_stage("A")
            .when("Nonexistent_Ack").complete("I")
            .done()
        )
        spec = protocol.build(cache, directory)
        with pytest.raises(ValidationError, match="undeclared message"):
            validate_protocol(spec)

    def test_cache_sending_forwarded_request_rejected(self):
        protocol, cache, directory = _skeleton()
        cache.react("M", "Inv", "I", Send("Inv", Dest.REQUESTOR))
        spec = protocol.build(cache, directory)
        report = validate_protocol(spec, strict=False)
        assert any("only the directory may send forwards" in e for e in report.errors)

    def test_directory_issuing_request_rejected(self):
        protocol, cache, directory = _skeleton()
        directory.react("I", "Data", "I", Send("GetM", Dest.REQUESTOR))
        spec = protocol.build(cache, directory)
        report = validate_protocol(spec, strict=False)
        assert any("only caches may issue requests" in e for e in report.errors)

    def test_strict_mode_raises(self):
        protocol, cache, directory = _skeleton()
        cache.react("M", "Inv", "I", Send("Inv", Dest.REQUESTOR))
        with pytest.raises(ValidationError):
            validate_protocol(protocol.build(cache, directory), strict=True)


class TestWarnings:
    def test_unsatisfiable_access_warns(self):
        protocol, cache, directory = _skeleton()
        # A store in S neither hits nor starts a transaction in this skeleton
        # variant: drop the S-store transaction by rebuilding without it.
        protocol2, cache2, directory2 = _skeleton()
        cache2._transactions = [
            t for t in cache2._transactions
            if not (t.start_state == "S" and t.initiator is AccessKind.STORE)
        ]
        report = validate_protocol(protocol2.build(cache2, directory2), strict=False)
        assert any("neither hits nor starts" in w for w in report.warnings)

    def test_unhandled_get_in_initial_directory_state_warns(self):
        protocol, cache, directory = _skeleton()
        directory._reactions = [r for r in directory._reactions if r.message != "GetM"]
        report = validate_protocol(protocol.build(cache, directory), strict=False)
        assert any("does not handle request" in w for w in report.warnings)

    def test_report_raise_if_failed_includes_all_errors(self):
        protocol, cache, directory = _skeleton()
        cache.react("M", "Inv", "I", Send("Inv", Dest.REQUESTOR))
        cache.react("S", "Inv", "I", Send("Inv", Dest.REQUESTOR))
        report = validate_protocol(protocol.build(cache, directory), strict=False)
        assert len(report.errors) >= 2
        with pytest.raises(ValidationError):
            report.raise_if_failed()
