"""Tests for the bundled protocol SSPs and the registry."""

import pytest

from repro import protocols
from repro.dsl.types import AccessKind, Permission
from repro.dsl.validation import validate_protocol


class TestRegistry:
    def test_available_protocols(self):
        assert set(protocols.available_protocols()) == {
            "MSI", "MESI", "MOSI", "MSI-Upgrade", "MSI-Unordered", "TSO-CC",
        }

    def test_load_builds_fresh_spec_each_time(self):
        first = protocols.load("MSI")
        second = protocols.load("MSI")
        assert first is not second
        assert first.name == second.name == "MSI"

    def test_unknown_protocol_rejected(self):
        with pytest.raises(KeyError, match="unknown protocol"):
            protocols.load("MOESIF")


class TestMsiSpec:
    """The MSI SSP transcribes the paper's Tables I and II."""

    def test_stable_states_and_permissions(self, msi_spec):
        cache = msi_spec.cache
        assert cache.state("I").permission is Permission.NONE
        assert cache.state("S").permission is Permission.READ
        assert cache.state("M").permission is Permission.READ_WRITE

    def test_table1_transactions(self, msi_spec):
        cache = msi_spec.cache
        assert cache.request_for_access("I", AccessKind.LOAD) == "GetS"
        assert cache.request_for_access("I", AccessKind.STORE) == "GetM"
        assert cache.request_for_access("S", AccessKind.STORE) == "GetM"
        assert cache.request_for_access("S", AccessKind.REPLACEMENT) == "PutS"
        assert cache.request_for_access("M", AccessKind.REPLACEMENT) == "PutM"

    def test_table1_forwarded_request_reactions(self, msi_spec):
        cache = msi_spec.cache
        assert cache.reactions_for("S", "Inv")[0].next_state == "I"
        assert cache.reactions_for("M", "Fwd_GetS")[0].next_state == "S"
        assert cache.reactions_for("M", "Fwd_GetM")[0].next_state == "I"

    def test_table2_directory_states(self, msi_spec):
        directory = msi_spec.directory
        assert set(directory.state_names()) == {"I", "S", "M"}
        assert directory.state("M").owner_view == "M"

    def test_table2_directory_behaviour(self, msi_spec):
        directory = msi_spec.directory
        assert directory.reactions_for("I", "GetS")[0].next_state == "S"
        assert directory.reactions_for("S", "GetM")[0].next_state == "M"
        # M + GetS waits for the owner's data.
        transaction = directory.transaction_for("M", "GetS")
        assert transaction is not None and transaction.final_state == "S"

    def test_ordered_network_assumption(self, msi_spec):
        assert msi_spec.ordered_network is True


class TestOtherSpecs:
    def test_mesi_has_exclusive_state_with_silent_upgrade(self, mesi_spec):
        cache = mesi_spec.cache
        transaction = cache.transaction_for("E", AccessKind.STORE)
        assert transaction is not None and transaction.is_silent
        assert transaction.final_state == "M"

    def test_mosi_owned_state_has_read_permission(self, mosi_spec):
        assert mosi_spec.cache.state("O").permission is Permission.READ

    def test_mosi_forwards_arrive_in_two_states(self, mosi_spec):
        assert set(mosi_spec.cache_arrival_states("Fwd_GetS")) == {"M", "O"}

    def test_msi_unordered_declares_unordered_network(self):
        spec = protocols.load("MSI-Unordered")
        assert spec.ordered_network is False
        # No eviction path by design.
        assert spec.cache.transaction_for("M", AccessKind.REPLACEMENT) is None

    def test_msi_upgrade_uses_upgrade_from_s(self):
        spec = protocols.load("MSI-Upgrade")
        assert spec.cache.request_for_access("S", AccessKind.STORE) == "Upgrade"
        assert spec.cache.request_for_access("I", AccessKind.STORE) == "GetM"

    def test_tso_cc_has_no_invalidation_and_no_sharer_state(self):
        spec = protocols.load("TSO-CC")
        assert "Inv" not in spec.messages
        assert "S" not in spec.directory.state_names()

    @pytest.mark.parametrize("name", protocols.available_protocols())
    def test_every_spec_validates(self, name):
        assert validate_protocol(protocols.load(name), strict=True).ok


class TestPrimerBaselines:
    def test_nonstalling_baseline_has_18_states(self):
        baseline = protocols.primer.nonstalling_msi_cache()
        assert baseline.num_states == 18

    def test_stalling_baseline_has_primer_states(self):
        baseline = protocols.primer.stalling_msi_cache()
        assert baseline.num_states == 11 - 1  # II_A does not exist when Inv stalls in SI_A

    def test_baseline_stall_cells_include_imad_forwards(self):
        baseline = protocols.primer.nonstalling_msi_cache()
        stalls = baseline.stall_cells()
        assert ("IM_AD", "Fwd_GetS") in stalls
        assert ("SM_AD", "Fwd_GetM") in stalls

    def test_baseline_cell_lookup(self):
        baseline = protocols.primer.nonstalling_msi_cache()
        assert baseline.cell("M", "Fwd_GetM") == ("send Data to Req", "I")
        assert baseline.cell("I", "Fwd_GetM") is None

    def test_transition_count_positive(self):
        baseline = protocols.primer.nonstalling_msi_cache()
        assert baseline.transitions() > 30
