"""Unit tests for FSM interpretation: guards, sends, access semantics."""

import pytest

from repro.core.fsm import FsmTransition, MessageEvent
from repro.dsl.types import (
    AccessKind,
    AddRequestorToSharers,
    ClearSharers,
    CopyDataFromMessage,
    Dest,
    IncrementAcksReceived,
    PerformAccess,
    ResetAckCounters,
    SaveRequestor,
    Send,
    SetAcksExpectedFromMessage,
)
from repro.system.executor import (
    ProtocolRuntimeError,
    execute_cache_transition,
    execute_directory_transition,
    select_transition,
)
from repro.system.message import DIRECTORY_ID, Message
from repro.system.node_state import CacheNodeState, DirectoryNodeState


def _transition(actions=(), next_state="X", stall=False, guard=None):
    return FsmTransition(
        state="S0", event=MessageEvent("Data", guard), actions=tuple(actions),
        next_state=next_state, stall=stall,
    )


class TestGuardEvaluation:
    def _select(self, fsm_like_cache, message, cache):
        # Use select_transition indirectly through guard evaluation by building
        # a tiny FSM on the fly.
        from repro.core.fsm import ControllerFsm, FsmState, StateKind
        from repro.dsl.types import ControllerKind, Permission

        fsm = ControllerFsm("t", ControllerKind.CACHE, "S0")
        fsm.add_state(FsmState("S0", StateKind.TRANSIENT, Permission.NONE))
        fsm.add_state(FsmState("X", StateKind.STABLE, Permission.NONE))
        for t in fsm_like_cache:
            fsm.add_transition(t)
        return select_transition(fsm, "S0", MessageEvent("Data"), message=message, cache=cache)

    def test_ack_count_zero_accounts_for_early_acks(self):
        zero = _transition(next_state="X", guard="ack_count_zero")
        nonzero = _transition(next_state="S0", guard="ack_count_nonzero")
        cache = CacheNodeState(fsm_state="S0", acks_received=2)
        message = Message("Data", src=DIRECTORY_ID, dst=0, ack_count=2)
        chosen = self._select([zero, nonzero], message, cache)
        assert chosen.event.guard == "ack_count_zero"

    def test_ack_count_nonzero_when_acks_outstanding(self):
        zero = _transition(next_state="X", guard="ack_count_zero")
        nonzero = _transition(next_state="S0", guard="ack_count_nonzero")
        cache = CacheNodeState(fsm_state="S0", acks_received=0)
        message = Message("Data", src=DIRECTORY_ID, dst=0, ack_count=1)
        chosen = self._select([zero, nonzero], message, cache)
        assert chosen.event.guard == "ack_count_nonzero"

    def test_guarded_transition_preferred_over_unguarded(self):
        unguarded = _transition(next_state="S0")
        guarded = _transition(next_state="X", guard="ack_count_zero")
        cache = CacheNodeState(fsm_state="S0")
        message = Message("Data", src=DIRECTORY_ID, dst=0, ack_count=0)
        chosen = self._select([unguarded, guarded], message, cache)
        assert chosen.event.guard == "ack_count_zero"

    def test_acks_complete_requires_expected_count(self):
        complete = _transition(next_state="X", guard="acks_complete")
        incomplete = _transition(next_state="S0", guard="acks_incomplete")
        message = Message("Data", src=1, dst=0)
        waiting = CacheNodeState(fsm_state="S0", acks_expected=2, acks_received=1)
        assert self._select([complete, incomplete], message, waiting).event.guard == "acks_complete"
        early = CacheNodeState(fsm_state="S0", acks_expected=None, acks_received=1)
        assert self._select([complete, incomplete], message, early).event.guard == "acks_incomplete"

    def test_directory_owner_and_sharer_guards(self):
        directory = DirectoryNodeState(fsm_state="S0", owner=1, sharers=frozenset({2}))
        from_owner = Message("Data", src=1, dst=DIRECTORY_ID)
        from_other = Message("Data", src=2, dst=DIRECTORY_ID)
        from repro.system.executor import _guard_satisfied

        assert _guard_satisfied(MessageEvent("Data", "from_owner"), message=from_owner,
                                cache=None, directory=directory)
        assert not _guard_satisfied(MessageEvent("Data", "from_owner"), message=from_other,
                                    cache=None, directory=directory)
        assert _guard_satisfied(MessageEvent("Data", "from_sharer"), message=from_other,
                                cache=None, directory=directory)
        assert _guard_satisfied(MessageEvent("Data", "last_sharer"), message=from_other,
                                cache=None, directory=directory)
        assert not _guard_satisfied(MessageEvent("Data", "last_sharer"), message=from_owner,
                                    cache=None, directory=directory)

    def test_unknown_guard_rejected(self):
        from repro.system.executor import _guard_satisfied

        with pytest.raises(ProtocolRuntimeError):
            _guard_satisfied(MessageEvent("Data", "sometimes"), message=None,
                             cache=None, directory=None)


class TestCacheExecution:
    def test_stall_returns_without_changes(self):
        cache = CacheNodeState(fsm_state="S0")
        result = execute_cache_transition(
            _transition(stall=True), cache, 0, message=None, access=None, latest_version=0
        )
        assert result.stalled and result.node == cache

    def test_copy_data_and_bookkeeping(self):
        cache = CacheNodeState(fsm_state="S0")
        message = Message("Data", src=DIRECTORY_ID, dst=0, data=3, ack_count=2)
        transition = _transition(
            actions=[CopyDataFromMessage(), SetAcksExpectedFromMessage(), IncrementAcksReceived()]
        )
        result = execute_cache_transition(
            transition, cache, 0, message=message, access=None, latest_version=3
        )
        assert result.node.data == 3
        assert result.node.acks_expected == 2
        assert result.node.acks_received == 1
        assert result.node.fsm_state == "X"

    def test_reset_ack_counters_and_save_requestor(self):
        cache = CacheNodeState(fsm_state="S0", acks_expected=2, acks_received=2)
        message = Message("Fwd_GetS", src=DIRECTORY_ID, dst=0, requestor=1)
        transition = _transition(actions=[ResetAckCounters(), SaveRequestor(slot=1)])
        result = execute_cache_transition(
            transition, cache, 0, message=message, access=None, latest_version=0
        )
        assert result.node.acks_expected is None and result.node.acks_received == 0
        assert result.node.saved[1] == 1

    def test_store_increments_version_and_requires_latest(self):
        cache = CacheNodeState(fsm_state="S0", data=4)
        transition = _transition(actions=[PerformAccess()])
        ok = execute_cache_transition(
            transition, cache, 0, message=None, access=AccessKind.STORE, latest_version=4
        )
        assert ok.error is None
        assert ok.latest_version == 5 and ok.node.data == 5

        stale = execute_cache_transition(
            transition, cache, 0, message=None, access=AccessKind.STORE, latest_version=7
        )
        assert stale.error is not None and "data-value" in stale.error

    def test_load_without_data_is_an_error(self):
        cache = CacheNodeState(fsm_state="S0", data=None)
        transition = _transition(actions=[PerformAccess()])
        result = execute_cache_transition(
            transition, cache, 0, message=None, access=AccessKind.LOAD, latest_version=0
        )
        assert result.error is not None

    def test_load_monotonicity_violation_detected(self):
        cache = CacheNodeState(fsm_state="S0", data=1, last_observed=3)
        transition = _transition(actions=[PerformAccess()])
        result = execute_cache_transition(
            transition, cache, 0, message=None, access=AccessKind.LOAD, latest_version=3
        )
        assert result.error is not None and "backwards" in result.error

    def test_send_destinations(self):
        cache = CacheNodeState(fsm_state="S0", data=9, saved=(7, None, None, None))
        message = Message("Fwd_GetS", src=DIRECTORY_ID, dst=0, requestor=1)
        transition = _transition(
            actions=[
                Send("Data", Dest.REQUESTOR, with_data=True),
                Send("Data", Dest.DIRECTORY, with_data=True),
                Send("Data", Dest.REQUESTOR, with_data=True, requestor_slot=0),
            ]
        )
        result = execute_cache_transition(
            transition, cache, 0, message=message, access=None, latest_version=9
        )
        destinations = [m.dst for m in result.sends]
        assert destinations == [1, DIRECTORY_ID, 7]
        assert all(m.data == 9 for m in result.sends)

    def test_deferred_send_without_saved_requestor_is_error(self):
        cache = CacheNodeState(fsm_state="S0", data=9)
        transition = _transition(actions=[Send("Data", Dest.REQUESTOR, requestor_slot=0)])
        with pytest.raises(ProtocolRuntimeError, match="no saved requestor"):
            execute_cache_transition(
                transition, cache, 0, message=None, access=None, latest_version=9
            )


class TestDirectoryExecution:
    def test_sharer_bookkeeping_and_ack_count(self):
        directory = DirectoryNodeState(fsm_state="S0", sharers=frozenset({1, 2}), memory=5)
        message = Message("GetM", src=3, dst=DIRECTORY_ID, requestor=3)
        transition = _transition(
            actions=[
                Send("Data", Dest.REQUESTOR, with_data=True, with_ack_count=True),
                Send("Inv", Dest.SHARERS),
                AddRequestorToSharers(),
                ClearSharers(),
            ]
        )
        result = execute_directory_transition(transition, directory, message=message)
        data = [m for m in result.sends if m.mtype == "Data"][0]
        assert data.dst == 3 and data.data == 5 and data.ack_count == 2
        invs = [m for m in result.sends if m.mtype == "Inv"]
        assert sorted(m.dst for m in invs) == [1, 2]
        assert all(m.requestor == 3 for m in invs)
        assert result.node.sharers == frozenset()

    def test_inv_not_sent_to_requestor_itself(self):
        directory = DirectoryNodeState(fsm_state="S0", sharers=frozenset({1, 3}))
        message = Message("GetM", src=3, dst=DIRECTORY_ID, requestor=3)
        transition = _transition(actions=[Send("Inv", Dest.SHARERS)])
        result = execute_directory_transition(transition, directory, message=message)
        assert [m.dst for m in result.sends] == [1]

    def test_forward_to_owner_requires_owner(self):
        directory = DirectoryNodeState(fsm_state="S0", owner=None)
        message = Message("GetS", src=1, dst=DIRECTORY_ID, requestor=1)
        transition = _transition(actions=[Send("Fwd_GetS", Dest.OWNER)])
        with pytest.raises(ProtocolRuntimeError, match="needs an owner"):
            execute_directory_transition(transition, directory, message=message)

    def test_copy_data_updates_memory(self):
        directory = DirectoryNodeState(fsm_state="S0", memory=1)
        message = Message("PutM", src=1, dst=DIRECTORY_ID, requestor=1, data=4)
        transition = _transition(actions=[CopyDataFromMessage()])
        result = execute_directory_transition(transition, directory, message=message)
        assert result.node.memory == 4

    def test_missing_data_is_error(self):
        directory = DirectoryNodeState(fsm_state="S0")
        message = Message("PutM", src=1, dst=DIRECTORY_ID, requestor=1, data=None)
        transition = _transition(actions=[CopyDataFromMessage()])
        result = execute_directory_transition(transition, directory, message=message)
        assert result.error is not None
