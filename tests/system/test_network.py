"""Unit and property tests for the interconnect models."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.system.message import DIRECTORY_ID, Message, message_sort_key
from repro.system.network import OrderedNetwork, UnorderedNetwork, make_network


def _msg(mtype="Data", src=0, dst=1, vnet=1, **kw):
    return Message(mtype=mtype, src=src, dst=dst, vnet=vnet, **kw)


class TestOrderedNetwork:
    def test_fifo_order_within_channel(self):
        net = OrderedNetwork().send(_msg("A"), _msg("B"), _msg("C"))
        assert [m.mtype for m in net.deliverable()] == ["A"]
        net = net.deliver(net.deliverable()[0])
        assert [m.mtype for m in net.deliverable()] == ["B"]

    def test_channels_are_independent(self):
        net = OrderedNetwork().send(_msg("A", src=0, dst=1), _msg("B", src=1, dst=0))
        assert {m.mtype for m in net.deliverable()} == {"A", "B"}

    def test_virtual_networks_are_independent(self):
        request = _msg("GetM", vnet=0)
        response = _msg("Data", vnet=1)
        net = OrderedNetwork().send(request, response)
        # Both are at the head of their own virtual network.
        assert {m.mtype for m in net.deliverable()} == {"GetM", "Data"}

    def test_deliver_requires_head_of_queue(self):
        net = OrderedNetwork().send(_msg("A"), _msg("B"))
        tail = net.in_flight()[1]
        with pytest.raises(ValueError, match="not at the head"):
            net.deliver(tail)

    def test_empty_and_in_flight(self):
        net = OrderedNetwork()
        assert net.empty
        net = net.send(_msg("A"))
        assert not net.empty
        assert len(net.in_flight()) == 1
        assert net.deliver(net.deliverable()[0]).empty

    def test_is_value_object(self):
        a = OrderedNetwork().send(_msg("A"))
        b = OrderedNetwork().send(_msg("A"))
        assert a == b
        assert hash(a) == hash(b)

    def test_ordered_flag(self):
        assert OrderedNetwork().ordered
        assert not UnorderedNetwork().ordered


class TestUnorderedNetwork:
    def test_every_message_deliverable(self):
        net = UnorderedNetwork().send(_msg("A"), _msg("B"), _msg("C"))
        assert {m.mtype for m in net.deliverable()} == {"A", "B", "C"}

    def test_duplicate_messages_deduplicated_in_deliverable(self):
        net = UnorderedNetwork().send(_msg("A"), _msg("A"))
        assert len(net.deliverable()) == 1
        assert len(net.in_flight()) == 2

    def test_deliver_removes_one_copy(self):
        net = UnorderedNetwork().send(_msg("A"), _msg("A"))
        net = net.deliver(_msg("A"))
        assert len(net.in_flight()) == 1

    def test_deliver_unknown_message_rejected(self):
        with pytest.raises(ValueError, match="not in flight"):
            UnorderedNetwork().deliver(_msg("A"))


class TestFactory:
    def test_make_network(self):
        assert isinstance(make_network(True), OrderedNetwork)
        assert isinstance(make_network(False), UnorderedNetwork)


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------

_messages = st.builds(
    Message,
    mtype=st.sampled_from(["GetS", "GetM", "Data", "Inv", "Put_Ack"]),
    src=st.integers(min_value=-1, max_value=2),
    dst=st.integers(min_value=-1, max_value=2),
    requestor=st.none() | st.integers(min_value=0, max_value=2),
    data=st.none() | st.integers(min_value=0, max_value=3),
    ack_count=st.none() | st.integers(min_value=0, max_value=2),
    vnet=st.integers(min_value=0, max_value=1),
)


class TestNetworkProperties:
    @given(st.lists(_messages, max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_ordered_network_preserves_per_channel_fifo(self, messages):
        net = OrderedNetwork().send(*messages)
        per_channel: dict = {}
        for message in messages:
            per_channel.setdefault((message.src, message.dst, message.vnet), []).append(message)
        # Drain the network completely, always taking deliverable heads, and
        # check each channel is received in send order.
        received: dict = {}
        while not net.empty:
            head = net.deliverable()[0]
            received.setdefault((head.src, head.dst, head.vnet), []).append(head)
            net = net.deliver(head)
        for channel, sent in per_channel.items():
            assert received.get(channel, []) == sent

    @given(st.lists(_messages, max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_unordered_network_conserves_messages(self, messages):
        net = UnorderedNetwork().send(*messages)
        assert sorted(net.in_flight(), key=message_sort_key) == sorted(
            messages, key=message_sort_key
        )
        drained = []
        while not net.empty:
            head = net.deliverable()[0]
            drained.append(head)
            net = net.deliver(head)
        assert sorted(drained, key=message_sort_key) == sorted(messages, key=message_sort_key)

    @given(st.lists(_messages, max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_networks_hashable_for_state_snapshots(self, messages):
        ordered = OrderedNetwork().send(*messages)
        unordered = UnorderedNetwork().send(*messages)
        assert hash(ordered) == hash(OrderedNetwork().send(*messages))
        assert hash(unordered) == hash(UnorderedNetwork().send(*messages))
