"""Tests for the whole-system model (event enumeration and application)."""

import pytest

from repro.dsl.types import AccessKind
from repro.system import DIRECTORY_ID, System, Workload
from repro.system.system import DeliverMessage, IssueAccess


@pytest.fixture
def system(msi_nonstalling):
    return System(msi_nonstalling, num_caches=2, workload=Workload(max_accesses_per_cache=2))


class TestInitialState:
    def test_everything_starts_invalid_and_quiet(self, system):
        state = system.initial_state()
        assert all(c.fsm_state == "I" for c in state.caches)
        assert state.directory.fsm_state == "I"
        assert state.network.empty
        assert system.is_quiescent(state)
        assert not system.is_complete(state)

    def test_initial_state_is_hashable(self, system):
        assert hash(system.initial_state()) == hash(system.initial_state())

    def test_at_least_one_cache_required(self, msi_nonstalling):
        with pytest.raises(ValueError):
            System(msi_nonstalling, num_caches=0)


class TestEventEnumeration:
    def test_initial_events_are_loads_and_stores(self, system):
        events = system.enabled_events(system.initial_state())
        accesses = {(e.cache_id, e.access) for e in events if isinstance(e, IssueAccess)}
        # Replacements are meaningless in I, so only loads and stores appear.
        assert accesses == {
            (0, AccessKind.LOAD), (0, AccessKind.STORE),
            (1, AccessKind.LOAD), (1, AccessKind.STORE),
        }

    def test_workload_bound_respected(self, msi_nonstalling):
        system = System(
            msi_nonstalling, num_caches=1, workload=Workload(max_accesses_per_cache=0)
        )
        assert system.enabled_events(system.initial_state()) == []

    def test_access_kinds_can_be_restricted(self, msi_nonstalling):
        system = System(
            msi_nonstalling,
            num_caches=1,
            workload=Workload(max_accesses_per_cache=1, access_kinds=(AccessKind.LOAD,)),
        )
        events = system.enabled_events(system.initial_state())
        assert {e.access for e in events} == {AccessKind.LOAD}


class TestSimpleScenario:
    """Drive one cache through a full load transaction by hand."""

    def test_load_round_trip(self, msi_nonstalling):
        system = System(msi_nonstalling, num_caches=1,
                        workload=Workload(max_accesses_per_cache=1))
        state = system.initial_state()

        out = system.apply(state, IssueAccess(cache_id=0, access=AccessKind.LOAD))
        assert out.error is None
        state = out.state
        assert state.caches[0].fsm_state == "IS_D"
        [gets] = state.network.in_flight()
        assert gets.mtype == "GetS" and gets.dst == DIRECTORY_ID and gets.vnet == 0

        out = system.apply(state, DeliverMessage(gets))
        state = out.state
        assert state.directory.fsm_state == "S"
        [data] = state.network.in_flight()
        assert data.mtype == "Data" and data.dst == 0 and data.vnet == 1

        out = system.apply(state, DeliverMessage(data))
        state = out.state
        assert state.caches[0].fsm_state == "S"
        assert out.observations and out.observations[0].access is AccessKind.LOAD
        assert system.is_complete(state)

    def test_store_bumps_version(self, msi_nonstalling):
        system = System(msi_nonstalling, num_caches=1,
                        workload=Workload(max_accesses_per_cache=1))
        state = system.initial_state()
        out = system.apply(state, IssueAccess(cache_id=0, access=AccessKind.STORE))
        state = out.state
        [getm] = state.network.in_flight()
        state = system.apply(state, DeliverMessage(getm)).state
        [data] = state.network.in_flight()
        out = system.apply(state, DeliverMessage(data))
        assert out.state.caches[0].fsm_state == "M"
        assert out.state.latest_version == 1
        assert out.state.caches[0].data == 1


class TestDeliveryGating:
    def test_stalled_messages_are_not_enabled(self, msi_stalling):
        system = System(msi_stalling, num_caches=2,
                        workload=Workload(max_accesses_per_cache=1))
        state = system.initial_state()
        # C0 starts a store; C1 starts a store; the directory serves C0 first.
        state = system.apply(state, IssueAccess(0, AccessKind.STORE)).state
        state = system.apply(state, IssueAccess(1, AccessKind.STORE)).state
        getm0 = [m for m in state.network.in_flight() if m.src == 0][0]
        state = system.apply(state, DeliverMessage(getm0)).state
        getm1 = [m for m in state.network.in_flight() if m.src == 1][0]
        state = system.apply(state, DeliverMessage(getm1)).state
        # The directory forwarded C1's GetM to C0, which is still in IM_AD;
        # the stalling protocol must not deliver it yet.
        fwd = [m for m in state.network.in_flight() if m.mtype == "Fwd_GetM"][0]
        enabled = system.enabled_events(state)
        assert DeliverMessage(fwd) not in enabled
        # The Data response for C0 is still deliverable (separate event).
        data = [m for m in state.network.in_flight() if m.mtype == "Data" and m.dst == 0][0]
        assert DeliverMessage(data) in enabled

    def test_writers_and_readers(self, system):
        state = system.initial_state()
        writers, readers = system.writers_and_readers(state)
        assert writers == [] and readers == []
