"""Property-based tests over the generator and the execution substrate."""

from hypothesis import given, settings, strategies as st

from repro import protocols
from repro.core import GenerationConfig, generate
from repro.core.preprocess import forwarded_arrival_states, preprocess
from repro.dsl.types import AccessKind, Permission
from repro.system import System, Workload
from repro.verification import single_owner_invariant, verify
from repro.verification.random_walk import random_walk


_protocol_names = st.sampled_from(protocols.available_protocols())
_configs = st.sampled_from(
    [
        GenerationConfig.nonstalling(),
        GenerationConfig.nonstalling(immediate=False),
        GenerationConfig.stalling(),
        GenerationConfig(pending_transaction_limit=1),
        GenerationConfig(merge_equivalent_states=False),
        GenerationConfig(allow_transient_accesses=False),
    ]
)


class TestGeneratorProperties:
    @given(name=_protocol_names, config=_configs)
    @settings(max_examples=25, deadline=None)
    def test_preprocessing_invariant_holds_for_every_generated_protocol(self, name, config):
        generated = generate(protocols.load(name), config)
        spec = generated.source_spec
        arrival = forwarded_arrival_states(spec)
        from repro.core.context import compute_silent_classes

        silent = compute_silent_classes(spec)

        def class_of(state):
            for cls in silent:
                if state in cls:
                    return cls
            return frozenset({state})

        for message, states in arrival.items():
            classes = {class_of(s) for s in states}
            assert len(classes) <= 1, f"{message} arrives in {states}"

    @given(name=_protocol_names, config=_configs)
    @settings(max_examples=25, deadline=None)
    def test_transient_permission_is_meet_of_endpoints(self, name, config):
        generated = generate(protocols.load(name), config)
        spec = generated.source_spec
        stable_permission = {s.name: s.permission for s in spec.cache.states.values()}
        for state in generated.cache.transient_states():
            if not config.allow_transient_accesses:
                assert state.permission is Permission.NONE
                continue
            start = state.meta.get("start")
            if start in stable_permission:
                assert state.permission <= stable_permission[start]

    @given(name=_protocol_names, config=_configs)
    @settings(max_examples=25, deadline=None)
    def test_every_state_set_member_is_a_stable_state(self, name, config):
        generated = generate(protocols.load(name), config)
        stable = {s.name for s in generated.cache.stable_states()}
        for state in generated.cache.states():
            assert set(state.state_sets) <= stable

    @given(name=_protocol_names)
    @settings(max_examples=10, deadline=None)
    def test_generation_is_deterministic(self, name):
        first = generate(protocols.load(name), GenerationConfig())
        second = generate(protocols.load(name), GenerationConfig())
        assert sorted(first.cache.state_names()) == sorted(second.cache.state_names())
        assert first.cache.num_transitions == second.cache.num_transitions

    @given(name=_protocol_names)
    @settings(max_examples=10, deadline=None)
    def test_preprocessing_idempotent(self, name):
        once = preprocess(protocols.load(name))
        twice = preprocess(once.spec)
        assert twice.renamings == {}


class TestRandomScheduleProperties:
    """Random schedules over the generated MSI protocol never violate the
    invariants, for arbitrary seeds and small workload shapes."""

    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        accesses=st.integers(min_value=1, max_value=3),
        caches=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=20, deadline=None)
    def test_msi_random_walks_hold_invariants(self, seed, accesses, caches):
        generated = generate(protocols.load("MSI"), GenerationConfig())
        system = System(
            generated, num_caches=caches,
            workload=Workload(max_accesses_per_cache=accesses),
        )
        result = random_walk(system, runs=3, max_steps=150, seed=seed)
        assert result.ok, result.summary

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=10, deadline=None)
    def test_tso_cc_random_walks_hold_ownership_invariants(self, seed):
        generated = generate(protocols.load("TSO-CC"), GenerationConfig())
        system = System(generated, num_caches=3,
                        workload=Workload(max_accesses_per_cache=2))
        result = random_walk(
            system, runs=3, max_steps=150, seed=seed,
            invariants=[single_owner_invariant],
        )
        assert result.ok, result.summary


class TestWorkloadShapeProperties:
    @given(
        accesses=st.integers(min_value=1, max_value=2),
        kinds=st.sets(
            st.sampled_from([AccessKind.LOAD, AccessKind.STORE, AccessKind.REPLACEMENT]),
            min_size=1,
        ),
    )
    @settings(max_examples=8, deadline=None)
    def test_msi_verifies_for_any_small_workload_shape(self, accesses, kinds):
        generated = generate(protocols.load("MSI"), GenerationConfig())
        system = System(
            generated,
            num_caches=2,
            workload=Workload(max_accesses_per_cache=accesses, access_kinds=tuple(kinds)),
        )
        result = verify(system)
        assert result.ok, result.summary
