"""Integration: generate + model-check every bundled protocol (2 caches).

This is the reproduction of the paper's central experimental claim: every
generated protocol -- stalling and non-stalling -- is safe (SWMR + data-value)
and deadlock-free.  Two caches keep the exhaustive search fast enough for the
regular test suite; the three-cache configuration the paper uses with Murphi
runs in the benchmark suite (experiment E7/E8).
"""

import pytest

from repro import protocols
from repro.dsl.types import AccessKind
from repro.system import System, Workload
from repro.verification import single_owner_invariant, verify


def _workload(name: str) -> Workload:
    if name == "MSI-Unordered":
        # The unordered variant has no eviction path by design.
        return Workload(max_accesses_per_cache=2,
                        access_kinds=(AccessKind.LOAD, AccessKind.STORE))
    return Workload(max_accesses_per_cache=2)


def _invariants(name: str):
    if name == "TSO-CC":
        # TSO-CC intentionally breaks SWMR in physical time (stale untracked
        # readers); check single ownership + data-value + deadlock freedom.
        return [single_owner_invariant]
    return None


@pytest.mark.parametrize("config_label", ["nonstalling", "stalling"])
@pytest.mark.parametrize("name", protocols.available_protocols())
def test_generated_protocol_verifies_with_two_caches(all_generated, name, config_label):
    generated = all_generated[(name, config_label)]
    system = System(generated, num_caches=2, workload=_workload(name))
    result = verify(system, invariants=_invariants(name))
    assert result.ok, f"{name}/{config_label}: {result.summary}\n" + "\n".join(result.trace)


@pytest.mark.parametrize("name", ["MSI", "MESI"])
def test_nonstalling_protocols_also_verify_on_unordered_delivery_of_responses(
    all_generated, name
):
    """The generated transient states absorb forwarded requests that overtake
    the responses they chase, so the read/write path (no evictions) is safe
    even without point-to-point ordering."""
    generated = all_generated[(name, "nonstalling")]
    system = System(
        generated,
        num_caches=2,
        workload=Workload(max_accesses_per_cache=2,
                          access_kinds=(AccessKind.LOAD, AccessKind.STORE)),
        ordered=False,
    )
    result = verify(system)
    assert result.ok, result.summary
