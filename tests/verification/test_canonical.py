"""Property-based tests for cache-ID symmetry canonicalization.

Hand-rolled generators (deterministic seeded random walks over MSI / MESI /
MOSI systems) produce random reachable global states; the properties mirror
what Murphi guarantees for scalarsets:

* canonicalization is **idempotent** -- the representative canonicalizes to
  itself under the identity permutation;
* canonicalization is **permutation-invariant** -- every relabeling of a
  state has the same representative;
* canonicalization **preserves invariant verdicts** -- a state and its
  representative agree on every default invariant (same violation name, or
  both clean);
* relabeling is a **group action** -- applying a permutation and then its
  inverse is the identity, and the transition relation commutes with
  relabeling (``apply(perm(s), perm(e))`` equals ``perm(apply(s, e))``).
"""

import pytest

from repro.system import System, Workload
from repro.verification import (
    canonicalize,
    canonicalize_bruteforce,
    default_invariants,
    relabel_event,
)
from repro.verification.engine.canonical import (
    compose,
    identity_permutation,
    invert,
)

from verification_helpers import sample_reachable_states


def _system(protocol, num_caches=3):
    return System(protocol, num_caches=num_caches, workload=Workload(max_accesses_per_cache=2))


@pytest.fixture(scope="module", params=["msi", "mesi", "mosi"])
def sampled(request, msi_nonstalling, mesi_nonstalling, mosi_nonstalling):
    protocol = {
        "msi": msi_nonstalling,
        "mesi": mesi_nonstalling,
        "mosi": mosi_nonstalling,
    }[request.param]
    system = _system(protocol)
    states = sample_reachable_states(system, seed=hash(request.param) % 1000)
    return system, states


class TestPermutationAlgebra:
    def test_invert_roundtrip(self):
        perm = (2, 0, 1)
        assert invert(invert(perm)) == perm
        assert compose(perm, invert(perm)) == identity_permutation(3)
        assert compose(invert(perm), perm) == identity_permutation(3)

    def test_compose_applies_inner_first(self):
        inner = (1, 0, 2)
        outer = (2, 0, 1)
        composed = compose(outer, inner)
        assert composed == tuple(outer[inner[i]] for i in range(3))


class TestCanonicalizationProperties:
    def test_idempotent(self, sampled):
        system, states = sampled
        perms = system.symmetry_permutations()
        for state in states:
            rep, _ = canonicalize(state, perms)
            again, perm = canonicalize(rep, perms)
            assert again == rep
            assert perm == perms[0], "a representative must canonicalize via the identity"

    def test_permutation_invariant(self, sampled):
        system, states = sampled
        perms = system.symmetry_permutations()
        for state in states:
            rep, _ = canonicalize(state, perms)
            for perm in perms:
                relabeled = state.relabeled(perm)
                rep2, _ = canonicalize(relabeled, perms)
                assert rep2 == rep

    def test_relabel_roundtrip(self, sampled):
        system, states = sampled
        perms = system.symmetry_permutations()
        for state in states:
            for perm in perms:
                assert state.relabeled(perm).relabeled(invert(perm)) == state

    def test_canonicalize_returns_witness_permutation(self, sampled):
        system, states = sampled
        perms = system.symmetry_permutations()
        for state in states:
            rep, perm = canonicalize(state, perms)
            assert state.relabeled(perm) == rep

    def test_canonical_key_is_minimal(self, sampled):
        """The fast (lazy, tie-breaking) canonicalization must agree with the
        brute-force minimum over all fully-relabeled states."""
        system, states = sampled
        perms = system.symmetry_permutations()
        for state in states:
            rep, _ = canonicalize(state, perms)
            brute = min((state.relabeled(p) for p in perms), key=lambda s: s.sort_key())
            assert rep.sort_key() == brute.sort_key()
            assert rep == brute

    def test_invariant_verdicts_preserved(self, sampled):
        system, states = sampled
        perms = system.symmetry_permutations()
        for state in states:
            rep, _ = canonicalize(state, perms)
            for invariant in default_invariants():
                original = invariant(system, state)
                canonical = invariant(system, rep)
                assert (original is None) == (canonical is None)
                if original is not None:
                    assert original.name == canonical.name


class TestSortedSignaturePrecanonicalization:
    """The 4-cache fast path: signature sort -> orbit pruning -> tie-break.

    :func:`canonicalize` avoids enumerating all ``4! = 24`` permutations when
    no cache holds a saved requestor ID; these properties pin its exact
    agreement with the brute-force enumeration on random reachable 4-cache
    states (both sampled and adversarially symmetric ones).
    """

    @pytest.fixture(scope="class", params=["stalling", "nonstalling"])
    def four_cache_sampled(self, request, msi_spec):
        from repro.core import GenerationConfig, generate

        config = (
            GenerationConfig.stalling()
            if request.param == "stalling"
            else GenerationConfig.nonstalling()
        )
        protocol = generate(msi_spec, config)
        system = System(
            protocol, num_caches=4, workload=Workload(max_accesses_per_cache=2)
        )
        states = sample_reachable_states(system, seed=2024, walks=10, max_steps=50)
        return system, states

    def test_agrees_with_bruteforce(self, four_cache_sampled):
        system, states = four_cache_sampled
        perms = system.symmetry_permutations()
        for state in states:
            rep, perm = canonicalize(state, perms)
            brute_rep, brute_perm = canonicalize_bruteforce(state, perms)
            assert rep == brute_rep
            assert perm == brute_perm
            assert state.relabeled(perm) == rep

    def test_permutation_invariant(self, four_cache_sampled):
        system, states = four_cache_sampled
        perms = system.symmetry_permutations()
        for state in states[:60]:
            rep, _ = canonicalize(state, perms)
            for perm in perms:
                rep2, _ = canonicalize(state.relabeled(perm), perms)
                assert rep2 == rep

    def test_idempotent(self, four_cache_sampled):
        system, states = four_cache_sampled
        perms = system.symmetry_permutations()
        for state in states:
            rep, _ = canonicalize(state, perms)
            again, perm = canonicalize(rep, perms)
            assert again == rep
            assert perm == perms[0]

    def test_fully_symmetric_state_hits_the_orbit_path(self, four_cache_sampled):
        """The initial state (four identical caches) has the maximal orbit:
        every permutation ties on signatures, so the tie-break must resolve
        to the identity and the state must already be canonical."""
        system, _ = four_cache_sampled
        perms = system.symmetry_permutations()
        initial = system.initial_state()
        rep, perm = canonicalize(initial, perms)
        assert rep == initial
        assert perm == perms[0]

    def test_saved_requestor_states_fall_back_consistently(self, four_cache_sampled):
        """States whose saved slots hold cache IDs take the brute-force path;
        their representatives must still agree across every relabeling."""
        system, states = four_cache_sampled
        perms = system.symmetry_permutations()
        with_saved = [
            s for s in states
            if any(any(v is not None and v >= 0 for v in c.saved) for c in s.caches)
        ][:40]
        for state in with_saved:
            rep, _ = canonicalize(state, perms)
            for perm in perms[:8]:
                rep2, _ = canonicalize(state.relabeled(perm), perms)
                assert rep2 == rep


class TestTransitionEquivariance:
    def test_apply_commutes_with_relabeling(self, sampled):
        """apply(perm(s), perm(e)) == perm(apply(s, e)) -- the property that
        makes exploring one representative per orbit sound."""
        system, states = sampled
        perms = system.symmetry_permutations()
        for state in states[:40]:
            events = system.enabled_events(state)
            for event in events:
                outcome = system.apply(state, event)
                if outcome.error is not None:
                    continue
                for perm in perms:
                    relabeled_outcome = system.apply(
                        state.relabeled(perm), relabel_event(event, perm)
                    )
                    assert relabeled_outcome.error is None
                    assert relabeled_outcome.state == outcome.state.relabeled(perm)

    def test_enabled_events_equivariant(self, sampled):
        system, states = sampled
        perms = system.symmetry_permutations()
        for state in states[:40]:
            events = set(system.enabled_events(state))
            for perm in perms:
                relabeled = {
                    relabel_event(e, perm) for e in events
                }
                assert set(system.enabled_events(state.relabeled(perm))) == relabeled
