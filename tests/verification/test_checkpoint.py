"""Checkpoint/resume parity: a budgeted search chain must be bit-identical
to an uninterrupted run.

The contract under test (``verify(..., checkpoint=PATH)``):

* a run that stops at ``max_states`` persists its frontier, store links and
  counters atomically, and a later call with the same configuration resumes
  it under a fresh budget;
* the completed chain reports the same states/transitions/complete-state
  counts -- and, when the search fails, the same verdict and the same
  counterexample trace -- as a single uninterrupted run;
* a completed run consumes its checkpoint file;
* a checkpoint written by a *different* search configuration (symmetry,
  workload, backend, payload version) refuses to resume with
  :class:`CheckpointMismatch` instead of silently corrupting the search.

Covers the serial mid-level ``deque`` shape (compiled and object kernels,
both symmetry modes, hash compaction) and the level-synchronous shape the
vectorized kernel saves.  The sharded parallel shape has its own suite in
``test_parallel_engine.py``.
"""

import os
import pickle

import pytest

from repro.system import System, Workload
from repro.verification import verify
from repro.verification.engine import CheckpointMismatch

from verification_helpers import make_swmr_mutant


@pytest.fixture(scope="module")
def msi_swmr_mutant(msi_spec):
    return make_swmr_mutant(msi_spec)


def run_sliced(system, path, budgets, **mode):
    """Run the search as a chain of budgeted legs resuming one checkpoint.

    Every leg but the last must stop partial (with the checkpoint on disk
    and strictly more states than the leg before); the final leg's budget
    sits comfortably above the space, so it completes and consumes the file.
    """
    explored = 0
    for budget in budgets[:-1]:
        leg = verify(system, max_states=budget, checkpoint=path, **mode)
        assert leg.partial, f"budget {budget} should truncate the search"
        assert leg.ok, "no verdict may be reported from a truncated prefix"
        assert os.path.exists(path), "a truncated leg must persist a checkpoint"
        assert leg.states_explored > explored, "a resumed leg must progress"
        explored = leg.states_explored
    result = verify(system, max_states=budgets[-1], checkpoint=path, **mode)
    assert not os.path.exists(path), "a completed run consumes its checkpoint"
    return result


# Every checkpoint shape except the parallel engine's sharded one: the
# serial deque (compiled / object / symmetry / hash-compaction axes) and
# the vectorized kernel's level-synchronous save, with and without
# symmetry reduction.
CHECKPOINT_MODES = [
    dict(),
    dict(kernel="object"),
    dict(symmetry=True),
    dict(symmetry=True, hash_compaction=True),
    dict(kernel="vectorized"),
    dict(symmetry=True, kernel="vectorized"),
]


@pytest.mark.parametrize("mode", CHECKPOINT_MODES, ids=lambda m: "-".join(
    f"{k}={v}" for k, v in m.items()) or "compiled")
class TestResumeParity:
    def test_sliced_pass_matches_uninterrupted(self, msi_nonstalling,
                                               tmp_path, mode):
        system = System(msi_nonstalling, num_caches=2,
                        workload=Workload(max_accesses_per_cache=2))
        baseline = verify(system, **mode)
        assert baseline.ok and not baseline.partial

        path = str(tmp_path / "run.ckpt")
        result = run_sliced(system, path, [300, 600, 40_000], **mode)

        assert result.ok and not result.partial
        assert result.states_explored == baseline.states_explored
        assert result.transitions_explored == baseline.transitions_explored
        assert result.complete_states == baseline.complete_states

    def test_sliced_failure_verdict_and_trace_identical(
            self, msi_swmr_mutant, tmp_path, mode):
        """The violation must land in a *resumed* leg and still carry the
        exact trace an uninterrupted search reports (the traces themselves
        are replay-verified in test_engine.py)."""
        system = System(msi_swmr_mutant, num_caches=2,
                        workload=Workload(max_accesses_per_cache=2))
        baseline = verify(system, **mode)
        assert not baseline.ok and baseline.violation is not None

        path = str(tmp_path / "run.ckpt")
        cut = max(1, baseline.states_explored // 2)
        leg = verify(system, max_states=cut, checkpoint=path, **mode)
        assert leg.partial and leg.ok, (
            "the half-budget leg must stop before the violation"
        )
        result = verify(system, max_states=10 ** 6, checkpoint=path, **mode)

        assert not result.ok
        assert result.violation is not None
        assert str(result.violation) == str(baseline.violation)
        assert result.trace == baseline.trace
        assert result.states_explored == baseline.states_explored
        # A failing resumed run is finished, not truncated: the checkpoint
        # is consumed like any other completed search's.
        assert not os.path.exists(path)


class TestCheckpointLifecycle:
    def test_unbudgeted_completed_run_leaves_no_file(self, msi_nonstalling,
                                                     tmp_path):
        system = System(msi_nonstalling, num_caches=2,
                        workload=Workload(max_accesses_per_cache=2))
        path = str(tmp_path / "run.ckpt")
        result = verify(system, checkpoint=path)
        assert result.ok and not result.partial
        assert not os.path.exists(path)

    def test_resume_level_reported_in_stats(self, msi_nonstalling, tmp_path):
        """The level-synchronous shapes surface where the resume picked up."""
        system = System(msi_nonstalling, num_caches=2,
                        workload=Workload(max_accesses_per_cache=2))
        path = str(tmp_path / "run.ckpt")
        leg = verify(system, max_states=300, checkpoint=path,
                     kernel="vectorized")
        assert leg.partial
        result = verify(system, max_states=40_000, checkpoint=path,
                        kernel="vectorized")
        assert result.ok
        assert result.stats["resume_level"] is not None
        assert result.stats["resume_level"] >= 1
        # A fresh (non-resumed) run reports None on the same key.
        fresh = verify(system, kernel="vectorized")
        assert fresh.stats["resume_level"] is None


class TestMismatchRejection:
    @pytest.fixture
    def saved_checkpoint(self, msi_nonstalling, tmp_path):
        system = System(msi_nonstalling, num_caches=2,
                        workload=Workload(max_accesses_per_cache=2))
        path = str(tmp_path / "run.ckpt")
        leg = verify(system, max_states=300, checkpoint=path)
        assert leg.partial and os.path.exists(path)
        return system, path

    def test_symmetry_axis_mismatch(self, saved_checkpoint):
        system, path = saved_checkpoint
        with pytest.raises(CheckpointMismatch):
            verify(system, max_states=40_000, checkpoint=path, symmetry=True)

    def test_kernel_mismatch(self, saved_checkpoint):
        system, path = saved_checkpoint
        with pytest.raises(CheckpointMismatch):
            verify(system, max_states=40_000, checkpoint=path,
                   kernel="object")

    def test_workload_mismatch(self, msi_nonstalling, saved_checkpoint):
        _, path = saved_checkpoint
        other = System(msi_nonstalling, num_caches=2,
                       workload=Workload(max_accesses_per_cache=1))
        with pytest.raises(CheckpointMismatch):
            verify(other, max_states=40_000, checkpoint=path)

    def test_stale_payload_version(self, saved_checkpoint):
        system, path = saved_checkpoint
        with open(path, "rb") as f:
            payload = pickle.load(f)
        payload["version"] = -1
        with open(path, "wb") as f:
            pickle.dump(payload, f)
        with pytest.raises(CheckpointMismatch):
            verify(system, max_states=40_000, checkpoint=path)

    def test_budget_and_worker_count_are_not_bound(self, msi_nonstalling,
                                                   saved_checkpoint):
        """Resuming under a different budget is the whole point; the
        fingerprint deliberately excludes ``max_states``."""
        system, path = saved_checkpoint
        result = verify(system, max_states=40_000, checkpoint=path)
        assert result.ok and not result.partial
