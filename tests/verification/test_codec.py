"""Property tests for the encoded-state core (:mod:`repro.system.codec`).

The engine de-duplicates, canonicalizes and ships *encodings* of global
states, so two properties carry the whole correctness argument:

* the codec is a **bijection** on reachable states --
  ``decode(encode(s)) == s`` exactly (and through the packed ``bytes`` form),
  which is what keeps ``verify()`` defaults bit-compatible with the seed
  explorer;
* encoded **canonicalization agrees with the object-level oracle** -- same
  representative *and* same witness permutation as
  ``canonicalize``/``canonicalize_bruteforce``, including the states whose
  saved-requestor slots force the brute-force fallback.

States are sampled with the deterministic random-walk generator used by the
canonicalization property tests, across all six bundled protocols (the
MSI-Unordered cells exercise the unordered-network section layout).
"""

import pytest

from repro import protocols
from repro.core import GenerationConfig, generate
from repro.dsl.types import AccessKind
from repro.system import System, Workload
from repro.verification import (
    canonicalize,
    canonicalize_bruteforce,
    canonicalize_bruteforce_encoded,
    canonicalize_encoded,
)
from repro.verification.engine.canonical import invert

from verification_helpers import sample_reachable_states

ALL_PROTOCOLS = protocols.available_protocols()


@pytest.fixture(scope="module")
def sampled_by_protocol(all_generated):
    """(system, states) per protocol: 3 caches, 2 accesses, nonstalling."""
    result = {}
    for name in ALL_PROTOCOLS:
        system = System(
            all_generated[(name, "nonstalling")],
            num_caches=3,
            workload=Workload(max_accesses_per_cache=2),
        )
        result[name] = (system, sample_reachable_states(system, seed=len(name)))
    return result


@pytest.mark.parametrize("name", ALL_PROTOCOLS)
class TestRoundTrip:
    def test_decode_encode_is_identity(self, sampled_by_protocol, name):
        system, states = sampled_by_protocol[name]
        codec = system.codec()
        for state in states:
            enc = codec.encode(state)
            assert codec.decode(enc) == state
            assert all(isinstance(v, int) and v >= 0 for v in enc)

    def test_packed_bytes_round_trip(self, sampled_by_protocol, name):
        system, states = sampled_by_protocol[name]
        codec = system.codec()
        for state in states:
            enc = codec.encode(state)
            packed = codec.pack(enc)
            assert isinstance(packed, bytes)
            assert codec.unpack(packed) == enc
            assert codec.decode_packed(codec.encode_packed(state)) == state

    def test_encoding_is_injective_on_the_sample(self, sampled_by_protocol, name):
        system, states = sampled_by_protocol[name]
        codec = system.codec()
        distinct = set(states)
        assert len({codec.encode(s) for s in distinct}) == len(distinct)

    def test_relabel_commutes_with_object_relabeling(self, sampled_by_protocol, name):
        system, states = sampled_by_protocol[name]
        codec = system.codec()
        perms = system.symmetry_permutations()
        for state in states[:120]:
            enc = codec.encode(state)
            for perm in perms:
                assert codec.relabel(enc, perm) == codec.encode(state.relabeled(perm))
                assert codec.relabel(codec.relabel(enc, perm), invert(perm)) == enc

    def test_relabel_via_tables_matches_the_oracle(self, sampled_by_protocol, name):
        """The gather-table relabel must be bit-identical to the
        field-by-field :meth:`StateCodec.relabel` (kept as the oracle) on
        every sampled state and every permutation — including the
        saved-requestor states whose slots hold cache IDs."""
        system, states = sampled_by_protocol[name]
        codec = system.codec()
        perms = system.symmetry_permutations()
        for state in states[:120]:
            enc = codec.encode(state)
            for perm in perms:
                assert codec.relabel_via_tables(enc, perm) == codec.relabel(enc, perm)

    def test_relabel_via_tables_saved_free_shortcut(self, sampled_by_protocol, name):
        """``saved=False`` (the signature-sort path's shortcut) is only
        valid on states without occupied saved slots; pin that it agrees
        with the oracle exactly there."""
        system, states = sampled_by_protocol[name]
        codec = system.codec()
        perms = system.symmetry_permutations()
        checked = 0
        for state in states[:120]:
            enc = codec.encode(state)
            if codec.has_saved_ids(enc):
                continue
            for perm in perms:
                assert (
                    codec.relabel_via_tables(enc, perm, saved=False)
                    == codec.relabel(enc, perm)
                )
            checked += 1
        assert checked > 0

    def test_event_codec_round_trips(self, sampled_by_protocol, name):
        system, states = sampled_by_protocol[name]
        codec = system.codec()
        seen = 0
        for state in states[:80]:
            for event in system.enabled_events(state):
                assert codec.decode_event(codec.encode_event(event)) == event
                seen += 1
        assert seen > 0


@pytest.mark.parametrize("name", ALL_PROTOCOLS)
class TestEncodedCanonicalAgreement:
    def test_same_representative_and_witness(self, sampled_by_protocol, name):
        system, states = sampled_by_protocol[name]
        codec = system.codec()
        perms = system.symmetry_permutations()
        for state in states:
            rep_obj, perm_obj = canonicalize(state, perms)
            rep_enc, perm_enc = canonicalize_encoded(codec.encode(state), codec, perms)
            assert perm_enc == perm_obj
            assert rep_enc == codec.encode(rep_obj)

    def test_saved_requestor_states_are_exercised_and_agree(
        self, sampled_by_protocol, name
    ):
        """The brute-force fallback path must be hit by the sample (except
        for protocols that never defer) and agree with the object oracle."""
        system, states = sampled_by_protocol[name]
        codec = system.codec()
        perms = system.symmetry_permutations()
        with_saved = [
            s
            for s in states
            if any(any(v is not None and v >= 0 for v in c.saved) for c in s.caches)
        ]
        if name != "TSO-CC":
            # Every deferring protocol reaches saved-requestor states on this
            # workload; TSO-CC rarely does, so it only checks when sampled.
            assert with_saved, "sample never reached a saved-requestor state"
        for state in with_saved:
            enc = codec.encode(state)
            assert codec.has_saved_ids(enc)
            rep_obj, perm_obj = canonicalize(state, perms)
            rep_enc, perm_enc = canonicalize_encoded(enc, codec, perms)
            assert perm_enc == perm_obj
            assert rep_enc == codec.encode(rep_obj)

    def test_idempotent_on_encodings(self, sampled_by_protocol, name):
        system, states = sampled_by_protocol[name]
        codec = system.codec()
        perms = system.symmetry_permutations()
        for state in states[:100]:
            rep_enc, _ = canonicalize_encoded(codec.encode(state), codec, perms)
            again, perm = canonicalize_encoded(rep_enc, codec, perms)
            assert again == rep_enc
            assert perm == perms[0]


@pytest.mark.parametrize("name", ALL_PROTOCOLS)
class TestEncodedBruteforceOracleAgreement:
    """:func:`canonicalize_bruteforce_encoded` vs the object-level oracle.

    The encoded brute force is what keeps saved-requestor states (and
    caller-restricted permutation sets) on the int lanes; the object-level
    :func:`canonicalize_bruteforce` is demoted to a differential-test oracle
    here — the two must agree on the representative *and* the witness
    permutation, bit for bit, on every sampled state.
    """

    def test_exact_agreement_with_object_bruteforce(self, sampled_by_protocol, name):
        system, states = sampled_by_protocol[name]
        codec = system.codec()
        perms = system.symmetry_permutations()
        for state in states:
            rep_obj, perm_obj = canonicalize_bruteforce(state, perms)
            rep_enc, perm_enc = canonicalize_bruteforce_encoded(
                codec.encode(state), codec, perms
            )
            assert perm_enc == perm_obj
            assert rep_enc == codec.encode(rep_obj)

    def test_agreement_on_restricted_permutation_sets(self, sampled_by_protocol, name):
        """A non-full permutation group (no signature-sort argument) must
        route both pipelines through the same enumeration and winner."""
        system, states = sampled_by_protocol[name]
        codec = system.codec()
        full = system.symmetry_permutations()
        restricted = (full[0], full[-1])
        for state in states[:60]:
            rep_obj, perm_obj = canonicalize_bruteforce(state, restricted)
            rep_enc, perm_enc = canonicalize_bruteforce_encoded(
                codec.encode(state), codec, restricted
            )
            assert perm_enc == perm_obj
            assert rep_enc == codec.encode(rep_obj)
            via_encoded = canonicalize_encoded(codec.encode(state), codec, restricted)
            assert via_encoded == (rep_enc, perm_enc)


def test_mosi_saved_requestor_states_agree_on_all_pipelines(all_generated):
    """MOSI nonstalling reaches deferred-send states whose saved slots hold
    cache IDs (the owner-recall `requestor_from_slot` stamping): the exact
    states that used to decode into the object brute force.  Pin all three
    encoded entry points against the object oracles on them."""
    system = System(all_generated[("MOSI", "nonstalling")], num_caches=3,
                    workload=Workload(max_accesses_per_cache=2))
    codec = system.codec()
    perms = system.symmetry_permutations()
    states = sample_reachable_states(system, seed=29, walks=10, max_steps=60)
    with_saved = [s for s in states if codec.has_saved_ids(codec.encode(s))]
    assert with_saved, "sampling never reached a saved-requestor state"
    for state in with_saved:
        enc = codec.encode(state)
        rep_obj, perm_obj = canonicalize_bruteforce(state, perms)
        assert canonicalize(state, perms) == (rep_obj, perm_obj)
        for rep_enc, perm_enc in (
            canonicalize_bruteforce_encoded(enc, codec, perms),
            canonicalize_encoded(enc, codec, perms),
        ):
            assert perm_enc == perm_obj
            assert rep_enc == codec.encode(rep_obj)


def test_msi_unordered_late_absorb_states_agree_on_all_pipelines(all_generated):
    """MSI-Unordered nonstalling reaches the late-absorb redirect states of
    the PR 2 fix (IM_AD_I and friends); their unordered network sections are
    the largest relabel surfaces, so pin the encoded brute force and the
    table relabel against the object oracles through them."""
    system = System(
        all_generated[("MSI-Unordered", "nonstalling")], num_caches=3,
        workload=Workload(max_accesses_per_cache=2,
                          access_kinds=(AccessKind.LOAD, AccessKind.STORE)),
    )
    codec = system.codec()
    perms = system.symmetry_permutations()
    states = sample_reachable_states(system, seed=43, walks=10, max_steps=60)
    absorb_states = {"IM_AD_I", "IM_AD_SI", "IM_A_I", "IM_A_SI", "SM_AD_I",
                     "SM_A_I", "IS_D_I"}
    touched = [
        s for s in states
        if any(cache.fsm_state in absorb_states for cache in s.caches)
    ]
    assert touched, "sampling never reached a late-absorb state"
    for state in touched:
        enc = codec.encode(state)
        rep_obj, perm_obj = canonicalize_bruteforce(state, perms)
        rep_enc, perm_enc = canonicalize_bruteforce_encoded(enc, codec, perms)
        assert perm_enc == perm_obj
        assert rep_enc == codec.encode(rep_obj)
        for perm in perms:
            assert codec.relabel_via_tables(enc, perm) == codec.relabel(enc, perm)


class _NameTable:
    def __init__(self, names):
        self._names = list(names)

    def state_names(self):
        return self._names

    def names(self):
        return self._names


class _SyntheticProtocol:
    """Protocol stub exposing just the catalogs the codec indexes."""

    def __init__(self, *, cache_states, dir_states, mtypes):
        self.cache = _NameTable(cache_states)
        self.directory = _NameTable(dir_states)
        self.messages = _NameTable(mtypes)


class TestLaneWidening:
    """The codec auto-selects a 32-bit lane layout when any field can exceed
    the uint16 range (it used to raise a hard error)."""

    def test_bundled_protocols_keep_the_16_bit_layout(self, sampled_by_protocol):
        for system, _ in sampled_by_protocol.values():
            codec = system.codec()
            assert codec.typecode == "H" and codec.lane_bytes == 2

    def test_huge_state_catalog_selects_32_bit_lanes_and_round_trips(self):
        from repro.system import StateCodec
        from repro.system.node_state import CacheNodeState, DirectoryNodeState
        from repro.system.system import GlobalState
        from repro.system.network import UnorderedNetwork

        names = [f"T{i:05d}" for i in range(70_000)]
        protocol = _SyntheticProtocol(
            cache_states=names, dir_states=["DI", "DM"], mtypes=["Get", "Put"]
        )
        codec = StateCodec(protocol, 2, ordered=False)
        assert codec.lane_bytes == 4
        state = GlobalState(
            caches=(
                CacheNodeState(fsm_state=names[69_999], data=5, issued=1),
                CacheNodeState(fsm_state=names[0]),
            ),
            directory=DirectoryNodeState(fsm_state="DM", owner=0,
                                         sharers=frozenset({1}), memory=5),
            network=UnorderedNetwork(),
            latest_version=5,
        )
        enc = codec.encode(state)
        assert codec.decode(enc) == state
        packed = codec.pack(enc)
        assert len(packed) == 4 * len(enc)
        assert codec.unpack(packed) == enc
        assert codec.decode_packed(codec.encode_packed(state)) == state

    def test_value_bound_alone_widens_the_lanes(self):
        from repro.system import StateCodec

        protocol = _SyntheticProtocol(
            cache_states=["I", "M"], dir_states=["DI"], mtypes=["Get"]
        )
        narrow = StateCodec(protocol, 2, ordered=True, value_bound=1_000)
        wide = StateCodec(protocol, 2, ordered=True, value_bound=100_000)
        assert narrow.typecode == "H"
        assert wide.lane_bytes == 4

    def test_deep_workload_system_still_verifies(self, msi_nonstalling):
        """End to end through the system hook: a workload whose version bound
        crosses the 16-bit range runs on wide lanes and still verifies (tiny
        budget -- the point is the layout, not the coverage)."""
        from repro.system import System, Workload
        from repro.verification import verify

        system = System(msi_nonstalling, num_caches=2,
                        workload=Workload(max_accesses_per_cache=40_000))
        assert system.codec().lane_bytes == 4
        result = verify(system, max_states=200)
        assert result.ok and result.partial
