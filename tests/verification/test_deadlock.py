"""Workload-deadlock detection (``verify(..., deadlock=True)``).

A quiescent, canonically-reachable state whose caches still hold unissued
workload budget -- but where no transition is enabled -- can never absorb
the remaining accesses: the protocol has wedged the workload, not just a
message.  The seed explorer counts such states as completed runs, so the
check is **off by default** (keeping the pinned state counts); with
``deadlock=True`` the state is reported as a deadlock failure with a
replayable trace, on both transition kernels and every search strategy.
"""

import pytest

from repro.core import GenerationConfig, generate
from repro.core.fsm import AccessEvent, event_key
from repro.dsl.types import AccessKind
from repro.system import System, Workload
from repro.system.system import DuplicateMessage, FaultModel, IssueAccess
from repro.verification import verify


def drop_cache_accesses(generated, state: str):
    """Sabotage a generated protocol: remove every core-access transition
    from cache state *state* (mutation in place -- generate freshly)."""
    cache = generated.cache
    cache._transitions = [
        t
        for t in cache.transitions()
        if not (t.state == state and isinstance(t.event, AccessEvent))
    ]
    cache._index = {}
    for t in cache._transitions:
        cache._index.setdefault((t.state, event_key(t.event)), []).append(t)
    return generated


@pytest.fixture(scope="module")
def wedged_msi(msi_spec):
    """MSI whose caches can never issue an access out of stable S: a cache
    that loaded once parks in S with budget left and nothing enabled."""
    return drop_cache_accesses(generate(msi_spec, GenerationConfig()), "S")


def _system(generated, num_caches=2):
    return System(generated, num_caches=num_caches,
                  workload=Workload(max_accesses_per_cache=2,
                                    access_kinds=(AccessKind.LOAD,
                                                  AccessKind.STORE)))


MODES = [
    dict(),
    dict(kernel="object"),
    dict(symmetry=True),
    dict(symmetry=True, strategy="parallel", processes=2),
]


@pytest.mark.parametrize("mode", MODES, ids=lambda m: "-".join(
    f"{k}={v}" for k, v in m.items()) or "compiled")
def test_workload_deadlock_reported_with_replayable_trace(wedged_msi, mode):
    system = _system(wedged_msi)
    result = verify(system, deadlock=True, **mode)
    assert not result.ok and result.deadlock
    assert result.trace, "a counterexample trace must be reported"
    # Replay: the trace must land in a quiescent state with no enabled
    # transitions while some cache still holds unissued budget.
    state = system.initial_state()
    for event in result.trace_events:
        assert event in system.enabled_events(state)
        outcome = system.apply(state, event)
        assert outcome.error is None
        state = outcome.state
    assert system.is_quiescent(state)
    assert not system.enabled_events(state)
    assert any(c.issued < system.workload.max_accesses_per_cache
               for c in state.caches)


def test_workload_deadlock_off_by_default(wedged_msi):
    """Without the flag, the wedged runs count as complete (seed behaviour)."""
    result = verify(_system(wedged_msi))
    assert result.ok and result.complete_states > 0


def test_kernels_agree_on_workload_deadlock_point(wedged_msi):
    system = _system(wedged_msi)
    compiled = verify(system, deadlock=True)
    objected = verify(system, deadlock=True, kernel="object")
    assert not compiled.ok and not objected.ok
    assert compiled.deadlock and objected.deadlock
    assert compiled.states_explored == objected.states_explored
    assert compiled.trace == objected.trace


def test_deadlock_flag_keeps_counts_on_correct_protocols(msi_nonstalling):
    """On a correct protocol the stricter check never fires, so the pinned
    exploration is untouched."""
    system = System(msi_nonstalling, num_caches=2,
                    workload=Workload(max_accesses_per_cache=2))
    plain = verify(system)
    strict = verify(system, deadlock=True)
    assert plain.ok and strict.ok
    assert strict.states_explored == plain.states_explored == 1702
    assert strict.transitions_explored == plain.transitions_explored


class TestFaultBudgetVsWorkloadDeadlock:
    """Fault-budget exhaustion must never masquerade as a workload deadlock.

    The classification (``is_quiescent`` / ``is_complete``) depends only on
    the network and the workload, never on ``faults_used``: a quiescent
    completed run whose fault budget is burnt (or unspent) is a completed
    run, and a genuinely wedged workload is still a deadlock when a fault
    model is attached."""

    @pytest.mark.parametrize(
        "faults",
        [
            FaultModel(duplicate=True),
            FaultModel(reorder=True),
            FaultModel(duplicate=True, reorder=True, budget=2),
        ],
        ids=["duplicate", "reorder", "both"],
    )
    def test_budget_exhausted_quiescence_counts_as_complete(
        self, msi_stalling, faults
    ):
        system = System(msi_stalling, num_caches=2,
                        workload=Workload(max_accesses_per_cache=1),
                        faults=faults)
        compiled = verify(system, deadlock=True)
        objected = verify(system, deadlock=True, kernel="object")
        for result in (compiled, objected):
            assert result.ok and not result.deadlock, result.summary
            assert result.complete_states > 0
        assert compiled.states_explored == objected.states_explored

    def test_exhausted_budget_replay_is_complete_not_deadlocked(
        self, msi_nonstalling
    ):
        """Drive one run to quiescence with the whole budget burnt and check
        the classifier state by state."""
        system = System(msi_nonstalling, num_caches=2,
                        workload=Workload(max_accesses_per_cache=1,
                                          access_kinds=(AccessKind.LOAD,)),
                        faults=FaultModel(duplicate=True))

        def step(state, pred):
            for event in system.enabled_events(state):
                if pred(event):
                    outcome = system.apply(state, event)
                    assert outcome.error is None, outcome.error
                    return outcome.state
            raise AssertionError("expected event not enabled")

        state = system.initial_state()
        state = step(state, lambda e: isinstance(e, IssueAccess)
                     and e.cache_id == 0)
        state = step(state, lambda e: not isinstance(
            e, (IssueAccess, DuplicateMessage)))
        # Burn the budget on the directory's Data response, deliver both
        # copies (the second is absorbed by the hardened cache).
        state = step(state, lambda e: isinstance(e, DuplicateMessage))
        assert state.faults_used == 1
        while not system.is_quiescent(state):
            state = step(state, lambda e: not isinstance(e, IssueAccess))
        state = step(state, lambda e: isinstance(e, IssueAccess)
                     and e.cache_id == 1)
        while not system.is_quiescent(state):
            state = step(state, lambda e: True)
        # Quiescent, workload done, budget exhausted: a completed run.
        assert state.faults_used == 1
        assert system.enabled_events(state) == []
        assert system.is_complete(state)

    def test_wedged_workload_still_deadlocks_under_fault_injection(
        self, wedged_msi
    ):
        system = System(wedged_msi, num_caches=2,
                        workload=Workload(max_accesses_per_cache=2,
                                          access_kinds=(AccessKind.LOAD,
                                                        AccessKind.STORE)),
                        faults=FaultModel(duplicate=True))
        result = verify(system, deadlock=True)
        assert not result.ok and result.deadlock
