"""Workload-deadlock detection (``verify(..., deadlock=True)``).

A quiescent, canonically-reachable state whose caches still hold unissued
workload budget -- but where no transition is enabled -- can never absorb
the remaining accesses: the protocol has wedged the workload, not just a
message.  The seed explorer counts such states as completed runs, so the
check is **off by default** (keeping the pinned state counts); with
``deadlock=True`` the state is reported as a deadlock failure with a
replayable trace, on both transition kernels and every search strategy.
"""

import pytest

from repro.core import GenerationConfig, generate
from repro.core.fsm import AccessEvent, event_key
from repro.dsl.types import AccessKind
from repro.system import System, Workload
from repro.verification import verify


def drop_cache_accesses(generated, state: str):
    """Sabotage a generated protocol: remove every core-access transition
    from cache state *state* (mutation in place -- generate freshly)."""
    cache = generated.cache
    cache._transitions = [
        t
        for t in cache.transitions()
        if not (t.state == state and isinstance(t.event, AccessEvent))
    ]
    cache._index = {}
    for t in cache._transitions:
        cache._index.setdefault((t.state, event_key(t.event)), []).append(t)
    return generated


@pytest.fixture(scope="module")
def wedged_msi(msi_spec):
    """MSI whose caches can never issue an access out of stable S: a cache
    that loaded once parks in S with budget left and nothing enabled."""
    return drop_cache_accesses(generate(msi_spec, GenerationConfig()), "S")


def _system(generated, num_caches=2):
    return System(generated, num_caches=num_caches,
                  workload=Workload(max_accesses_per_cache=2,
                                    access_kinds=(AccessKind.LOAD,
                                                  AccessKind.STORE)))


MODES = [
    dict(),
    dict(kernel="object"),
    dict(symmetry=True),
    dict(symmetry=True, strategy="parallel", processes=2),
]


@pytest.mark.parametrize("mode", MODES, ids=lambda m: "-".join(
    f"{k}={v}" for k, v in m.items()) or "compiled")
def test_workload_deadlock_reported_with_replayable_trace(wedged_msi, mode):
    system = _system(wedged_msi)
    result = verify(system, deadlock=True, **mode)
    assert not result.ok and result.deadlock
    assert result.trace, "a counterexample trace must be reported"
    # Replay: the trace must land in a quiescent state with no enabled
    # transitions while some cache still holds unissued budget.
    state = system.initial_state()
    for event in result.trace_events:
        assert event in system.enabled_events(state)
        outcome = system.apply(state, event)
        assert outcome.error is None
        state = outcome.state
    assert system.is_quiescent(state)
    assert not system.enabled_events(state)
    assert any(c.issued < system.workload.max_accesses_per_cache
               for c in state.caches)


def test_workload_deadlock_off_by_default(wedged_msi):
    """Without the flag, the wedged runs count as complete (seed behaviour)."""
    result = verify(_system(wedged_msi))
    assert result.ok and result.complete_states > 0


def test_kernels_agree_on_workload_deadlock_point(wedged_msi):
    system = _system(wedged_msi)
    compiled = verify(system, deadlock=True)
    objected = verify(system, deadlock=True, kernel="object")
    assert not compiled.ok and not objected.ok
    assert compiled.deadlock and objected.deadlock
    assert compiled.states_explored == objected.states_explored
    assert compiled.trace == objected.trace


def test_deadlock_flag_keeps_counts_on_correct_protocols(msi_nonstalling):
    """On a correct protocol the stricter check never fires, so the pinned
    exploration is untouched."""
    system = System(msi_nonstalling, num_caches=2,
                    workload=Workload(max_accesses_per_cache=2))
    plain = verify(system)
    strict = verify(system, deadlock=True)
    assert plain.ok and strict.ok
    assert strict.states_explored == plain.states_explored == 1638
    assert strict.transitions_explored == plain.transitions_explored
