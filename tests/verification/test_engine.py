"""Engine-level tests: trace replay under canonicalization, the interned
state store, search strategies, and hash compaction.

The central regression here is satellite-proofing `_build_trace`'s successor:
under symmetry reduction the stored search tree lives in canonical frames,
so a naive readback would interleave incompatible cache labelings.  The
engine relabels every event through the inverse permutation chain; these
tests replay each reported counterexample step-by-step through
``System.apply`` from the true initial state and demand that the exact
violation / error / deadlock is reproduced.
"""

import pytest

from repro.system import System, Workload
from repro.verification import verify
from repro.verification.engine import (
    BreadthFirst,
    DepthFirst,
    ParallelBreadthFirst,
    StateStore,
    resolve_strategy,
)
from repro.verification.random_walk import random_walk

from verification_helpers import (
    MessageDroppingSystem,
    make_missing_inv_mutant,
    make_swmr_mutant,
    replay_and_check,
)


@pytest.fixture(scope="module")
def msi_missing_inv_mutant(msi_spec):
    return make_missing_inv_mutant(msi_spec)


@pytest.fixture(scope="module")
def msi_swmr_mutant(msi_spec):
    return make_swmr_mutant(msi_spec)


MODES = [
    dict(),
    dict(symmetry=True),
    dict(symmetry=True, strategy="dfs"),
    dict(symmetry=True, strategy="parallel", processes=2),
    dict(symmetry=True, hash_compaction=True),
]


@pytest.mark.parametrize("mode", MODES, ids=lambda m: "-".join(
    f"{k}={v}" for k, v in m.items()) or "default")
class TestCounterexampleTracesReplay:
    @pytest.mark.parametrize("num_caches", [2, 3])
    def test_protocol_error_trace(self, msi_missing_inv_mutant, num_caches, mode):
        system = System(msi_missing_inv_mutant, num_caches=num_caches,
                        workload=Workload(max_accesses_per_cache=2))
        result = verify(system, **mode)
        assert not result.ok and result.error is not None
        assert result.trace, "a counterexample trace must be reported"
        replay_and_check(system, result)

    @pytest.mark.parametrize("num_caches", [2, 3])
    def test_invariant_violation_trace(self, msi_swmr_mutant, num_caches, mode):
        system = System(msi_swmr_mutant, num_caches=num_caches,
                        workload=Workload(max_accesses_per_cache=2))
        result = verify(system, **mode)
        assert not result.ok and result.violation is not None
        assert result.violation.name == "SWMR"
        replay_and_check(system, result)

    def test_deadlock_trace(self, msi_stalling, mode):
        system = MessageDroppingSystem(
            msi_stalling, num_caches=2,
            workload=Workload(max_accesses_per_cache=1),
            dropped_mtype="GetM",
        )
        result = verify(system, **mode)
        assert not result.ok and result.deadlock
        replay_and_check(system, result)


class TestStrategies:
    def test_all_strategies_agree_on_pass_and_counts(self, msi_nonstalling):
        system = System(msi_nonstalling, num_caches=2,
                        workload=Workload(max_accesses_per_cache=2))
        bfs = verify(system, symmetry=True)
        dfs = verify(system, symmetry=True, strategy="dfs")
        par = verify(system, symmetry=True, strategy="parallel", processes=2)
        assert bfs.ok and dfs.ok and par.ok
        # The explored canonical state set is order-independent.
        assert bfs.states_explored == dfs.states_explored == par.states_explored
        assert bfs.transitions_explored == dfs.transitions_explored
        assert (bfs.strategy, dfs.strategy, par.strategy) == ("bfs", "dfs", "parallel")

    def test_resolve_strategy(self):
        assert isinstance(resolve_strategy("bfs"), BreadthFirst)
        assert isinstance(resolve_strategy("depth-first"), DepthFirst)
        parallel = resolve_strategy("parallel", processes=3)
        assert isinstance(parallel, ParallelBreadthFirst)
        assert parallel.processes == 3
        strategy = DepthFirst()
        assert resolve_strategy(strategy) is strategy
        with pytest.raises(ValueError):
            resolve_strategy("bogo-search")

    def test_strategy_instance_accepted_by_verify(self, msi_nonstalling):
        system = System(msi_nonstalling, num_caches=2,
                        workload=Workload(max_accesses_per_cache=1))
        result = verify(system, strategy=DepthFirst())
        assert result.ok and result.strategy == "dfs"

    def test_parallel_truncation_is_bounded(self, msi_nonstalling):
        system = System(msi_nonstalling, num_caches=2,
                        workload=Workload(max_accesses_per_cache=2))
        result = verify(system, strategy="parallel", processes=2, max_states=50)
        assert result.truncated and result.ok

    def test_max_states_budget_aborts_cleanly(self, msi_nonstalling):
        """A budgeted run stops at exactly the budget with a partial report."""
        system = System(msi_nonstalling, num_caches=2,
                        workload=Workload(max_accesses_per_cache=2))
        result = verify(system, max_states=100)
        assert result.ok and result.truncated and result.partial
        assert result.states_explored == 100
        assert "partial" in result.summary
        # A budget the search never reaches leaves the result complete.
        full = verify(system, max_states=10_000)
        assert full.ok and not full.partial
        assert full.states_explored == 1702


class TestStateStore:
    def test_intern_dedups_and_links(self, msi_nonstalling):
        system = System(msi_nonstalling, num_caches=2)
        store = StateStore()
        initial = system.initial_state()
        root, new = store.intern(initial)
        assert new and root == 0 and len(store) == 1
        event = system.enabled_events(initial)[0]
        successor = system.apply(initial, event).state
        child, new = store.intern(successor, parent=root, event=event)
        assert new and child == 1
        again, new = store.intern(successor, parent=99, event=None)
        assert not new and again == child
        assert store.link(child) == (root, event, None)
        assert initial in store and successor in store
        chain = store.chain(child)
        assert [e for e, _ in chain] == [None, event]

    def test_hash_compaction_matches_exact_counts(self, msi_nonstalling):
        system = System(msi_nonstalling, num_caches=2,
                        workload=Workload(max_accesses_per_cache=2))
        exact = verify(system, symmetry=True)
        compact = verify(system, symmetry=True, hash_compaction=True)
        assert exact.ok and compact.ok
        assert exact.states_explored == compact.states_explored
        assert exact.transitions_explored == compact.transitions_explored


class TestBackwardCompatibility:
    def test_explorer_module_still_exports_verify(self):
        from repro.verification import explorer
        from repro.verification.engine.core import VerificationResult as EngineResult

        assert explorer.verify is verify
        assert explorer.VerificationResult is EngineResult

    def test_default_arguments_match_seed_counts(self, msi_nonstalling):
        """With no new arguments the engine reproduces the seed explorer's
        exact exploration (state and transition counts)."""
        system = System(msi_nonstalling, num_caches=2,
                        workload=Workload(max_accesses_per_cache=2))
        result = verify(system)
        assert result.ok
        assert result.states_explored == 1702
        assert result.transitions_explored == 3078
        assert not result.symmetry_reduced


class TestRandomWalkCoverage:
    def test_coverage_counts_canonical_states(self, msi_nonstalling):
        system = System(msi_nonstalling, num_caches=2,
                        workload=Workload(max_accesses_per_cache=2))
        raw = random_walk(system, runs=20, max_steps=120, seed=5,
                          track_coverage=True, symmetry=False)
        reduced = random_walk(system, runs=20, max_steps=120, seed=5,
                              track_coverage=True)
        assert raw.ok and reduced.ok
        assert 0 < reduced.unique_states <= raw.unique_states
        # The exhaustive search bounds the walk's canonical coverage.
        exhaustive = verify(system, symmetry=True)
        assert reduced.unique_states <= exhaustive.states_explored
        assert "unique states" in reduced.summary

    def test_coverage_off_by_default(self, msi_nonstalling):
        system = System(msi_nonstalling, num_caches=2,
                        workload=Workload(max_accesses_per_cache=1))
        result = random_walk(system, runs=3, max_steps=50, seed=1)
        assert result.ok and result.unique_states == 0


class TestSearchStats:
    """`VerificationResult.stats`: measured time split and decode counting.

    The compiled kernel's reduced hot path is specified to be *fully
    encoded*: outside failure reporting, no `GlobalState` is ever decoded —
    asserted here via the codec's `decode_count` instrumentation rather than
    inferred from code reading.
    """

    def test_compiled_reduced_search_performs_zero_decodes(self, msi_stalling):
        system = System(msi_stalling, num_caches=3,
                        workload=Workload(max_accesses_per_cache=1))
        codec = system.codec()
        before = codec.decode_count
        result = verify(system, symmetry=True)
        assert result.ok and result.kernel == "compiled" and result.symmetry_reduced
        assert codec.decode_count == before, (
            "the reduced compiled-kernel search decoded a GlobalState on a "
            "passing run"
        )
        assert result.stats["decode_count"] == 0

    def test_compiled_full_search_performs_zero_decodes(self, msi_nonstalling):
        system = System(msi_nonstalling, num_caches=2,
                        workload=Workload(max_accesses_per_cache=2))
        codec = system.codec()
        before = codec.decode_count
        result = verify(system)
        assert result.ok and result.kernel == "compiled"
        assert codec.decode_count == before
        assert result.stats["decode_count"] == 0

    def test_stats_fields_and_time_split(self, msi_nonstalling):
        system = System(msi_nonstalling, num_caches=2,
                        workload=Workload(max_accesses_per_cache=2))
        result = verify(system, symmetry=True)
        stats = result.stats
        assert stats["kernel"] == result.kernel
        assert stats["strategy"] == result.strategy
        assert stats["canonicalization_seconds"] > 0.0
        assert stats["expansion_seconds"] >= 0.0
        assert (
            stats["canonicalization_seconds"] + stats["expansion_seconds"]
            <= result.elapsed_seconds + 1e-6
        )

    def test_full_search_reports_no_canonicalization_time(self, msi_nonstalling):
        system = System(msi_nonstalling, num_caches=2,
                        workload=Workload(max_accesses_per_cache=2))
        result = verify(system)
        assert result.stats["canonicalization_seconds"] == 0.0

    def test_object_backend_counts_its_decodes(self, msi_nonstalling):
        """The object backend decodes by design (the differential baseline);
        its stats must say so rather than pretend otherwise."""
        system = System(msi_nonstalling, num_caches=2,
                        workload=Workload(max_accesses_per_cache=2))
        result = verify(system, symmetry=True, kernel="object")
        assert result.kernel == "object"
        assert result.stats["decode_count"] > 0

    def test_vectorized_reduced_search_batch_telemetry(self, msi_stalling):
        """The batch kernel's hot-path contract, pinned by telemetry: on a
        fault-free single-address reduced search every transition is expanded
        by the lane-matrix path (zero fallbacks) with zero object decodes."""
        pytest.importorskip("numpy")
        system = System(msi_stalling, num_caches=3,
                        workload=Workload(max_accesses_per_cache=1))
        codec = system.codec()
        before = codec.decode_count
        result = verify(system, symmetry=True, kernel="vectorized")
        assert result.ok and result.kernel == "vectorized"
        stats = result.stats
        assert stats["expansion_batches"] > 0
        assert stats["mean_batch_width"] > 0.0
        # One batch per BFS level: mean width is states / levels.
        assert stats["mean_batch_width"] == pytest.approx(
            result.states_explored / stats["expansion_batches"]
        )
        assert stats["vectorized_transitions"] == result.transitions_explored
        assert stats["fallback_transitions"] == 0
        assert codec.decode_count == before
        assert stats["decode_count"] == 0

    def test_vectorized_full_search_batch_telemetry(self, msi_nonstalling):
        pytest.importorskip("numpy")
        system = System(msi_nonstalling, num_caches=2,
                        workload=Workload(max_accesses_per_cache=2))
        result = verify(system, kernel="vectorized")
        assert result.ok and result.kernel == "vectorized"
        assert result.stats["expansion_batches"] > 0
        assert result.stats["fallback_transitions"] == 0
        assert result.stats["decode_count"] == 0

    def test_compiled_search_reports_no_batch_telemetry(self, msi_nonstalling):
        """Batch counters are vectorized-only: the serial kernels must not
        report fields they never populate."""
        system = System(msi_nonstalling, num_caches=2,
                        workload=Workload(max_accesses_per_cache=1))
        result = verify(system)
        assert result.kernel == "compiled"
        assert "expansion_batches" not in result.stats
        assert "fallback_transitions" not in result.stats

    def test_parallel_search_aggregates_worker_stats(self, msi_nonstalling):
        system = System(msi_nonstalling, num_caches=2,
                        workload=Workload(max_accesses_per_cache=2))
        result = verify(system, symmetry=True, strategy="parallel", processes=2)
        if result.strategy != "parallel":  # fork unavailable: serial fallback
            pytest.skip("parallel strategy unavailable on this platform")
        assert result.stats["decode_count"] == 0
        assert result.stats["canonicalization_seconds"] > 0.0
        # This search never grows a level past POOL_SPINUP_FRONTIER, so the
        # lazy pool never forks and the whole run stays in-process: the
        # wall-clock time split is meaningful and must be reported.  (Only
        # once workers actually run does expansion_seconds become None --
        # worker canonicalization time is CPU summed across processes, not
        # comparable to the parent's wall-clock.)
        assert result.stats["expansion_seconds"] is not None

    def test_forked_parallel_run_reports_worker_telemetry(
        self, msi_nonstalling, monkeypatch
    ):
        """Once the shared-memory fleet forks, the result must say what the
        workers did: states expanded per worker, chunks stolen beyond the
        one-per-worker baseline, and bytes spilled (zero without a
        spill dir)."""
        from repro.verification.engine import search as search_mod

        monkeypatch.setattr(search_mod, "POOL_SPINUP_FRONTIER", 0)
        system = System(msi_nonstalling, num_caches=2,
                        workload=Workload(max_accesses_per_cache=2))
        result = verify(system, symmetry=True, strategy="parallel", processes=2)
        if result.strategy != "parallel":  # fork unavailable: serial fallback
            pytest.skip("parallel strategy unavailable on this platform")
        stats = result.stats
        assert len(stats["worker_states"]) == 2
        assert sum(stats["worker_states"]) > 0
        assert stats["steal_count"] >= 0
        assert stats["spill_bytes"] == 0
        assert stats["resume_level"] is None

    def test_in_process_search_reports_no_worker_telemetry(
        self, msi_nonstalling
    ):
        """Worker counters are fleet-only: a search that never forked must
        not fabricate them (mirrors the batch-telemetry rule above)."""
        system = System(msi_nonstalling, num_caches=2,
                        workload=Workload(max_accesses_per_cache=2))
        result = verify(system, symmetry=True)
        assert "worker_states" not in result.stats
        assert "steal_count" not in result.stats
        assert "spill_bytes" not in result.stats
        assert result.stats["resume_level"] is None

    def test_parallel_pool_spinup_suppresses_expansion_split(
        self, msi_nonstalling, monkeypatch
    ):
        """Force the lazy pool to fork (threshold 0) and check the original
        multi-process contract: worker CPU time is summed, so no wall-clock
        expansion figure is fabricated."""
        from repro.verification.engine import search as search_mod

        monkeypatch.setattr(search_mod, "POOL_SPINUP_FRONTIER", 0)
        system = System(msi_nonstalling, num_caches=2,
                        workload=Workload(max_accesses_per_cache=2))
        result = verify(system, symmetry=True, strategy="parallel", processes=2)
        if result.strategy != "parallel":  # fork unavailable: serial fallback
            pytest.skip("parallel strategy unavailable on this platform")
        assert result.ok
        assert result.stats["expansion_seconds"] is None
