"""Tests for the explicit-state model checker (the Murphi stand-in)."""

import pytest

from repro.core import GenerationConfig, generate
from repro.core.fsm import FsmTransition, MessageEvent
from repro.dsl.types import AccessKind
from repro.system import System, Workload
from repro.verification import (
    default_invariants,
    random_walk,
    single_owner_invariant,
    swmr_invariant,
    verify,
)


@pytest.fixture(scope="module")
def msi_system(msi_nonstalling):
    return System(msi_nonstalling, num_caches=2, workload=Workload(max_accesses_per_cache=2))


class TestVerifyPasses:
    def test_msi_nonstalling_two_caches(self, msi_system):
        result = verify(msi_system)
        assert result.ok
        assert result.states_explored > 1000
        assert result.complete_states > 0
        assert "PASS" in result.summary

    def test_msi_stalling_two_caches(self, msi_stalling):
        system = System(msi_stalling, num_caches=2, workload=Workload(max_accesses_per_cache=2))
        assert verify(system).ok

    def test_single_cache_is_trivially_safe(self, msi_nonstalling):
        system = System(msi_nonstalling, num_caches=1,
                        workload=Workload(max_accesses_per_cache=3))
        result = verify(system)
        assert result.ok

    def test_truncation_reported(self, msi_system):
        result = verify(msi_system, max_states=10)
        assert result.truncated
        assert result.ok  # nothing wrong found in the prefix


class TestVerifyFindsInjectedBugs:
    def _broken_protocol(self, msi_spec):
        """Generate MSI, then sabotage it: drop the Invalidation handling in S."""
        generated = generate(msi_spec, GenerationConfig())
        cache = generated.cache
        cache._transitions = [
            t for t in cache.transitions()
            if not (t.state == "S" and isinstance(t.event, MessageEvent)
                    and t.event.message == "Inv")
        ]
        cache._index = {}
        for t in cache._transitions:
            from repro.core.fsm import event_key
            cache._index.setdefault((t.state, event_key(t.event)), []).append(t)
        return generated

    def test_missing_invalidation_handling_is_caught(self, msi_spec):
        broken = self._broken_protocol(msi_spec)
        system = System(broken, num_caches=2, workload=Workload(max_accesses_per_cache=2))
        result = verify(system)
        assert not result.ok
        assert result.error is not None and "cannot handle message" in result.error
        assert result.trace, "a counterexample trace must be reported"

    def test_swmr_violation_detected_with_bad_permissions(self, msi_spec):
        generated = generate(msi_spec, GenerationConfig())
        # Sabotage: pretend the IS_D transient already grants write permission.
        from repro.dsl.types import Permission

        generated.cache.state("IS_D").permission = Permission.READ_WRITE
        system = System(generated, num_caches=2, workload=Workload(max_accesses_per_cache=2))
        result = verify(system)
        assert not result.ok
        assert result.violation is not None and result.violation.name == "SWMR"


class TestInvariantHelpers:
    def test_default_invariants_include_swmr(self):
        assert swmr_invariant in tuple(default_invariants())
        assert single_owner_invariant in tuple(default_invariants())

    def test_swmr_invariant_accepts_single_writer(self, msi_system):
        state = msi_system.initial_state()
        assert swmr_invariant(msi_system, state) is None


class TestRandomWalk:
    def test_random_walk_passes_on_msi(self, msi_nonstalling):
        system = System(msi_nonstalling, num_caches=3,
                        workload=Workload(max_accesses_per_cache=2))
        result = random_walk(system, runs=25, max_steps=200, seed=7)
        assert result.ok
        assert result.steps > 0

    def test_random_walk_finds_injected_bug(self, msi_spec):
        generated = generate(msi_spec, GenerationConfig())
        from repro.dsl.types import Permission

        generated.cache.state("IM_AD").permission = Permission.READ_WRITE
        system = System(generated, num_caches=2, workload=Workload(max_accesses_per_cache=2))
        result = random_walk(system, runs=50, max_steps=200, seed=3)
        assert not result.ok
        assert result.violation is not None

    def test_random_walk_is_deterministic_per_seed(self, msi_nonstalling):
        system = System(msi_nonstalling, num_caches=2,
                        workload=Workload(max_accesses_per_cache=1))
        a = random_walk(system, runs=5, max_steps=100, seed=11)
        b = random_walk(system, runs=5, max_steps=100, seed=11)
        assert a.steps == b.steps
