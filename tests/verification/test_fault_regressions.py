"""Regression: the first counterexamples the fault-injection axes found.

Both traces are verbatim model-checker counterexamples from the first
fault-augmented searches of the bundled MSI protocol -- measured against
**un-hardened** builds (``GenerationConfig(harden=False)``), the generation
mode PR 6 shipped.  They are replayed step by step through ``System.apply``
so the original bug evidence survives the hardening fix:

* **Duplicated response** (nonstalling MSI): the directory's ``Data``
  response to a ``GetS`` is duplicated in flight.  The first copy completes
  the load (``IS_D -> S``); the second copy reaches stable ``S``, which has
  no handler for an unsolicited response -- the exactly-once delivery
  assumption surfacing as an unexpected-message protocol error.
* **Reordered forward** (stalling MSI): C1's store is serialized first, then
  C0's load forces the directory to forward ``Fwd_GetS`` to the new owner --
  into the same Dir->C1 ordered channel that still carries C1's ``Data``.
  Swapping the two delivers the forward while C1 is still in ``IM_AD``; the
  stalling configuration stalls it, the ``Data`` it needs is queued *behind*
  the stalled message, and the system head-of-line deadlocks.

The hardened replays at the bottom run the *same traces* against the default
``harden=True`` builds: the duplicate is silently absorbed in stable ``S``,
the reordered head is re-queued instead of blocking, and both searches PASS.
"""

import pytest

from repro.core import GenerationConfig, generate
from repro.dsl.types import AccessKind
from repro.system import System, Workload
from repro.system.message import Message
from repro.system.system import (
    DeliverMessage,
    DuplicateMessage,
    FaultModel,
    IssueAccess,
    ReorderMessage,
)
from repro.verification import verify


#: Nonstalling MSI, 2 caches x 1 access, FaultModel(duplicate=True): C0's
#: load, the directory's response duplicated, both copies delivered.
DUPLICATED_DATA_TRACE = [
    IssueAccess(cache_id=0, access=AccessKind.LOAD),
    DeliverMessage(Message(mtype="GetS", src=0, dst=-1, requestor=0, vnet=0)),
    DuplicateMessage(Message(mtype="Data", src=-1, dst=0, requestor=0,
                             data=0, vnet=1)),
    DeliverMessage(Message(mtype="Data", src=-1, dst=0, requestor=0,
                           data=0, vnet=1)),
]

#: The failing final step: the second (duplicated) copy hits stable S.
DUPLICATED_DATA_FINAL = DeliverMessage(
    Message(mtype="Data", src=-1, dst=0, requestor=0, data=0, vnet=1)
)

#: Stalling MSI, 2 caches x 2 accesses, FaultModel(reorder=True): C1's store
#: serialized first, C0's load forwarded to the new owner, and the Dir->C1
#: channel's (Data, Fwd_GetS) pair swapped.
REORDERED_FORWARD_TRACE = [
    IssueAccess(cache_id=0, access=AccessKind.LOAD),
    IssueAccess(cache_id=1, access=AccessKind.STORE),
    DeliverMessage(Message(mtype="GetM", src=1, dst=-1, requestor=1, vnet=0)),
    DeliverMessage(Message(mtype="GetS", src=0, dst=-1, requestor=0, vnet=0)),
    ReorderMessage(src=-1, dst=1, vnet=1, position=0),
]


@pytest.fixture(scope="module")
def bare_msi_nonstalling(msi_spec):
    return generate(msi_spec, GenerationConfig.nonstalling(harden=False))


@pytest.fixture(scope="module")
def bare_msi_stalling(msi_spec):
    return generate(msi_spec, GenerationConfig.stalling(harden=False))


@pytest.fixture(scope="module")
def duplication_system(bare_msi_nonstalling):
    return System(bare_msi_nonstalling, num_caches=2,
                  workload=Workload(max_accesses_per_cache=1),
                  faults=FaultModel(duplicate=True))


@pytest.fixture(scope="module")
def reorder_system(bare_msi_stalling):
    # requeue=False restores PR 6's strict head-of-line blocking, the
    # semantics under which this counterexample deadlocked.
    return System(bare_msi_stalling, num_caches=2,
                  workload=Workload(max_accesses_per_cache=2),
                  faults=FaultModel(reorder=True, requeue=False))


@pytest.fixture(scope="module")
def hardened_duplication_system(msi_nonstalling):
    return System(msi_nonstalling, num_caches=2,
                  workload=Workload(max_accesses_per_cache=1),
                  faults=FaultModel(duplicate=True))


@pytest.fixture(scope="module")
def hardened_reorder_system(msi_stalling):
    return System(msi_stalling, num_caches=2,
                  workload=Workload(max_accesses_per_cache=2),
                  faults=FaultModel(reorder=True))


class TestDuplicatedDataCounterexampleReplay:
    def test_prefix_applies_without_error(self, duplication_system):
        state = duplication_system.initial_state()
        for event in DUPLICATED_DATA_TRACE:
            outcome = duplication_system.apply(state, event)
            assert outcome.error is None, f"{event}: {outcome.error}"
            state = outcome.state

    def test_duplicate_leaves_two_copies_and_burns_the_budget(
        self, duplication_system
    ):
        state = duplication_system.initial_state()
        for event in DUPLICATED_DATA_TRACE[:3]:
            state = duplication_system.apply(state, event).state
        assert state.faults_used == 1
        copies = [m for m in state.network.in_flight() if m.mtype == "Data"]
        assert len(copies) == 2 and copies[0] == copies[1]
        # The budget is spent: no further fault events are offered.
        assert not any(
            isinstance(e, DuplicateMessage)
            for e in duplication_system.enabled_events(state)
        )

    def test_second_copy_is_an_unexpected_message_in_stable_s(
        self, duplication_system
    ):
        state = duplication_system.initial_state()
        for event in DUPLICATED_DATA_TRACE:
            state = duplication_system.apply(state, event).state
        assert state.caches[0].fsm_state == "S"
        final = duplication_system.apply(state, DUPLICATED_DATA_FINAL)
        assert final.error is not None
        assert "cannot handle message" in final.error

    def test_search_still_finds_this_class(self, duplication_system):
        result = verify(duplication_system)
        assert not result.ok
        assert result.error is not None and "cannot handle message" in result.error


class TestReorderedForwardCounterexampleReplay:
    def test_trace_applies_without_error(self, reorder_system):
        state = reorder_system.initial_state()
        for event in REORDERED_FORWARD_TRACE:
            outcome = reorder_system.apply(state, event)
            assert outcome.error is None, f"{event}: {outcome.error}"
            state = outcome.state

    def test_swap_puts_the_forward_ahead_of_the_data(self, reorder_system):
        state = reorder_system.initial_state()
        for event in REORDERED_FORWARD_TRACE[:-1]:
            state = reorder_system.apply(state, event).state
        channel = dict(state.network.channels)[(-1, 1, 1)]
        assert [m.mtype for m in channel] == ["Data", "Fwd_GetS"]
        state = reorder_system.apply(state, REORDERED_FORWARD_TRACE[-1]).state
        channel = dict(state.network.channels)[(-1, 1, 1)]
        assert [m.mtype for m in channel] == ["Fwd_GetS", "Data"]
        assert state.faults_used == 1

    def test_reordered_state_is_a_head_of_line_deadlock(self, reorder_system):
        """C1 (IM_AD) stalls the forward, the Data it needs is stuck behind
        it, and no other event is enabled: a genuine deadlock state."""
        state = reorder_system.initial_state()
        for event in REORDERED_FORWARD_TRACE:
            state = reorder_system.apply(state, event).state
        assert state.caches[1].fsm_state == "IM_AD"
        assert state.caches[0].fsm_state == "IS_D"
        assert not reorder_system.is_quiescent(state)
        assert reorder_system.enabled_events(state) == []

    def test_search_reports_the_deadlock(self, reorder_system):
        result = verify(reorder_system)
        assert not result.ok and result.deadlock
        assert any(line.startswith("reorder") for line in result.trace)


class TestHardenedDuplicationReplay:
    """The same counterexample trace against the default hardened build."""

    def test_second_copy_is_silently_absorbed_in_stable_s(
        self, hardened_duplication_system
    ):
        system = hardened_duplication_system
        state = system.initial_state()
        for event in DUPLICATED_DATA_TRACE:
            outcome = system.apply(state, event)
            assert outcome.error is None, f"{event}: {outcome.error}"
            state = outcome.state
        assert state.caches[0].fsm_state == "S"
        final = system.apply(state, DUPLICATED_DATA_FINAL)
        assert final.error is None
        # Idempotent no-op: the duplicate changes nothing observable.
        assert final.state.caches[0].fsm_state == "S"
        assert final.state.caches == state.caches

    def test_search_passes(self, hardened_duplication_system):
        result = verify(hardened_duplication_system)
        assert result.ok, result.summary


class TestHardenedReorderReplay:
    """The same reordered-forward trace against the default hardened build."""

    def test_reordered_state_is_no_longer_stuck(self, hardened_reorder_system):
        system = hardened_reorder_system
        state = system.initial_state()
        for event in REORDERED_FORWARD_TRACE:
            outcome = system.apply(state, event)
            assert outcome.error is None, f"{event}: {outcome.error}"
            state = outcome.state
        assert state.caches[1].fsm_state == "IM_AD"
        # Re-queue semantics: the stalled head rotates behind the Data it
        # chases instead of head-of-line blocking the channel.
        assert system.enabled_events(state) != []

    def test_search_passes(self, hardened_reorder_system):
        result = verify(hardened_reorder_system)
        assert result.ok and not result.deadlock, result.summary
